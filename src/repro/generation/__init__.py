"""Food-design applications: novel recipe synthesis and recipe tweaking.

The applications the paper's abstract motivates, built on the pairing
machinery: :class:`RecipeDesigner` grows novel in-style recipes from a
cuisine's culinary fingerprint; :class:`RecipeTweaker` proposes minimal
edits that move an existing recipe toward the cuisine's character.
"""

from .classifier import (
    CuisineClassifier,
    CuisinePrediction,
    train_test_split,
)
from .designer import (
    DESIGNER_NEIGHBORS,
    MAX_OVERLAP_FRACTION,
    STYLE_WEIGHT,
    RecipeDesigner,
    RecipeProposal,
)
from .tweaks import RecipeTweaker, SwapSuggestion

__all__ = [
    "CuisineClassifier",
    "CuisinePrediction",
    "train_test_split",
    "DESIGNER_NEIGHBORS",
    "MAX_OVERLAP_FRACTION",
    "STYLE_WEIGHT",
    "RecipeDesigner",
    "RecipeProposal",
    "RecipeTweaker",
    "SwapSuggestion",
]
