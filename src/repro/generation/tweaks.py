"""Targeted recipe alterations ("tweaking recipes", per the abstract).

Given an existing recipe and its cuisine, propose minimal edits —
single-ingredient swaps or additions — that move the recipe's pairing
score toward the cuisine's characteristic value while respecting
popularity (no swaps to pantry-tail oddities unless asked).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..datamodel import ConfigurationError
from ..pairing.score import recipe_score_from_matrix, scores_from_view
from ..pairing.views import CuisineView


@dataclasses.dataclass(frozen=True)
class SwapSuggestion:
    """One proposed single-ingredient swap.

    Attributes:
        remove_name / add_name: the swap, by ingredient name.
        old_score / new_score: recipe N_s before and after.
        style_gain: reduction of the distance to the cuisine's mean N_s
            (positive = the swap moves the recipe toward the cuisine
            style).
    """

    remove_name: str
    add_name: str
    old_score: float
    new_score: float
    style_gain: float


class RecipeTweaker:
    """Suggests style-improving swaps for recipes of one cuisine."""

    def __init__(self, view: CuisineView, popular_pool: int = 120) -> None:
        """
        Args:
            view: the cuisine's numeric view.
            popular_pool: how many of the most-used ingredients are
                eligible as replacements (keeps suggestions cookable).
        """
        if popular_pool < 2:
            raise ConfigurationError("popular_pool must be at least 2")
        self._view = view
        scores = scores_from_view(view)
        self._target = float(scores.mean())
        order = np.argsort(view.frequencies)[::-1]
        self._candidates = order[: min(popular_pool, len(order))]

    @property
    def target_score(self) -> float:
        return self._target

    def suggest_swaps(
        self, recipe: np.ndarray, top: int = 3
    ) -> list[SwapSuggestion]:
        """Rank single swaps by how much they close the style gap.

        Args:
            recipe: local-index array (at least two ingredients).
            top: number of suggestions to return.
        """
        if len(recipe) < 2:
            raise ConfigurationError("recipe needs at least two ingredients")
        view = self._view
        old_score = recipe_score_from_matrix(view.overlap, recipe)
        old_gap = abs(old_score - self._target)
        members = set(int(index) for index in recipe)
        suggestions: list[SwapSuggestion] = []
        for position, member in enumerate(recipe):
            for candidate in self._candidates:
                candidate = int(candidate)
                if candidate in members:
                    continue
                trial = recipe.copy()
                trial[position] = candidate
                new_score = recipe_score_from_matrix(view.overlap, trial)
                gain = old_gap - abs(new_score - self._target)
                if gain <= 0:
                    continue
                suggestions.append(
                    SwapSuggestion(
                        remove_name=view.ingredients[int(member)].name,
                        add_name=view.ingredients[candidate].name,
                        old_score=old_score,
                        new_score=new_score,
                        style_gain=gain,
                    )
                )
        suggestions.sort(key=lambda item: -item.style_gain)
        return suggestions[:top]
