"""Novel recipe synthesis from culinary fingerprints.

The paper positions its framework as "the basis for synthesis of novel
recipes as well as targeted alterations in existing recipes" (Section I /
abstract). :class:`RecipeDesigner` implements that application on top of
the pairing machinery:

* recipes are grown ingredient-by-ingredient from a cuisine's pantry,
  scoring candidates by popularity *and* by how well they move the
  recipe's pairing score toward the cuisine's own mean — so an
  Italian-style proposal blends similar flavors while a Japanese-style one
  keeps its contrasts;
* a novelty constraint rejects proposals that substantially duplicate an
  existing recipe of the cuisine;
* :meth:`RecipeDesigner.style_score` quantifies how "in style" any recipe
  is (the palatability proxy: distance of its N_s from the cuisine mean,
  in units of the cuisine's N_s spread).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..datamodel import ConfigurationError
from ..pairing.score import recipe_score_from_matrix, scores_from_view
from ..pairing.views import CuisineView
from ..retrieval.index import RetrievalIndex

#: Weight of the style (pairing-alignment) term against log-popularity.
STYLE_WEIGHT = 2.0

#: Index neighbors considered per chosen ingredient when a
#: :class:`RetrievalIndex` drives candidate sourcing.
DESIGNER_NEIGHBORS = 25

#: Maximum fraction of a proposal's ingredients that may coincide with any
#: single existing recipe before it is rejected as derivative.
MAX_OVERLAP_FRACTION = 0.6


@dataclasses.dataclass(frozen=True)
class RecipeProposal:
    """One generated recipe.

    Attributes:
        ingredient_names: proposed ingredients (cuisine-local order).
        local_indices: their indices in the cuisine view.
        pairing_score: the proposal's N_s.
        style_score: closeness to the cuisine's pairing style; 0 is a
            perfect match, 1 means one standard deviation away.
        max_overlap: largest ingredient-set overlap fraction with any
            existing recipe of the cuisine.
    """

    ingredient_names: tuple[str, ...]
    local_indices: np.ndarray
    pairing_score: float
    style_score: float
    max_overlap: float


class RecipeDesigner:
    """Generates in-style, novel recipes for one cuisine.

    Args:
        view: the cuisine to design for.
        index: optional :class:`RetrievalIndex`. When given, each growth
            step sources its candidates from the chosen ingredients'
            precomputed neighbor lists (a pool of at most
            ``neighbors × |chosen|`` entries) instead of re-scoring the
            whole pantry; the full-pantry scan remains the fallback
            whenever the pool is empty.
        neighbors: index neighbors considered per chosen ingredient.
    """

    def __init__(
        self,
        view: CuisineView,
        index: RetrievalIndex | None = None,
        neighbors: int = DESIGNER_NEIGHBORS,
    ) -> None:
        self._view = view
        scores = scores_from_view(view)
        self._target_score = float(scores.mean())
        self._score_spread = float(scores.std(ddof=0)) or 1.0
        self._popularity = view.frequencies / view.frequencies.sum()
        self._existing = [
            frozenset(int(index) for index in recipe)
            for recipe in view.recipes
        ]
        self._size_pool = view.recipe_sizes()
        self._local_neighbors: tuple[np.ndarray, ...] | None = None
        if index is not None:
            self._local_neighbors = _local_neighbor_pools(
                view, index, neighbors
            )

    @property
    def view(self) -> CuisineView:
        return self._view

    @property
    def target_score(self) -> float:
        """The cuisine's mean N_s — the style target."""
        return self._target_score

    def style_score(self, local_indices: np.ndarray) -> float:
        """Distance of a recipe's N_s from the cuisine mean, in spreads."""
        score = recipe_score_from_matrix(self._view.overlap, local_indices)
        return abs(score - self._target_score) / self._score_spread

    def novelty(self, members: frozenset[int]) -> float:
        """1 minus the largest overlap fraction with an existing recipe."""
        return 1.0 - self._max_overlap(members)

    def _max_overlap(self, members: frozenset[int]) -> float:
        best = 0.0
        for existing in self._existing:
            overlap = len(members & existing) / len(members)
            if overlap > best:
                best = overlap
        return best

    def propose(
        self,
        rng: np.random.Generator,
        size: int | None = None,
        max_attempts: int = 40,
    ) -> RecipeProposal:
        """Generate one novel, in-style recipe.

        Args:
            rng: random generator (caller owns seeding).
            size: recipe size; sampled from the cuisine's own sizes when
                omitted.
            max_attempts: proposals to try before giving up on the novelty
                constraint and returning the most novel attempt.

        Raises:
            ConfigurationError: if ``size`` exceeds the pantry.
        """
        if size is not None and size > self._view.ingredient_count:
            raise ConfigurationError(
                f"recipe size {size} exceeds pantry "
                f"{self._view.ingredient_count}"
            )
        best: RecipeProposal | None = None
        for _attempt in range(max_attempts):
            proposal = self._grow_once(rng, size)
            if proposal.max_overlap <= MAX_OVERLAP_FRACTION:
                return proposal
            if best is None or proposal.max_overlap < best.max_overlap:
                best = proposal
        assert best is not None
        return best

    def propose_many(
        self, rng: np.random.Generator, count: int
    ) -> list[RecipeProposal]:
        """Generate several proposals (independent draws)."""
        return [self.propose(rng) for _ in range(count)]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _grow_once(
        self, rng: np.random.Generator, size: int | None
    ) -> RecipeProposal:
        view = self._view
        if size is None:
            size = int(self._size_pool[rng.integers(len(self._size_pool))])
        size = min(size, view.ingredient_count)
        chosen: list[int] = []
        available = np.ones(view.ingredient_count, dtype=bool)
        first = int(rng.choice(view.ingredient_count, p=self._popularity))
        chosen.append(first)
        available[first] = False
        while len(chosen) < size:
            pick = self._pick_next(rng, chosen, available)
            chosen.append(pick)
            available[pick] = False
        indices = np.asarray(sorted(chosen), dtype=np.int64)
        members = frozenset(chosen)
        score = recipe_score_from_matrix(view.overlap, indices)
        return RecipeProposal(
            ingredient_names=tuple(
                view.ingredients[index].name for index in indices
            ),
            local_indices=indices,
            pairing_score=score,
            style_score=self.style_score(indices),
            max_overlap=self._max_overlap(members),
        )

    def _candidate_pool(
        self, chosen: list[int], available: np.ndarray
    ) -> np.ndarray | None:
        """Available index-neighbors of the chosen set, or None.

        None means "no index, or the neighbor pool is exhausted" — the
        caller falls back to scoring the full pantry, so pool sourcing
        never changes *which* recipes are reachable, only how many
        candidates each step weighs.
        """
        if self._local_neighbors is None:
            return None
        members: set[int] = set()
        for local in chosen:
            members.update(self._local_neighbors[local])
        pool = [local for local in sorted(members) if available[local]]
        if not pool:
            return None
        return np.asarray(pool, dtype=np.int64)

    def _pick_next(
        self,
        rng: np.random.Generator,
        chosen: list[int],
        available: np.ndarray,
    ) -> int:
        view = self._view
        current = np.asarray(chosen)
        pool = self._candidate_pool(chosen, available)
        if pool is not None:
            pick = self._pick_from_pool(rng, current, pool)
            if pick is not None:
                return pick
        # Mean overlap each candidate would add against the partial recipe.
        added = view.overlap[current].mean(axis=0)
        # Style alignment: prefer candidates keeping the projected recipe
        # score near the cuisine target.
        base = recipe_score_from_matrix(view.overlap, current) if (
            len(current) >= 2
        ) else self._target_score
        n = len(current)
        projected = (base * n * (n - 1) + 2 * added * n) / ((n + 1) * n)
        style = -np.abs(projected - self._target_score) / self._score_spread
        weights = np.exp(
            np.log(self._popularity + 1e-12) + STYLE_WEIGHT * style
        )
        weights[~available] = 0.0
        total = weights.sum()
        if total <= 0:
            candidates = np.flatnonzero(available)
            return int(rng.choice(candidates))
        return int(rng.choice(len(weights), p=weights / total))

    def _pick_from_pool(
        self,
        rng: np.random.Generator,
        current: np.ndarray,
        pool: np.ndarray,
    ) -> int | None:
        """Weighted pick restricted to the index-sourced candidate pool."""
        view = self._view
        added = view.overlap[np.ix_(current, pool)].mean(axis=0)
        base = recipe_score_from_matrix(view.overlap, current) if (
            len(current) >= 2
        ) else self._target_score
        n = len(current)
        projected = (base * n * (n - 1) + 2 * added * n) / ((n + 1) * n)
        style = -np.abs(projected - self._target_score) / self._score_spread
        weights = np.exp(
            np.log(self._popularity[pool] + 1e-12) + STYLE_WEIGHT * style
        )
        total = weights.sum()
        if total <= 0:
            return None
        return int(pool[rng.choice(len(pool), p=weights / total)])


def _local_neighbor_pools(
    view: CuisineView, index: RetrievalIndex, neighbors: int
) -> tuple[np.ndarray, ...]:
    """Per local ingredient, its index-neighbors as local indices.

    Neighbors outside the cuisine's pantry are dropped; each pool keeps
    at most ``neighbors`` entries in the index's ``(-shared, name)``
    order.
    """
    local_of = {
        ingredient.ingredient_id: local
        for local, ingredient in enumerate(view.ingredients)
    }
    pools: list[np.ndarray] = []
    for ingredient in view.ingredients:
        row = index.row_by_id.get(ingredient.ingredient_id)
        found: list[int] = []
        if row is not None:
            for partner in index.neighbor_rows[row]:
                if partner < 0 or len(found) >= neighbors:
                    break
                local = local_of.get(int(index.ingredient_ids[partner]))
                if local is not None:
                    found.append(local)
        pools.append(np.asarray(found, dtype=np.int64))
    return tuple(pools)
