"""Cuisine classification from culinary fingerprints.

If cuisines really carry distinctive "culinary fingerprints" (Section I),
a recipe's ingredient set should identify its cuisine. This module tests
that proposition with a multinomial naive-Bayes classifier over
ingredient usage: per cuisine, smoothed log-probabilities of each
ingredient; a recipe is assigned to the cuisine maximising the summed
log-likelihood (plus a recipe-count prior).

Besides being a fingerprint demonstration, the classifier is useful on
its own: scoring how "Italian" or "Japanese" an arbitrary ingredient set
is, which the food-design layer uses as a sanity check on generated
recipes.
"""

from __future__ import annotations

import dataclasses
import math
from collections import Counter
from collections.abc import Iterable, Mapping

from ..datamodel import ConfigurationError, Cuisine, LookupFailure, Recipe

#: Laplace smoothing mass added per ingredient.
SMOOTHING = 0.5


@dataclasses.dataclass(frozen=True)
class CuisinePrediction:
    """Classification of one recipe.

    Attributes:
        region_code: the winning cuisine.
        log_likelihoods: per-cuisine scores (higher is better).
    """

    region_code: str
    log_likelihoods: dict[str, float]

    def ranking(self) -> list[tuple[str, float]]:
        """Cuisines by descending score."""
        return sorted(
            self.log_likelihoods.items(), key=lambda item: -item[1]
        )


class CuisineClassifier:
    """Naive-Bayes cuisine classifier over ingredient ids."""

    def __init__(
        self, cuisines: Mapping[str, Cuisine], vocabulary_size: int
    ) -> None:
        """
        Args:
            cuisines: region code -> cuisine (training data).
            vocabulary_size: total number of catalog ingredients (the
                smoothing denominator).
        """
        if not cuisines:
            raise ConfigurationError("need at least one cuisine to train on")
        self._vocabulary_size = vocabulary_size
        self._log_priors: dict[str, float] = {}
        self._log_probs: dict[str, dict[int, float]] = {}
        self._log_default: dict[str, float] = {}
        total_recipes = sum(len(cuisine) for cuisine in cuisines.values())
        for code, cuisine in cuisines.items():
            usage: Counter[int] = cuisine.ingredient_usage
            total = sum(usage.values()) + SMOOTHING * vocabulary_size
            self._log_priors[code] = math.log(
                len(cuisine) / total_recipes
            )
            self._log_probs[code] = {
                ingredient_id: math.log((count + SMOOTHING) / total)
                for ingredient_id, count in usage.items()
            }
            self._log_default[code] = math.log(SMOOTHING / total)

    @property
    def region_codes(self) -> tuple[str, ...]:
        return tuple(sorted(self._log_priors))

    def score(self, ingredient_ids: Iterable[int]) -> dict[str, float]:
        """Per-cuisine log-likelihood of an ingredient set."""
        ids = list(ingredient_ids)
        if not ids:
            raise ConfigurationError("cannot classify an empty recipe")
        scores: dict[str, float] = {}
        for code, log_prior in self._log_priors.items():
            log_probs = self._log_probs[code]
            default = self._log_default[code]
            scores[code] = log_prior + sum(
                log_probs.get(ingredient_id, default)
                for ingredient_id in ids
            )
        return scores

    def predict(self, recipe: Recipe | Iterable[int]) -> CuisinePrediction:
        """Classify a recipe (or a bare ingredient-id collection)."""
        if isinstance(recipe, Recipe):
            ids: Iterable[int] = recipe.ingredient_ids
        else:
            ids = recipe
        scores = self.score(ids)
        winner = max(scores.items(), key=lambda item: item[1])[0]
        return CuisinePrediction(region_code=winner, log_likelihoods=scores)

    def accuracy(self, recipes: Iterable[Recipe]) -> float:
        """Fraction of recipes assigned to their own region.

        Raises:
            LookupFailure: if a recipe's region was not trained on.
        """
        correct = 0
        total = 0
        for recipe in recipes:
            if recipe.region_code not in self._log_priors:
                raise LookupFailure(
                    f"region {recipe.region_code!r} not in training set"
                )
            prediction = self.predict(recipe)
            correct += prediction.region_code == recipe.region_code
            total += 1
        if total == 0:
            raise ConfigurationError("no recipes to evaluate")
        return correct / total


def train_test_split(
    cuisines: Mapping[str, Cuisine], holdout_fraction: float = 0.2
) -> tuple[dict[str, Cuisine], list[Recipe]]:
    """Deterministic split: the last fraction of each cuisine is held out."""
    if not 0 < holdout_fraction < 1:
        raise ConfigurationError("holdout_fraction must be in (0, 1)")
    training: dict[str, Cuisine] = {}
    held_out: list[Recipe] = []
    for code, cuisine in cuisines.items():
        recipes = list(cuisine.recipes)
        cut = max(1, int(len(recipes) * (1 - holdout_fraction)))
        training[code] = Cuisine(code, recipes[:cut])
        held_out.extend(recipes[cut:])
    return training, held_out
