"""Persist analysis results into CulinaryDB.

The paper's public artefact is a queryable database; this module stores
the analysis outputs next to the data so a CulinaryDB snapshot is
self-describing:

* ``pairing_results`` — one row per (region, null model): cuisine mean
  N_s, the model's mean/std, Z-score and effect size (Fig 4);
* ``ingredient_contributions`` — one row per (region, ingredient):
  usage and leave-one-out chi (Fig 5's underlying data).

Both tables are created on demand and can be rebuilt idempotently.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..db import Column, ColumnType, Database, ForeignKey, Schema
from ..pairing import CuisinePairingResult, IngredientContribution


def ensure_analysis_tables(db: Database) -> None:
    """Create the analysis tables when missing (idempotent)."""
    if "pairing_results" not in db:
        db.create_table(
            "pairing_results",
            Schema(
                [
                    Column("result_id", ColumnType.INT, primary_key=True),
                    Column(
                        "region_code",
                        ColumnType.TEXT,
                        indexed=True,
                        foreign_key=ForeignKey("regions", "code"),
                    ),
                    Column("model", ColumnType.TEXT, indexed=True),
                    Column("cuisine_mean", ColumnType.FLOAT),
                    Column("random_mean", ColumnType.FLOAT),
                    Column("random_std", ColumnType.FLOAT),
                    Column("n_samples", ColumnType.INT),
                    Column("z_score", ColumnType.FLOAT),
                    Column("effect_size", ColumnType.FLOAT),
                    Column("direction", ColumnType.TEXT),
                ]
            ),
        )
    if "ingredient_contributions" not in db:
        db.create_table(
            "ingredient_contributions",
            Schema(
                [
                    Column("contribution_id", ColumnType.INT, primary_key=True),
                    Column(
                        "region_code",
                        ColumnType.TEXT,
                        indexed=True,
                        foreign_key=ForeignKey("regions", "code"),
                    ),
                    Column(
                        "ingredient_id",
                        ColumnType.INT,
                        indexed=True,
                        foreign_key=ForeignKey("ingredients", "ingredient_id"),
                    ),
                    Column("usage", ColumnType.INT),
                    Column("chi_percent", ColumnType.FLOAT),
                ]
            ),
        )


def store_pairing_results(
    db: Database, results: Mapping[str, CuisinePairingResult]
) -> int:
    """Replace ``pairing_results`` with the given per-region analyses.

    Returns:
        Number of rows written.
    """
    ensure_analysis_tables(db)
    table = db.table("pairing_results")
    table.delete()
    table.compact()
    result_id = 1
    for region_code in sorted(results):
        result = results[region_code]
        for model, comparison in result.comparisons.items():
            table.insert(
                {
                    "result_id": result_id,
                    "region_code": region_code,
                    "model": model.value,
                    "cuisine_mean": comparison.cuisine_mean,
                    "random_mean": comparison.random_mean,
                    "random_std": comparison.random_std,
                    "n_samples": comparison.n_samples,
                    "z_score": comparison.z_score,
                    "effect_size": comparison.effect_size,
                    "direction": comparison.direction,
                }
            )
            result_id += 1
    return result_id - 1


def store_contributions(
    db: Database,
    region_code: str,
    contributions: list[IngredientContribution],
    name_to_id: Mapping[str, int],
) -> int:
    """Append one region's ingredient contributions; returns rows written.

    Args:
        db: the CulinaryDB database.
        region_code: the region the contributions belong to.
        contributions: output of
            :func:`repro.pairing.ingredient_contributions`.
        name_to_id: ingredient name -> catalog id mapping.
    """
    ensure_analysis_tables(db)
    table = db.table("ingredient_contributions")
    next_id = len(table) + 1
    # Clear any previous rows for this region (idempotent refresh).
    from ..db import col

    removed = table.delete(col("region_code") == region_code)
    if removed:
        table.compact()
        next_id = len(table) + 1
    written = 0
    for contribution in contributions:
        table.insert(
            {
                "contribution_id": next_id,
                "region_code": region_code,
                "ingredient_id": name_to_id[contribution.ingredient_name],
                "usage": contribution.usage,
                "chi_percent": contribution.chi_percent,
            }
        )
        next_id += 1
        written += 1
    return written
