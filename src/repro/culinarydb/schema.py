"""Relational schema of CulinaryDB (the paper's 'Database of World
Cuisines') hosted on the embedded engine.

Tables::

    regions(code PK, name, pairing, is_aggregate_only)
    sources(name PK, published_total)
    categories(name PK)
    molecules(molecule_id PK, name, flavor_family*)
    ingredients(ingredient_id PK, name UNIQUE, category -> categories,
                is_compound, profile_size)
    ingredient_molecules(link_id PK, ingredient_id* -> ingredients,
                         molecule_id* -> molecules)
    ingredient_synonyms(synonym PK, ingredient_id* -> ingredients)
    recipes(recipe_id PK, title, source -> sources, region_code* -> regions,
            n_ingredients, instructions)
    recipe_ingredients(link_id PK, recipe_id* -> recipes,
                       ingredient_id* -> ingredients)

``*`` marks secondary-indexed columns. The four WORLD-only mini-regions sit
in ``regions`` with ``is_aggregate_only = true``.
"""

from __future__ import annotations

from ..db import Column, ColumnType, Database, ForeignKey, Schema


def create_culinarydb_schema(name: str = "culinarydb") -> Database:
    """Create an empty database with the full CulinaryDB schema."""
    db = Database(name)
    db.create_table(
        "regions",
        Schema(
            [
                Column("code", ColumnType.TEXT, primary_key=True),
                Column("name", ColumnType.TEXT, unique=True),
                Column("pairing", ColumnType.TEXT, nullable=True),
                Column("is_aggregate_only", ColumnType.BOOL),
            ]
        ),
    )
    db.create_table(
        "sources",
        Schema(
            [
                Column("name", ColumnType.TEXT, primary_key=True),
                Column("published_total", ColumnType.INT),
            ]
        ),
    )
    db.create_table(
        "categories",
        Schema([Column("name", ColumnType.TEXT, primary_key=True)]),
    )
    db.create_table(
        "molecules",
        Schema(
            [
                Column("molecule_id", ColumnType.INT, primary_key=True),
                Column("name", ColumnType.TEXT),
                Column("flavor_family", ColumnType.TEXT, indexed=True),
            ]
        ),
    )
    db.create_table(
        "ingredients",
        Schema(
            [
                Column("ingredient_id", ColumnType.INT, primary_key=True),
                Column("name", ColumnType.TEXT, unique=True),
                Column(
                    "category",
                    ColumnType.TEXT,
                    indexed=True,
                    foreign_key=ForeignKey("categories", "name"),
                ),
                Column("is_compound", ColumnType.BOOL),
                Column("profile_size", ColumnType.INT),
            ]
        ),
    )
    db.create_table(
        "ingredient_molecules",
        Schema(
            [
                Column("link_id", ColumnType.INT, primary_key=True),
                Column(
                    "ingredient_id",
                    ColumnType.INT,
                    indexed=True,
                    foreign_key=ForeignKey("ingredients", "ingredient_id"),
                ),
                Column(
                    "molecule_id",
                    ColumnType.INT,
                    indexed=True,
                    foreign_key=ForeignKey("molecules", "molecule_id"),
                ),
            ]
        ),
    )
    db.create_table(
        "ingredient_synonyms",
        Schema(
            [
                Column("synonym", ColumnType.TEXT, primary_key=True),
                Column(
                    "ingredient_id",
                    ColumnType.INT,
                    indexed=True,
                    foreign_key=ForeignKey("ingredients", "ingredient_id"),
                ),
            ]
        ),
    )
    db.create_table(
        "recipes",
        Schema(
            [
                Column("recipe_id", ColumnType.INT, primary_key=True),
                Column("title", ColumnType.TEXT),
                Column(
                    "source",
                    ColumnType.TEXT,
                    nullable=True,
                    foreign_key=ForeignKey("sources", "name"),
                ),
                Column(
                    "region_code",
                    ColumnType.TEXT,
                    indexed=True,
                    foreign_key=ForeignKey("regions", "code"),
                ),
                Column("n_ingredients", ColumnType.INT),
                Column("instructions", ColumnType.TEXT, nullable=True),
            ]
        ),
    )
    db.create_table(
        "recipe_ingredients",
        Schema(
            [
                Column("link_id", ColumnType.INT, primary_key=True),
                Column(
                    "recipe_id",
                    ColumnType.INT,
                    indexed=True,
                    foreign_key=ForeignKey("recipes", "recipe_id"),
                ),
                Column(
                    "ingredient_id",
                    ColumnType.INT,
                    indexed=True,
                    foreign_key=ForeignKey("ingredients", "ingredient_id"),
                ),
            ]
        ),
    )
    return db
