"""Canned analytical queries over CulinaryDB.

A thin convenience layer exercising the engine's query builder and SQL
dialect — the kinds of lookups a user of the paper's web database would
run. :class:`CulinaryDB` wraps a populated
:class:`~repro.db.database.Database` (see
:func:`repro.culinarydb.builder.build_culinarydb`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from ..db import Database, col, count, count_distinct, load_database
from ..db.persistence import save_database


class CulinaryDB:
    """Query facade over a populated CulinaryDB database."""

    def __init__(self, database: Database) -> None:
        self.db = database

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        """Persist the database as CSV + catalog JSON."""
        save_database(self.db, directory)

    @classmethod
    def load(cls, directory: str | Path) -> "CulinaryDB":
        """Load a database previously written by :meth:`save`."""
        return cls(load_database(directory))

    # ------------------------------------------------------------------
    # canned queries
    # ------------------------------------------------------------------
    def table1_statistics(self) -> list[dict[str, Any]]:
        """Recipes and unique ingredients per region (Table 1), via SQL."""
        return self.db.sql(
            "SELECT region_code, COUNT(DISTINCT recipe_id) AS recipes, "
            "COUNT(DISTINCT ingredient_id) AS ingredients "
            "FROM recipe_ingredients "
            "JOIN recipes ON recipe_id = recipes.recipe_id "
            "GROUP BY region_code ORDER BY region_code"
        )

    def recipes_in_region(self, region_code: str) -> list[dict[str, Any]]:
        """All recipes of one region."""
        return (
            self.db.query("recipes")
            .where(col("region_code") == region_code)
            .order_by("recipe_id")
            .all()
        )

    def recipe_ingredients(self, recipe_id: int) -> list[str]:
        """Ingredient names of one recipe, alphabetical."""
        rows = (
            self.db.query("recipe_ingredients")
            .where(col("recipe_id") == recipe_id)
            .join("ingredients", on=("ingredient_id", "ingredient_id"))
            .select("name")
            .order_by("name")
            .all()
        )
        return [row["name"] for row in rows]

    def most_popular_ingredients(
        self, region_code: str, limit: int = 10
    ) -> list[dict[str, Any]]:
        """Most-used ingredients of a region with their usage counts."""
        return (
            self.db.query("recipe_ingredients")
            .join("recipes", on=("recipe_id", "recipe_id"))
            .where(col("region_code") == region_code)
            .join("ingredients", on=("ingredient_id", "ingredient_id"))
            .group_by("name", uses=count())
            .order_by(("uses", "desc"), "name")
            .limit(limit)
            .all()
        )

    def category_composition(self, region_code: str) -> dict[str, int]:
        """Ingredient-mention counts per category for one region (Fig 2)."""
        rows = (
            self.db.query("recipe_ingredients")
            .join("recipes", on=("recipe_id", "recipe_id"))
            .where(col("region_code") == region_code)
            .join("ingredients", on=("ingredient_id", "ingredient_id"))
            .group_by("category", mentions=count())
            .all()
        )
        return {row["category"]: row["mentions"] for row in rows}

    def source_totals(self) -> dict[str, int]:
        """Recipe counts per source in the stored corpus."""
        rows = self.db.sql(
            "SELECT source, COUNT(*) AS n FROM recipes "
            "WHERE source IS NOT NULL GROUP BY source ORDER BY source"
        )
        return {row["source"]: row["n"] for row in rows}

    def ingredients_sharing_molecules(
        self, ingredient_name: str, limit: int = 10
    ) -> list[dict[str, Any]]:
        """Ingredients ranked by shared molecule count with a given one."""
        target = (
            self.db.query("ingredients")
            .where(col("name") == ingredient_name)
            .first()
        )
        if target is None:
            return []
        target_molecules = {
            row["molecule_id"]
            for row in self.db.table("ingredient_molecules").lookup(
                "ingredient_id", target["ingredient_id"]
            )
        }
        shared: dict[int, int] = {}
        molecules_table = self.db.table("ingredient_molecules")
        for molecule_id in target_molecules:
            for row in molecules_table.lookup("molecule_id", molecule_id):
                other = row["ingredient_id"]
                if other != target["ingredient_id"]:
                    shared[other] = shared.get(other, 0) + 1
        ranked = sorted(
            shared.items(), key=lambda item: (-item[1], item[0])
        )[:limit]
        ingredients_table = self.db.table("ingredients")
        return [
            {
                "name": ingredients_table.get(other)["name"],
                "shared_molecules": overlap,
            }
            for other, overlap in ranked
        ]

    def region_summary(self) -> list[dict[str, Any]]:
        """Region list with recipe counts and mean recipe size."""
        from ..db import avg

        return (
            self.db.query("recipes")
            .group_by(
                "region_code",
                recipes=count(),
                mean_size=avg("n_ingredients"),
            )
            .order_by(("recipes", "desc"))
            .all()
        )
