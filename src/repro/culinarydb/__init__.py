"""CulinaryDB: the paper's 'Database of World Cuisines' as a relational DB.

Schema, bulk ingest from resolved recipes + catalog, canned analytical
queries, and CSV persistence — all on the embedded engine in
:mod:`repro.db`.
"""

from .analysis_tables import (
    ensure_analysis_tables,
    store_contributions,
    store_pairing_results,
)
from .builder import build_culinarydb
from .queries import CulinaryDB
from .schema import create_culinarydb_schema

__all__ = [
    "ensure_analysis_tables",
    "store_contributions",
    "store_pairing_results",
    "build_culinarydb",
    "CulinaryDB",
    "create_culinarydb_schema",
]
