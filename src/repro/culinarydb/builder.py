"""Populate CulinaryDB from a catalog and a resolved recipe collection."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..datamodel import (
    RECIPE_SOURCES,
    REGIONS,
    WORLD_ONLY_REGION_NAMES,
    Recipe,
)
from ..db import Database
from ..flavordb import IngredientCatalog, default_catalog
from .schema import create_culinarydb_schema


def build_culinarydb(
    recipes: Sequence[Recipe],
    catalog: IngredientCatalog | None = None,
    raw_recipes: Iterable | None = None,
    name: str = "culinarydb",
) -> Database:
    """Build a fully-populated CulinaryDB database.

    Args:
        recipes: resolved recipes (any regions, including WORLD-only ones).
        catalog: ingredient catalog; defaults to the shared instance.
        raw_recipes: optional matching :class:`~repro.datamodel.RawRecipe`
            records; when given, titles/sources/instructions come from them.
        name: database name.
    """
    catalog = catalog if catalog is not None else default_catalog()
    db = create_culinarydb_schema(name)

    regions_table = db.table("regions")
    for region in REGIONS:
        regions_table.insert(
            {
                "code": region.code,
                "name": region.name,
                "pairing": region.pairing.value,
                "is_aggregate_only": False,
            }
        )
    for region_name in WORLD_ONLY_REGION_NAMES:
        regions_table.insert(
            {
                "code": region_name,
                "name": region_name,
                "pairing": None,
                "is_aggregate_only": True,
            }
        )

    sources_table = db.table("sources")
    for source_name, total in RECIPE_SOURCES.items():
        sources_table.insert(
            {"name": source_name, "published_total": total}
        )

    categories_table = db.table("categories")
    category_names = sorted(
        {ingredient.category.value for ingredient in catalog.ingredients}
    )
    for category_name in category_names:
        categories_table.insert({"name": category_name})

    molecules_table = db.table("molecules")
    molecules_table.bulk_insert(
        {
            "molecule_id": molecule.molecule_id,
            "name": molecule.name,
            "flavor_family": molecule.flavor_family,
        }
        for molecule in catalog.molecules
    )

    ingredients_table = db.table("ingredients")
    link_rows = []
    synonym_rows = []
    link_id = 1
    for ingredient in catalog.ingredients:
        ingredients_table.insert(
            {
                "ingredient_id": ingredient.ingredient_id,
                "name": ingredient.name,
                "category": ingredient.category.value,
                "is_compound": ingredient.is_compound,
                "profile_size": len(ingredient.flavor_profile),
            }
        )
        for molecule_id in sorted(ingredient.flavor_profile):
            link_rows.append(
                {
                    "link_id": link_id,
                    "ingredient_id": ingredient.ingredient_id,
                    "molecule_id": molecule_id,
                }
            )
            link_id += 1
        for synonym in ingredient.synonyms:
            synonym_rows.append(
                {
                    "synonym": synonym,
                    "ingredient_id": ingredient.ingredient_id,
                }
            )
    db.table("ingredient_molecules").bulk_insert(link_rows)
    db.table("ingredient_synonyms").bulk_insert(synonym_rows)

    raw_by_id = {}
    if raw_recipes is not None:
        raw_by_id = {raw.recipe_id: raw for raw in raw_recipes}

    recipes_table = db.table("recipes")
    recipe_links = []
    link_id = 1
    for recipe in recipes:
        raw = raw_by_id.get(recipe.recipe_id)
        source = raw.source if raw is not None else recipe.source
        recipes_table.insert(
            {
                "recipe_id": recipe.recipe_id,
                "title": raw.title if raw is not None else recipe.title,
                "source": source if source in RECIPE_SOURCES else None,
                "region_code": recipe.region_code,
                "n_ingredients": recipe.size,
                "instructions": raw.instructions if raw is not None else None,
            }
        )
        for ingredient_id in sorted(recipe.ingredient_ids):
            recipe_links.append(
                {
                    "link_id": link_id,
                    "recipe_id": recipe.recipe_id,
                    "ingredient_id": ingredient_id,
                }
            )
            link_id += 1
    db.table("recipe_ingredients").bulk_insert(recipe_links)
    return db
