"""The paper's primary contribution, under its canonical location.

The food-pairing analysis lives in :mod:`repro.pairing`; this package
re-exports it so the conventional ``repro.core`` import path works::

    from repro.core import analyze_cuisine, food_pairing_score
"""

from ..pairing import *  # noqa: F401,F403 - deliberate façade
from ..pairing import __all__  # noqa: F401
