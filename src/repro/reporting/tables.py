"""Plain-text table rendering for experiment output.

Small, dependency-free renderers producing the aligned ASCII tables the
benchmark harness prints (and EXPERIMENTS.md embeds).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any


def format_cell(value: Any) -> str:
    """Human formatting: floats to 3 significant-ish decimals, rest str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """Render an aligned ASCII table with a header rule."""
    cells = [[format_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(
            header.ljust(widths[index])
            for index, header in enumerate(headers)
        ),
        "  ".join("-" * width for width in widths),
    ]
    for row in cells:
        lines.append(
            "  ".join(
                cell.ljust(widths[index]) for index, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def render_dict_table(
    rows: Sequence[dict[str, Any]], columns: Sequence[str] | None = None
) -> str:
    """Render dict rows; columns default to the first row's key order."""
    if not rows:
        return "(empty)"
    if columns is None:
        columns = list(rows[0])
    return render_table(
        columns, [[row.get(column) for column in columns] for row in rows]
    )


def render_heatmap(
    row_labels: Sequence[str],
    column_labels: Sequence[str],
    values,
    scale: float = 100.0,
) -> str:
    """Render a matrix (e.g. Fig 2 category shares) as a numeric grid."""
    headers = ["", *column_labels]
    rows = []
    for label, row in zip(row_labels, values):
        rows.append([label, *[float(value) * scale for value in row]])
    return render_table(headers, rows)
