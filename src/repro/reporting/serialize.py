"""Serialise experiment figure data to CSV for external plotting.

The harness prints text tables; these helpers additionally write the raw
series behind each figure (histograms, rank curves, heat-map matrices,
Z-score tables) as plain CSV so any plotting tool can regenerate the
paper's visuals.
"""

from __future__ import annotations

import csv
from collections.abc import Sequence
from pathlib import Path
from typing import Any


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> Path:
    """Write one CSV file (parent directories created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return target


def export_fig3a(result, directory: str | Path) -> Path:
    """Recipe-size distributions: one row per (region, size)."""
    rows = []
    for code, distribution in sorted(result.distributions.items()):
        for size, probability, cumulative in zip(
            distribution.sizes,
            distribution.probability,
            distribution.cumulative,
        ):
            rows.append([code, int(size), float(probability), float(cumulative)])
    for size, probability, cumulative in zip(
        result.world.sizes, result.world.probability, result.world.cumulative
    ):
        rows.append(["WORLD", int(size), float(probability), float(cumulative)])
    return write_csv(
        Path(directory) / "fig3a_size_distribution.csv",
        ["region", "size", "probability", "cumulative"],
        rows,
    )


def export_fig3b(result, directory: str | Path) -> Path:
    """Popularity curves: one row per (region, rank)."""
    rows = []
    for code, curve in sorted(result.curves.items()):
        for rank, (name, count, normalized, share) in enumerate(
            zip(
                curve.names,
                curve.counts,
                curve.normalized,
                curve.cumulative_share,
            ),
            start=1,
        ):
            rows.append(
                [code, rank, name, int(count), float(normalized), float(share)]
            )
    return write_csv(
        Path(directory) / "fig3b_popularity.csv",
        ["region", "rank", "ingredient", "count", "normalized", "cumulative_share"],
        rows,
    )


def export_fig2(result, directory: str | Path) -> Path:
    """Category shares matrix: one row per (region, category)."""
    rows = []
    for row_index, label in enumerate(result.row_labels):
        for column_index, category in enumerate(result.column_labels):
            rows.append(
                [label, category, float(result.shares[row_index, column_index])]
            )
    return write_csv(
        Path(directory) / "fig2_category_shares.csv",
        ["region", "category", "share"],
        rows,
    )


def export_fig4(result, directory: str | Path) -> Path:
    """Z-score table: one row per region."""
    rows = [
        [
            row.code,
            row.expected.value,
            row.z_random,
            row.z_frequency,
            row.z_category,
            row.z_frequency_category,
            row.effect_size,
        ]
        for row in sorted(result.rows, key=lambda item: -item.z_random)
    ]
    return write_csv(
        Path(directory) / "fig4_zscores.csv",
        [
            "region", "paper_direction", "z_random", "z_frequency",
            "z_category", "z_frequency_category", "effect_size",
        ],
        rows,
    )


def export_fig5(result, directory: str | Path) -> Path:
    """Top contributors: one row per (region, contributor rank)."""
    rows = []
    for region_row in result.rows:
        for rank, contribution in enumerate(region_row.top, start=1):
            rows.append(
                [
                    region_row.code,
                    region_row.pairing.value,
                    rank,
                    contribution.ingredient_name,
                    contribution.usage,
                    contribution.chi_percent,
                ]
            )
    return write_csv(
        Path(directory) / "fig5_contributors.csv",
        ["region", "pairing", "rank", "ingredient", "usage", "chi_percent"],
        rows,
    )
