"""Plain-text reporting and CSV serialisation for experiment output."""

from .serialize import (
    export_fig2,
    export_fig3a,
    export_fig3b,
    export_fig4,
    export_fig5,
    write_csv,
)
from .tables import format_cell, render_dict_table, render_heatmap, render_table

__all__ = [
    "export_fig2",
    "export_fig3a",
    "export_fig3b",
    "export_fig4",
    "export_fig5",
    "write_csv",
    "format_cell",
    "render_dict_table",
    "render_heatmap",
    "render_table",
]
