"""Curated ingredient catalog data.

The paper (Section III.B) builds its ingredient list from FlavorDB and then
curates it: 29 generic/noisy entities removed, synonyms added (bun for
bread, lager for beer, curd for yogurt, spelling variants like
whiskey/whisky), 13 specific ingredients added back (anise oil, apple
juice, ...), 4 ingredients imported from Ahn et al. (cayenne, yeast,
tequila, sauerkraut), 7 additives added manually (the last four with no
flavor profile), and 103 'compound ingredients' (spice blends, sauces and
common dishes) compiled with pooled flavor profiles. The result is 840
basic ingredients in 21 categories.

FlavorDB itself is not redistributable, so this module carries our own
curated recreation of that list: real ingredient names, organised per
category, sized to match the paper's totals exactly (840 basic + 103
compound; checked by tests). Flavor profiles are synthesised separately in
:mod:`repro.flavordb.profiles`.
"""

from __future__ import annotations

from ..datamodel import Category

# ---------------------------------------------------------------------------
# Basic ingredients per category.
# ---------------------------------------------------------------------------

VEGETABLES: tuple[str, ...] = (
    "tomato", "onion", "garlic", "carrot", "celery", "potato", "bell pepper",
    "red bell pepper", "green bell pepper", "yellow bell pepper", "cucumber",
    "zucchini", "eggplant", "spinach", "kale", "lettuce", "romaine lettuce",
    "iceberg lettuce", "cabbage", "red cabbage", "napa cabbage", "broccoli",
    "cauliflower", "brussels sprout", "asparagus", "artichoke", "leek",
    "shallot", "scallion", "radish", "daikon", "turnip", "rutabaga", "beet",
    "parsnip", "sweet potato", "yam", "pumpkin", "butternut squash",
    "acorn squash", "spaghetti squash", "okra", "green bean", "snow pea",
    "snap pea", "arugula", "watercress", "endive",
    "radicchio", "fennel bulb", "kohlrabi", "celeriac", "jicama", "taro",
    "cassava", "plantain", "chayote", "tomatillo", "jalapeno pepper",
    "serrano pepper", "poblano pepper", "habanero pepper", "anaheim pepper",
    "banana pepper", "bird chili", "green chili", "red chili", "chili",
    "bamboo shoot", "water chestnut", "lotus root", "bok choy", "mustard green",
    "collard green", "swiss chard", "dandelion green", "sorrel",
    "seaweed", "nori", "wakame", "kombu", "bean sprout",
    "pickle", "sauerkraut", "kimchi",
    "red onion", "white onion", "sweet onion", "cherry tomato", "sun dried tomato",
    "tomato juice", "tomato paste", "tomato puree", "artichoke heart",
    "hearts of palm", "horseradish", "wasabi", "ginger", "turmeric root",
    "galangal",
)

FRUITS: tuple[str, ...] = (
    "apple", "green apple", "red apple", "crabapple", "pear", "asian pear",
    "quince", "peach", "nectarine", "apricot", "plum", "prune", "cherry",
    "sour cherry", "sweet cherry", "grape", "red grape", "green grape",
    "raisin", "currant", "black currant", "red currant", "gooseberry",
    "strawberry", "raspberry", "blackberry", "blueberry", "cranberry",
    "lingonberry", "elderberry", "mulberry", "boysenberry", "huckleberry",
    "orange", "blood orange", "mandarin orange", "tangerine", "clementine",
    "grapefruit", "pomelo", "lemon", "lime", "key lime", "kumquat", "citron",
    "yuzu", "banana", "pineapple", "mango", "papaya", "guava", "passion fruit",
    "lychee", "longan", "rambutan", "mangosteen", "durian", "jackfruit",
    "breadfruit", "star fruit", "dragon fruit", "kiwi", "persimmon",
    "pomegranate", "fig", "date", "olive", "green olive", "black olive",
    "avocado", "coconut", "melon", "cantaloupe", "honeydew melon", "watermelon",
    "casaba melon", "tamarind", "rhubarb", "cape gooseberry", "loquat",
   
    "jujube", "ackee", "apple juice",
    "lemon juice", "lime juice", "orange juice", "grape juice",
    "cranberry juice", "pineapple juice", "orange peel", "lemon peel",
    "lime peel", "grapefruit peel", "candied citrus peel", "maraschino cherry",
    "dried apricot", "dried fig", "dried cranberry",
)

HERBS: tuple[str, ...] = (
    "basil", "thai basil", "holy basil", "parsley", "cilantro", "mint",
    "peppermint", "spearmint", "oregano", "thyme", "lemon thyme", "rosemary",
    "sage", "tarragon", "dill", "chervil", "chive", "marjoram", "savory",
    "lemongrass", "bay leaf", "curry leaf", "kaffir lime leaf", "fenugreek leaf",
    "lovage", "borage", "hyssop", "lemon balm", "lemon verbena", "epazote",
    "shiso", "perilla", "stevia leaf", "angelica", "chamomile", "verbena",
    "catnip", "salad burnet", "culantro", "rue", "woodruff", "mugwort",
    "pandan leaf", "fennel frond", "celery leaf",
)

SPICES: tuple[str, ...] = (
    "black pepper", "white pepper", "green peppercorn", "pink peppercorn",
    "szechuan pepper", "long pepper", "cayenne", "paprika", "smoked paprika",
    "red pepper flake", "cumin", "coriander seed", "cardamom", "black cardamom",
    "clove", "cinnamon", "cassia", "nutmeg", "mace", "allspice", "star anise",
    "anise seed", "fennel seed", "caraway seed", "dill seed", "celery seed",
    "mustard seed", "black mustard seed", "yellow mustard seed", "fenugreek seed",
    "ajwain", "nigella seed", "poppy seed", "saffron", "turmeric", "dried ginger",
    "galangal powder", "asafoetida", "sumac", "juniper berry", "vanilla",
    "vanilla bean", "tonka bean", "grains of paradise", "annatto", "dried chili",
    "chipotle pepper", "ancho chili", "guajillo chili", "pasilla chili",
    "arbol chili", "kashmiri chili", "aleppo pepper", "urfa biber",
    "gochugaru", "wattleseed", "mahlab", "anardana", "amchur", "kokum",
    "licorice root", "orris root", "dried lime", "cubeb", "salt",
)

MEATS: tuple[str, ...] = (
    "beef", "ground beef", "beef steak", "beef brisket", "beef short rib",
    "oxtail", "veal", "beef liver", "beef tongue", "pork", "ground pork",
    "pork loin", "pork belly", "pork shoulder", "pork rib", "pork fat",
    "bacon", "pancetta", "prosciutto", "cured ham", "ham", "salami",
    "pepperoni", "chorizo", "sausage", "bratwurst", "mortadella", "pastrami",
    "corned beef", "lamb", "ground lamb", "lamb chop", "lamb shank", "mutton",
    "goat", "chicken", "chicken breast", "chicken thigh", "chicken wing",
    "chicken liver", "turkey", "ground turkey", "duck", "duck breast", "goose",
    "quail", "rabbit", "venison", "bison", "bear",
    "egg", "egg yolk", "egg white", "quail egg", "duck egg",
)

FISH: tuple[str, ...] = (
    "salmon", "smoked salmon", "tuna", "albacore tuna", "cod", "haddock",
    "halibut", "flounder", "sole", "trout", "rainbow trout", "mackerel",
    "sardine", "anchovy", "herring", "pickled herring", "smoked herring",
    "bass", "sea bass", "striped bass", "snapper", "red snapper", "grouper",
    "mahi mahi", "swordfish", "tilapia", "catfish", "carp", "pike", "perch",
    "eel", "smoked eel", "monkfish", "turbot", "pollock",
    "bonito", "skipjack", "yellowtail", "barramundi", "bream",
    "whitefish", "roe", "caviar", "salmon roe", "dried fish", "fish sauce",
    "bonito flake",
)

SEAFOOD: tuple[str, ...] = (
    "shrimp", "tiger prawn", "crab", "blue crab", "dungeness crab", "king crab",
    "soft shell crab", "lobster", "spiny lobster", "crayfish", "oyster",
    "smoked oyster", "mussel", "clam", "littleneck clam", "razor clam",
    "scallop", "bay scallop", "sea scallop", "squid", "cuttlefish", "octopus",
    "abalone", "sea urchin", "conch", "krill",
    "dried shrimp", "shrimp paste",
)

DAIRY: tuple[str, ...] = (
    "milk", "whole milk", "skim milk", "buttermilk", "condensed milk",
    "evaporated milk", "powdered milk", "cream", "heavy cream", "light cream",
    "sour cream", "creme fraiche", "whipped cream", "butter",
    "clarified butter", "ghee", "yogurt", "greek yogurt", "kefir", "cheese",
    "cheddar cheese", "mozzarella cheese", "parmesan cheese", "romano cheese",
    "provolone cheese", "swiss cheese", "gruyere cheese", "emmental cheese",
    "gouda cheese", "edam cheese", "brie cheese", "camembert cheese",
    "blue cheese", "gorgonzola cheese", "roquefort cheese", "feta cheese",
    "goat cheese", "ricotta cheese", "mascarpone cheese", "cream cheese",
    "cottage cheese", "paneer", "queso fresco", "manchego cheese",
)

CEREALS: tuple[str, ...] = (
    "wheat", "whole wheat flour", "flour", "bread flour", "cake flour",
    "semolina", "durum wheat", "bulgur", "couscous", "farro", "spelt",
    "rice", "white rice", "brown rice", "basmati rice", "jasmine rice",
    "arborio rice", "sticky rice", "wild rice", "rice flour", "barley",
    "pearl barley", "oat", "rolled oat", "oat bran", "rye", "rye flour",
    "millet", "sorghum", "buckwheat", "quinoa", "amaranth", "wheat germ",
    "wheat bran",
)

MAIZE: tuple[str, ...] = (
    "corn", "sweet corn", "corn kernel", "cornmeal", "corn flour", "masa",
    "polenta", "grits", "popcorn", "corn syrup",
)

LEGUMES: tuple[str, ...] = (
    "lentil", "red lentil", "green lentil", "black lentil", "chickpea",
    "black bean", "kidney bean", "pinto bean", "navy bean", "cannellini bean",
    "great northern bean", "lima bean", "fava bean", "mung bean", "adzuki bean",
    "black eyed pea", "pigeon pea", "split pea", "green pea", "soybean",
    "edamame", "tofu", "tempeh", "natto", "soy milk", "pea", "white bean",
    "borlotti bean", "flageolet bean", "urad dal", "toor dal", "chana dal",
    "moth bean", "winged bean", "lupin bean",
)

NUTS_AND_SEEDS: tuple[str, ...] = (
    "almond", "walnut", "pecan", "cashew", "pistachio", "hazelnut",
    "macadamia nut", "brazil nut", "pine nut", "peanut", "chestnut",
    "sunflower seed", "pumpkin seed", "sesame seed",
    "black sesame seed", "flax seed", "chia seed", "hemp seed", "melon seed",
    "lotus seed", "almond butter", "peanut butter", "almond milk",
    "coconut flake", "coconut milk", "coconut oil", "coconut cream",
    "tiger nut", "candlenut", "kola nut", "ginkgo nut", "acorn",
    "sesame oil", "walnut oil", "almond extract",
)

PLANTS: tuple[str, ...] = (
    "sugar", "brown sugar", "powdered sugar", "cane sugar", "palm sugar",
    "maple syrup", "molasses", "honey", "agave nectar", "date syrup",
    "golden syrup", "tea", "green tea", "black tea", "matcha", "oolong tea",
    "coffee", "espresso", "cocoa", "cocoa butter", "dark chocolate",
    "milk chocolate", "white chocolate", "chocolate", "carob", "vanilla extract",
    "olive oil", "extra virgin olive oil", "canola oil", "sunflower oil",
    "safflower oil", "soybean oil", "peanut oil", "grapeseed oil", "palm oil",
    "mustard oil", "rice bran oil", "avocado oil", "vegetable oil",
    "corn oil", "vinegar", "white vinegar", "apple cider vinegar",
    "balsamic vinegar", "red wine vinegar", "white wine vinegar",
    "rice vinegar", "sherry vinegar", "malt vinegar", "tamarind paste",
    "aloe vera", "agar", "carrageenan", "pectin", "chicory root",
    "dandelion root", "burdock root",
    "maple sugar", "cane juice", "beet sugar", "hops",
    "barley malt", "malt extract", "yeast", "nutritional yeast",
)

BAKERY: tuple[str, ...] = (
    "bread", "white bread", "whole wheat bread", "sourdough bread", "rye bread",
    "pumpernickel bread", "baguette", "ciabatta", "focaccia", "brioche",
    "croissant", "pita bread", "naan", "tortilla", "corn tortilla",
    "flour tortilla", "bagel", "english muffin", "biscuit", "cracker",
    "graham cracker", "breadcrumb", "panko", "crouton", "pretzel", "waffle",
    "pancake", "muffin", "doughnut",
)

BEVERAGES: tuple[str, ...] = (
    "water", "sparkling water", "soda water", "cola", "ginger ale",
    "lemonade", "limeade", "iced tea", "hot chocolate", "chai", "lassi",
    "horchata", "tamarind drink", "coconut water", "almond drink",
    "rice drink", "fruit punch", "grenadine", "tonic water", "root beer",
    "cream soda", "barley tea", "mate",
    "hibiscus tea", "rooibos tea", "kombucha", "apple cider", "vegetable juice",
    "carrot juice", "beet juice", "celery juice", "pomegranate juice",
    "white grape juice",
)

BEVERAGES_ALCOHOLIC: tuple[str, ...] = (
    "wine", "red wine", "white wine", "rose wine", "sparkling wine",
    "champagne", "prosecco", "port wine", "sherry", "marsala wine",
    "vermouth", "beer", "ale", "stout", "porter", "pilsner", "wheat beer",
    "cider", "sake", "mirin", "shaoxing wine", "rice wine", "whiskey",
    "bourbon", "scotch", "rye whiskey", "brandy", "cognac",
    "rum", "dark rum", "vodka", "gin", "tequila", "mezcal", "ouzo", "absinthe",
    "amaretto", "kahlua", "triple sec",
    "limoncello",
)

ESSENTIAL_OILS: tuple[str, ...] = (
    "anise oil", "peppermint oil", "spearmint oil", "lemon oil", "orange oil",
    "lime oil", "bergamot oil", "lavender oil", "rose oil", "clove oil",
    "cinnamon oil", "eucalyptus oil", "wintergreen oil", "neroli oil",
    "citronella oil", "cedarwood oil", "sandalwood oil", "vetiver oil",
)

FLOWERS: tuple[str, ...] = (
    "rose", "rose water", "orange blossom", "orange blossom water", "lavender",
    "hibiscus", "elderflower", "jasmine", "violet", "nasturtium", "squash blossom",
    "chrysanthemum", "marigold", "safflower petal",
)

FUNGI: tuple[str, ...] = (
    "mushroom", "button mushroom", "cremini mushroom", "portobello mushroom",
    "shiitake mushroom", "dried shiitake", "oyster mushroom", "enoki mushroom",
    "maitake mushroom", "chanterelle", "porcini mushroom", "morel mushroom",
    "black truffle", "white truffle", "wood ear mushroom", "straw mushroom",
    "king oyster mushroom", "huitlacoche",
)

ADDITIVES: tuple[str, ...] = (
    "baking powder", "baking soda", "monosodium glutamate", "citric acid",
    "cooking spray", "gelatin", "food coloring", "liquid smoke",
    "cream of tartar", "xanthan gum", "lecithin", "ascorbic acid",
)

DISHES: tuple[str, ...] = (
    "pasta", "spaghetti", "macaroni", "egg noodle", "rice noodle", "ramen noodle",
    "soba noodle", "udon noodle", "vermicelli", "lasagna noodle", "gnocchi",
    "dumpling wrapper", "wonton wrapper", "phyllo dough", "puff pastry",
)

#: Basic ingredients grouped by category. The per-category tuples above are
#: kept as named constants because tests and docs reference them directly.
BASIC_INGREDIENTS: dict[Category, tuple[str, ...]] = {
    Category.VEGETABLE: VEGETABLES,
    Category.FRUIT: FRUITS,
    Category.HERB: HERBS,
    Category.SPICE: SPICES,
    Category.MEAT: MEATS,
    Category.FISH: FISH,
    Category.SEAFOOD: SEAFOOD,
    Category.DAIRY: DAIRY,
    Category.CEREAL: CEREALS,
    Category.MAIZE: MAIZE,
    Category.LEGUME: LEGUMES,
    Category.NUTS_AND_SEEDS: NUTS_AND_SEEDS,
    Category.PLANT: PLANTS,
    Category.BAKERY: BAKERY,
    Category.BEVERAGE: BEVERAGES,
    Category.BEVERAGE_ALCOHOLIC: BEVERAGES_ALCOHOLIC,
    Category.ESSENTIAL_OIL: ESSENTIAL_OILS,
    Category.FLOWER: FLOWERS,
    Category.FUNGUS: FUNGI,
    Category.ADDITIVE: ADDITIVES,
    Category.DISH: DISHES,
}

# ---------------------------------------------------------------------------
# Curation data from Section III.B of the paper.
# ---------------------------------------------------------------------------

#: 29 generic/noisy FlavorDB entities removed during curation. These appear
#: in the raw source list and must be absent from the final catalog.
REMOVED_GENERIC_ENTITIES: tuple[str, ...] = (
    "food", "meal", "snack", "breakfast", "dinner", "lunch", "dessert",
    "beverage", "alcoholic beverage", "juice", "sauce", "soup", "stew",
    "fat", "oil", "meat product", "dairy product", "fish product",
    "vegetable product", "fruit product", "seasoning", "condiment",
    "garnish", "stock", "broth", "spread", "confectionery", "cereal product",
    "baked good",
)

#: 13 specific ingredients the paper added back because FlavorDB
#: coarse-grained them ("hops bear" in the paper text is the source's
#: rendering of hops/beer; we carry "hops").
PAPER_ADDED_INGREDIENTS: tuple[str, ...] = (
    "anise oil", "apple juice", "coconut milk", "coconut oil", "hops",
    "lemon juice", "brown rice", "tomato juice", "tomato paste",
    "tomato puree", "coriander seed", "pork fat", "cured ham",
)

#: 4 ingredients imported from Ahn et al. (2011).
AHN_ADDED_INGREDIENTS: tuple[str, ...] = (
    "cayenne", "yeast", "tequila", "sauerkraut",
)

#: 7 manually added additives; the last four carry no flavor profile.
MANUAL_ADDITIVES: tuple[str, ...] = (
    "baking powder", "monosodium glutamate", "citric acid", "cooking spray",
    "gelatin", "food coloring", "liquid smoke",
)

#: Additives kept without any flavor profile (excluded from pairing).
PROFILE_FREE_ADDITIVES: tuple[str, ...] = (
    "cooking spray", "gelatin", "food coloring", "liquid smoke",
)

#: Synonyms / spelling variants mapped to canonical names. Includes the
#: paper's examples (bun/bread, lager/beer, curd/yogurt, whisky/whiskey,
#: hing/asafoetida, chile/chili) plus common variants recipes use.
SYNONYMS: dict[str, str] = {
    "bun": "bread",
    "pepper": "black pepper",
    "peppercorn": "black pepper",
    "lager": "beer",
    "curd": "yogurt",
    "whisky": "whiskey",
    "hing": "asafoetida",
    "chile": "chili",
    "chilli": "chili",
    "aubergine": "eggplant",
    "courgette": "zucchini",
    "coriander leaf": "cilantro",
    "coriander": "cilantro",
    "garbanzo bean": "chickpea",
    "garbanzo": "chickpea",
    "prawn": "shrimp",
    "spring onion": "scallion",
    "green onion": "scallion",
    "capsicum": "bell pepper",
    "rocket": "arugula",
    "beetroot": "beet",
    "corn starch": "corn flour",
    "cornstarch": "corn flour",
    "maize flour": "corn flour",
    "filbert": "hazelnut",
    "groundnut": "peanut",
    "bicarbonate of soda": "baking soda",
    "confectioners sugar": "powdered sugar",
    "icing sugar": "powdered sugar",
    "caster sugar": "sugar",
    "granulated sugar": "sugar",
    "ladys finger": "okra",
    "brinjal": "eggplant",
    "dhania": "cilantro",
    "jeera": "cumin",
    "haldi": "turmeric",
    "methi": "fenugreek leaf",
    "paneer cheese": "paneer",
    "besan": "chickpea",
    "swede": "rutabaga",
    "snow peas": "snow pea",
    "mangetout": "snow pea",
    "romano bean": "borlotti bean",
    "cilantro leaf": "cilantro",
    "scallions": "scallion",
    "msg": "monosodium glutamate",
    "ajinomoto": "monosodium glutamate",
    "double cream": "heavy cream",
    "single cream": "light cream",
    "gammon": "ham",
    "frankfurter": "sausage",
    "hot dog": "sausage",
    "calamari": "squid",
    "king prawn": "tiger prawn",
    "langoustine": "spiny lobster",
    "sultana": "raisin",
    "golden raisin": "raisin",
    "dried plum": "prune",
    "spring greens": "collard green",
    "chinese cabbage": "napa cabbage",
    "pak choi": "bok choy",
    "eryngii": "king oyster mushroom",
    "cep": "porcini mushroom",
    "corn meal": "cornmeal",
    "semolina flour": "semolina",
    "whole milk yogurt": "yogurt",
    "natural yogurt": "yogurt",
    "soda bicarbonate": "baking soda",
    "tinned tomato": "tomato",
    "canned tomato": "tomato",
    "passata": "tomato puree",
    "glace cherry": "maraschino cherry",
    "desiccated coconut": "coconut flake",
}

# ---------------------------------------------------------------------------
# Compound ingredients (103), Section III.B.
#
# Each entry: name -> (category, constituents). Constituents are canonical
# basic-ingredient names; the compound's flavor profile is the union of its
# constituents' profiles.
# ---------------------------------------------------------------------------

COMPOUND_INGREDIENTS: dict[str, tuple[Category, tuple[str, ...]]] = {
    # -- emulsions, creams, condiments ---------------------------------
    "half half": (Category.DAIRY, ("milk", "cream")),
    "mayonnaise": (Category.DISH, ("vegetable oil", "egg", "lemon juice")),
    "aioli": (Category.DISH, ("olive oil", "egg yolk", "garlic", "lemon juice")),
    "tartar sauce": (Category.DISH, ("mayonnaise", "pickle", "caper sauce base")),
    "ketchup": (Category.DISH, ("tomato paste", "vinegar", "sugar", "onion")),
    "yellow mustard": (Category.DISH, ("yellow mustard seed", "vinegar", "turmeric")),
    "dijon mustard": (Category.DISH, ("black mustard seed", "white wine", "vinegar")),
    "whole grain mustard": (Category.DISH, ("yellow mustard seed", "black mustard seed", "vinegar")),
    "horseradish sauce": (Category.DISH, ("horseradish", "cream", "vinegar")),
    "remoulade": (Category.DISH, ("mayonnaise", "dijon mustard", "pickle")),
    "thousand island dressing": (Category.DISH, ("mayonnaise", "ketchup", "pickle")),
    "ranch dressing": (Category.DISH, ("buttermilk", "mayonnaise", "dill", "garlic")),
    "caesar dressing": (Category.DISH, ("anchovy", "egg yolk", "parmesan cheese", "lemon juice", "olive oil")),
    "vinaigrette": (Category.DISH, ("olive oil", "red wine vinegar", "dijon mustard")),
    "italian dressing": (Category.DISH, ("olive oil", "white wine vinegar", "oregano", "garlic")),
    # -- sauces ----------------------------------------------------------
    "soy sauce": (Category.DISH, ("soybean", "wheat", "salt")),
    "tamari": (Category.DISH, ("soybean", "salt")),
    "teriyaki sauce": (Category.DISH, ("soy sauce", "mirin", "sugar", "ginger")),
    "hoisin sauce": (Category.DISH, ("soybean", "sugar", "garlic", "chili")),
    "oyster sauce": (Category.DISH, ("oyster", "soy sauce", "sugar")),
    "worcestershire sauce": (Category.DISH, ("anchovy", "tamarind paste", "malt vinegar", "molasses", "garlic")),
    "barbecue sauce": (Category.DISH, ("tomato paste", "molasses", "vinegar", "liquid smoke")),
    "sriracha": (Category.DISH, ("red chili", "garlic", "vinegar", "sugar")),
    "tabasco sauce": (Category.DISH, ("red chili", "vinegar", "salt")),
    "sweet chili sauce": (Category.DISH, ("red chili", "sugar", "garlic", "rice vinegar")),
    "chili garlic sauce": (Category.DISH, ("red chili", "garlic", "vinegar")),
    "sambal": (Category.DISH, ("red chili", "shallot", "garlic", "shrimp paste", "lime juice")),
    "harissa": (Category.DISH, ("dried chili", "garlic", "caraway seed", "coriander seed", "olive oil")),
    "chimichurri": (Category.DISH, ("parsley", "oregano", "garlic", "red wine vinegar", "olive oil")),
    "pesto": (Category.DISH, ("basil", "pine nut", "parmesan cheese", "garlic", "olive oil")),
    "marinara sauce": (Category.DISH, ("tomato", "garlic", "basil", "olive oil")),
    "alfredo sauce": (Category.DISH, ("butter", "heavy cream", "parmesan cheese")),
    "bechamel sauce": (Category.DISH, ("butter", "flour", "milk", "nutmeg")),
    "hollandaise sauce": (Category.DISH, ("egg yolk", "butter", "lemon juice")),
    "gravy": (Category.DISH, ("flour", "butter", "chicken")),
    "mole sauce": (Category.DISH, ("ancho chili", "dark chocolate", "sesame seed", "almond", "cinnamon")),
    "enchilada sauce": (Category.DISH, ("guajillo chili", "tomato paste", "cumin", "garlic")),
    "ponzu": (Category.DISH, ("soy sauce", "yuzu", "bonito flake", "rice vinegar")),
    "tzatziki": (Category.DISH, ("greek yogurt", "cucumber", "garlic", "dill")),
    "raita": (Category.DISH, ("yogurt", "cucumber", "cumin", "cilantro")),
    "tahini": (Category.DISH, ("sesame seed", "sesame oil")),
    "hummus": (Category.DISH, ("chickpea", "tahini", "lemon juice", "garlic", "olive oil")),
    "baba ghanoush": (Category.DISH, ("eggplant", "tahini", "lemon juice", "garlic")),
    "guacamole": (Category.DISH, ("avocado", "lime juice", "cilantro", "onion", "jalapeno pepper")),
    "salsa": (Category.DISH, ("tomato", "onion", "jalapeno pepper", "cilantro", "lime juice")),
    "salsa verde": (Category.DISH, ("tomatillo", "serrano pepper", "cilantro", "onion")),
    "pico de gallo": (Category.DISH, ("tomato", "onion", "cilantro", "lime juice", "serrano pepper")),
    "romesco": (Category.DISH, ("red bell pepper", "almond", "tomato", "sherry vinegar", "olive oil")),
    "chutney": (Category.DISH, ("mango", "sugar", "vinegar", "dried ginger")),
    "mint chutney": (Category.DISH, ("mint", "cilantro", "green chili", "lime juice")),
    "tamarind chutney": (Category.DISH, ("tamarind paste", "sugar", "cumin")),
    "cranberry sauce": (Category.DISH, ("cranberry", "sugar", "orange peel")),
    "applesauce": (Category.DISH, ("apple", "sugar", "cinnamon")),
    "caramel sauce": (Category.DISH, ("sugar", "butter", "heavy cream")),
    "chocolate syrup": (Category.DISH, ("cocoa", "sugar", "vanilla extract")),
    "fudge sauce": (Category.DISH, ("dark chocolate", "heavy cream", "butter")),
    "custard": (Category.DISH, ("milk", "egg yolk", "sugar", "vanilla")),
    "lemon curd": (Category.DISH, ("lemon juice", "egg yolk", "butter", "sugar")),
    "pastry cream": (Category.DISH, ("milk", "egg yolk", "sugar", "flour", "vanilla")),
    "fish stock": (Category.DISH, ("cod", "onion", "celery", "bay leaf")),
    "chicken stock": (Category.DISH, ("chicken", "onion", "carrot", "celery")),
    "beef stock": (Category.DISH, ("beef", "onion", "carrot", "celery")),
    "vegetable stock": (Category.DISH, ("onion", "carrot", "celery", "leek")),
    "dashi": (Category.DISH, ("kombu", "bonito flake")),
    "miso": (Category.DISH, ("soybean", "rice", "salt")),
    "gochujang": (Category.DISH, ("gochugaru", "rice", "soybean", "salt")),
    "doubanjiang": (Category.DISH, ("fava bean", "red chili", "salt")),
    "xo sauce": (Category.DISH, ("dried shrimp", "cured ham", "garlic", "chili")),
    "black bean sauce": (Category.DISH, ("black bean", "garlic", "soy sauce")),
    "peanut sauce": (Category.DISH, ("peanut butter", "soy sauce", "lime juice", "coconut milk")),
    "caper sauce base": (Category.DISH, ("nasturtium", "vinegar", "salt")),
    # -- spice blends ------------------------------------------------------
    "garam masala": (Category.SPICE, ("cumin", "coriander seed", "cardamom", "clove", "cinnamon", "black pepper")),
    "curry powder": (Category.SPICE, ("turmeric", "cumin", "coriander seed", "fenugreek seed", "dried chili")),
    "madras curry powder": (Category.SPICE, ("turmeric", "cumin", "coriander seed", "black mustard seed", "dried chili")),
    "tandoori masala": (Category.SPICE, ("cumin", "coriander seed", "paprika", "dried ginger", "garlic")),
    "chaat masala": (Category.SPICE, ("amchur", "cumin", "black pepper", "asafoetida")),
    "panch phoron": (Category.SPICE, ("fenugreek seed", "nigella seed", "cumin", "black mustard seed", "fennel seed")),
    "chinese five spice": (Category.SPICE, ("star anise", "clove", "cinnamon", "szechuan pepper", "fennel seed")),
    "shichimi togarashi": (Category.SPICE, ("red pepper flake", "orange peel", "sesame seed", "nori", "dried ginger")),
    "herbes de provence": (Category.SPICE, ("thyme", "rosemary", "savory", "oregano", "lavender")),
    "italian seasoning": (Category.SPICE, ("oregano", "basil", "thyme", "rosemary", "marjoram")),
    "poultry seasoning": (Category.SPICE, ("sage", "thyme", "marjoram", "rosemary", "black pepper")),
    "pumpkin pie spice": (Category.SPICE, ("cinnamon", "nutmeg", "dried ginger", "clove", "allspice")),
    "apple pie spice": (Category.SPICE, ("cinnamon", "nutmeg", "allspice", "cardamom")),
    "cajun seasoning": (Category.SPICE, ("paprika", "cayenne", "garlic", "oregano", "thyme")),
    "creole seasoning": (Category.SPICE, ("paprika", "cayenne", "oregano", "basil", "white pepper")),
    "old bay seasoning": (Category.SPICE, ("celery seed", "paprika", "black pepper", "cayenne", "mace")),
    "jerk seasoning": (Category.SPICE, ("allspice", "habanero pepper", "thyme", "dried ginger", "cinnamon")),
    "adobo seasoning": (Category.SPICE, ("garlic", "oregano", "black pepper", "turmeric")),
    "taco seasoning": (Category.SPICE, ("dried chili", "cumin", "paprika", "oregano", "garlic")),
    "chili powder": (Category.SPICE, ("ancho chili", "cumin", "oregano", "garlic", "paprika")),
    "ras el hanout": (Category.SPICE, ("cumin", "coriander seed", "cinnamon", "dried ginger", "rose")),
    "za'atar": (Category.SPICE, ("thyme", "sumac", "sesame seed", "savory")),
    "baharat": (Category.SPICE, ("black pepper", "cumin", "coriander seed", "clove", "paprika")),
    "berbere": (Category.SPICE, ("dried chili", "fenugreek seed", "coriander seed", "dried ginger", "clove")),
    "dukkah": (Category.SPICE, ("hazelnut", "sesame seed", "coriander seed", "cumin")),
    "furikake": (Category.SPICE, ("nori", "sesame seed", "bonito flake", "salt")),
    "everything bagel seasoning": (Category.SPICE, ("sesame seed", "poppy seed", "garlic", "onion", "salt")),
    "pickling spice": (Category.SPICE, ("black mustard seed", "allspice", "bay leaf", "clove", "dill seed")),
    "mulling spice": (Category.SPICE, ("cinnamon", "clove", "allspice", "orange peel")),
    "curry paste red": (Category.DISH, ("red chili", "lemongrass", "galangal", "garlic", "shrimp paste")),
    "curry paste green": (Category.DISH, ("green chili", "lemongrass", "galangal", "thai basil", "shrimp paste")),
    "tikka masala paste": (Category.DISH, ("tomato paste", "garam masala", "dried ginger", "garlic", "paprika")),
}
