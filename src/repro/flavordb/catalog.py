"""The ingredient catalog: curation protocol + assembled ingredient objects.

:class:`IngredientCatalog` is the reproduction's stand-in for the paper's
curated FlavorDB-derived ingredient list. Building it executes the paper's
curation protocol (Section III.B) step by step:

1. start from the raw entity list (:func:`raw_flavordb_names` — the curated
   basics *minus* the later manual additions, *plus* the 29 generic/noisy
   entities),
2. remove the 29 generic entities,
3. add the 13 paper-specific ingredients, the 4 Ahn et al. imports and the
   7 manual additives (4 of which carry no flavor profile),
4. attach synonyms and spelling variants,
5. compile the 103 compound ingredients, pooling their constituents'
   flavor profiles (union of molecule sets).

The result: 840 basic + 103 compound ingredients, each with a category and
a deterministic synthetic flavor profile.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..datamodel import (
    Category,
    FlavorMolecule,
    Ingredient,
    LookupFailure,
    ValidationError,
)
from .catalog_data import (
    AHN_ADDED_INGREDIENTS,
    BASIC_INGREDIENTS,
    COMPOUND_INGREDIENTS,
    MANUAL_ADDITIVES,
    PAPER_ADDED_INGREDIENTS,
    PROFILE_FREE_ADDITIVES,
    REMOVED_GENERIC_ENTITIES,
    SYNONYMS,
)
from .profiles import primary_family, synthesize_profile
from .universe import build_universe


def raw_flavordb_names() -> tuple[str, ...]:
    """The pre-curation entity list, as sourced from 'FlavorDB'.

    Contains the generic/noisy entities the paper removed, and lacks the
    ingredients the paper added manually afterwards.
    """
    manual_additions = (
        set(PAPER_ADDED_INGREDIENTS)
        | set(AHN_ADDED_INGREDIENTS)
        | set(MANUAL_ADDITIVES)
    )
    names = [
        name
        for category_names in BASIC_INGREDIENTS.values()
        for name in category_names
        if name not in manual_additions
    ]
    names.extend(REMOVED_GENERIC_ENTITIES)
    return tuple(sorted(names))


def curate_names(raw_names: tuple[str, ...]) -> tuple[str, ...]:
    """Apply the removal + addition steps of the curation protocol."""
    removed = set(REMOVED_GENERIC_ENTITIES)
    kept = [name for name in raw_names if name not in removed]
    kept.extend(PAPER_ADDED_INGREDIENTS)
    kept.extend(AHN_ADDED_INGREDIENTS)
    kept.extend(MANUAL_ADDITIVES)
    return tuple(sorted(set(kept)))


class IngredientCatalog:
    """All ingredients (basic + compound) with ids, profiles and synonyms."""

    def __init__(self) -> None:
        self._molecules = build_universe()
        self._name_to_category = {
            name: category
            for category, names in BASIC_INGREDIENTS.items()
            for name in names
        }
        curated = curate_names(raw_flavordb_names())
        missing = set(curated) - set(self._name_to_category)
        if missing:
            raise ValidationError(
                f"curated names lack category assignments: {sorted(missing)}"
            )

        ingredients: list[Ingredient] = []
        synonyms_by_canonical: dict[str, list[str]] = {}
        for synonym, canonical in SYNONYMS.items():
            synonyms_by_canonical.setdefault(canonical, []).append(synonym)

        for ingredient_id, name in enumerate(curated):
            category = self._name_to_category[name]
            if name in PROFILE_FREE_ADDITIVES:
                profile: frozenset[int] = frozenset()
            else:
                profile = synthesize_profile(name, category)
            ingredients.append(
                Ingredient(
                    ingredient_id=ingredient_id,
                    name=name,
                    category=category,
                    flavor_profile=profile,
                    synonyms=tuple(sorted(synonyms_by_canonical.get(name, ()))),
                )
            )

        basic_by_name = {
            ingredient.name: ingredient for ingredient in ingredients
        }
        compound_profiles = _pool_compound_profiles(basic_by_name)
        next_id = len(ingredients)
        for name in sorted(COMPOUND_INGREDIENTS):
            category, constituents = COMPOUND_INGREDIENTS[name]
            ingredients.append(
                Ingredient(
                    ingredient_id=next_id,
                    name=name,
                    category=category,
                    flavor_profile=compound_profiles[name],
                    synonyms=tuple(sorted(synonyms_by_canonical.get(name, ()))),
                    is_compound=True,
                    constituents=constituents,
                )
            )
            next_id += 1

        self._ingredients = tuple(ingredients)
        self._by_name: dict[str, Ingredient] = {}
        for ingredient in self._ingredients:
            self._by_name[ingredient.name] = ingredient
        for synonym, canonical in SYNONYMS.items():
            target = self._by_name.get(canonical)
            if target is not None and synonym not in self._by_name:
                self._by_name[synonym] = target
        self._by_id = {
            ingredient.ingredient_id: ingredient
            for ingredient in self._ingredients
        }

    # ------------------------------------------------------------------
    # collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ingredients)

    def __iter__(self) -> Iterator[Ingredient]:
        return iter(self._ingredients)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:
        basics = sum(1 for i in self._ingredients if not i.is_compound)
        return (
            f"IngredientCatalog({basics} basic + "
            f"{len(self._ingredients) - basics} compound ingredients, "
            f"{len(self._molecules)} molecules)"
        )

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def molecules(self) -> tuple[FlavorMolecule, ...]:
        return self._molecules

    @property
    def ingredients(self) -> tuple[Ingredient, ...]:
        return self._ingredients

    def get(self, name: str) -> Ingredient:
        """Resolve a canonical name or synonym to its ingredient.

        Raises:
            LookupFailure: when the name is unknown.
        """
        ingredient = self._by_name.get(name)
        if ingredient is None:
            raise LookupFailure(f"unknown ingredient: {name!r}")
        return ingredient

    def resolve(self, name: str) -> Ingredient | None:
        """Like :meth:`get` but returns ``None`` on a miss."""
        return self._by_name.get(name)

    def by_id(self, ingredient_id: int) -> Ingredient:
        ingredient = self._by_id.get(ingredient_id)
        if ingredient is None:
            raise LookupFailure(f"unknown ingredient id: {ingredient_id}")
        return ingredient

    def by_category(self, category: Category) -> tuple[Ingredient, ...]:
        """All ingredients of one category, in id order."""
        return tuple(
            ingredient
            for ingredient in self._ingredients
            if ingredient.category is category
        )

    def basic_ingredients(self) -> tuple[Ingredient, ...]:
        return tuple(i for i in self._ingredients if not i.is_compound)

    def compound_ingredients(self) -> tuple[Ingredient, ...]:
        return tuple(i for i in self._ingredients if i.is_compound)

    def pairable_ingredients(self) -> tuple[Ingredient, ...]:
        """Ingredients with non-empty flavor profiles."""
        return tuple(i for i in self._ingredients if i.has_flavor_profile)

    def known_names(self) -> frozenset[str]:
        """Every resolvable surface form (canonical names + synonyms)."""
        return frozenset(self._by_name)

    def family_of(self, ingredient: Ingredient) -> str:
        """Primary flavor family of an ingredient (compounds inherit the
        family of their first constituent)."""
        if ingredient.is_compound and ingredient.constituents:
            constituent = self.resolve(ingredient.constituents[0])
            if constituent is not None and not constituent.is_compound:
                return primary_family(constituent.name, constituent.category)
        return primary_family(ingredient.name, ingredient.category)


def _pool_compound_profiles(
    basic_by_name: dict[str, Ingredient],
) -> dict[str, frozenset[int]]:
    """Union constituent profiles for each compound, following nested
    compound references (mayonnaise inside tartar sauce) with cycle checks.
    """
    resolved: dict[str, frozenset[int]] = {}
    in_progress: set[str] = set()

    def resolve(name: str) -> frozenset[int]:
        if name in resolved:
            return resolved[name]
        basic = basic_by_name.get(name)
        if basic is not None:
            return basic.flavor_profile
        if name not in COMPOUND_INGREDIENTS:
            raise ValidationError(
                f"compound constituent {name!r} is neither basic nor compound"
            )
        if name in in_progress:
            raise ValidationError(
                f"cycle in compound ingredient definitions at {name!r}"
            )
        in_progress.add(name)
        pooled: set[int] = set()
        for constituent in COMPOUND_INGREDIENTS[name][1]:
            pooled.update(resolve(constituent))
        in_progress.discard(name)
        profile = frozenset(pooled)
        resolved[name] = profile
        return profile

    for name in COMPOUND_INGREDIENTS:
        resolve(name)
    return resolved


_CACHED_CATALOG: IngredientCatalog | None = None


def default_catalog() -> IngredientCatalog:
    """The shared catalog instance (construction is deterministic, so one
    instance serves the whole process)."""
    global _CACHED_CATALOG
    if _CACHED_CATALOG is None:
        _CACHED_CATALOG = IngredientCatalog()
    return _CACHED_CATALOG
