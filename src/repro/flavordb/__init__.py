"""Synthetic FlavorDB substrate.

Recreates the paper's data layer: a community-structured flavor-molecule
universe, a curated catalog of 840 basic + 103 compound ingredients across
21 categories, the curation protocol of Section III.B, and deterministic
flavor-profile synthesis.
"""

from .descriptors import (
    FAMILY_DESCRIPTORS,
    describe_ingredient,
    descriptor_weights,
    shared_descriptors,
)
from .catalog import (
    IngredientCatalog,
    curate_names,
    default_catalog,
    raw_flavordb_names,
)
from .catalog_data import (
    AHN_ADDED_INGREDIENTS,
    BASIC_INGREDIENTS,
    COMPOUND_INGREDIENTS,
    MANUAL_ADDITIVES,
    PAPER_ADDED_INGREDIENTS,
    PROFILE_FREE_ADDITIVES,
    REMOVED_GENERIC_ENTITIES,
    SYNONYMS,
)
from .profiles import (
    CATEGORY_FAMILIES,
    primary_family,
    profile_size,
    secondary_family,
    stable_seed,
    synthesize_profile,
)
from .universe import (
    COMMONS_FAMILY,
    FLAVOR_FAMILIES,
    build_universe,
    family_blocks,
    total_molecules,
)

__all__ = [
    "FAMILY_DESCRIPTORS",
    "describe_ingredient",
    "descriptor_weights",
    "shared_descriptors",
    "IngredientCatalog",
    "curate_names",
    "default_catalog",
    "raw_flavordb_names",
    "AHN_ADDED_INGREDIENTS",
    "BASIC_INGREDIENTS",
    "COMPOUND_INGREDIENTS",
    "MANUAL_ADDITIVES",
    "PAPER_ADDED_INGREDIENTS",
    "PROFILE_FREE_ADDITIVES",
    "REMOVED_GENERIC_ENTITIES",
    "SYNONYMS",
    "CATEGORY_FAMILIES",
    "primary_family",
    "profile_size",
    "secondary_family",
    "stable_seed",
    "synthesize_profile",
    "COMMONS_FAMILY",
    "FLAVOR_FAMILIES",
    "build_universe",
    "family_blocks",
    "total_molecules",
]
