"""Flavor descriptors: human-readable odor/taste words per molecule.

FlavorDB annotates molecules with sensory descriptors ("citrusy",
"buttery", "sulfurous"); downstream tools use them to explain *why* two
ingredients pair. Our synthetic universe attaches descriptors at the
flavor-family level — every molecule of a family carries that family's
descriptor set — which preserves the property that matters: ingredients
sharing molecules share descriptors.

:func:`describe_ingredient` summarises an ingredient's profile as a
weighted descriptor list; :func:`shared_descriptors` explains a pairing.
"""

from __future__ import annotations

from collections import Counter

from ..datamodel import Ingredient
from .universe import FLAVOR_FAMILIES, family_blocks

#: Sensory descriptors per flavor family.
FAMILY_DESCRIPTORS: dict[str, tuple[str, ...]] = {
    "citrus-terpene": ("citrusy", "zesty", "fresh"),
    "herb-terpene": ("herbaceous", "green", "camphoraceous"),
    "mint-terpene": ("minty", "cooling"),
    "anise-phenolic": ("anisic", "licorice", "sweet-spicy"),
    "floral-alcohol": ("floral", "rosy", "perfumed"),
    "green-aldehyde": ("green", "grassy", "leafy"),
    "allium-sulfur": ("sulfurous", "pungent", "savory"),
    "crucifer-sulfur": ("pungent", "sharp", "mustardy"),
    "pungent-alkaloid": ("hot", "pungent", "biting"),
    "warm-phenolic": ("warm", "sweet-spicy", "balsamic"),
    "earthy-terpene": ("earthy", "musty", "woody"),
    "mushroom-ketone": ("mushroomy", "earthy", "umami"),
    "dairy-lactone": ("creamy", "milky", "lactonic"),
    "buttery-diketone": ("buttery", "rich", "creamy"),
    "cheese-acid": ("cheesy", "sharp", "fatty-acidic"),
    "meat-maillard": ("meaty", "roasted", "savory"),
    "smoke-phenol": ("smoky", "phenolic", "charred"),
    "marine-amine": ("briny", "marine", "fishy"),
    "seafood-bromophenol": ("oceanic", "iodine", "briny"),
    "fish-carbonyl": ("fishy", "oily", "marine"),
    "berry-ester": ("fruity", "berry", "jammy"),
    "orchard-ester": ("fruity", "apple-like", "fresh-sweet"),
    "tropical-ester": ("tropical", "fruity", "estery"),
    "melon-aldehyde": ("melon", "watery-fresh", "cucumber"),
    "caramel-furanone": ("caramellic", "sweet", "toasted-sugar"),
    "nutty-pyrazine": ("nutty", "roasted", "toasty"),
    "toast-pyranone": ("toasty", "bready", "baked"),
    "chocolate-pyrazine": ("cocoa", "chocolatey", "roasted"),
    "coffee-furan": ("coffee", "roasted", "dark"),
    "honey-aromatic": ("honeyed", "sweet-floral", "waxy"),
    "ferment-acid": ("sour", "fermented", "tangy"),
    "alcohol-ester": ("boozy", "fruity-fermented", "solvent"),
    "legume-green": ("beany", "green", "vegetal"),
    "cereal-lipid": ("fatty", "cereal", "doughy"),
    "commons": ("neutral", "mild"),
}


def _family_of_molecule() -> dict[int, str]:
    mapping: dict[int, str] = {}
    for family, block in family_blocks().items():
        for molecule_id in block:
            mapping[molecule_id] = family
    return mapping


_MOLECULE_FAMILY = _family_of_molecule()


def descriptor_weights(profile: frozenset[int]) -> Counter[str]:
    """Descriptor counts over a flavor profile (molecule-weighted)."""
    weights: Counter[str] = Counter()
    for molecule_id in profile:
        family = _MOLECULE_FAMILY.get(molecule_id)
        if family is None:
            continue
        for descriptor in FAMILY_DESCRIPTORS[family]:
            weights[descriptor] += 1
    return weights


def describe_ingredient(
    ingredient: Ingredient, top: int = 5
) -> list[tuple[str, int]]:
    """Dominant descriptors of an ingredient, most prominent first."""
    weights = descriptor_weights(ingredient.flavor_profile)
    # Neutral commons descriptors should not drown the distinctive ones.
    for muted in FAMILY_DESCRIPTORS["commons"]:
        weights.pop(muted, None)
    return weights.most_common(top)


def shared_descriptors(
    left: Ingredient, right: Ingredient, top: int = 5
) -> list[tuple[str, int]]:
    """Descriptors of the molecules two ingredients share — the sensory
    explanation of their pairing."""
    shared_profile = frozenset(left.flavor_profile & right.flavor_profile)
    weights = descriptor_weights(shared_profile)
    for muted in FAMILY_DESCRIPTORS["commons"]:
        weights.pop(muted, None)
    return weights.most_common(top)
