"""Synthetic flavor-molecule universe with community structure.

FlavorDB catalogues ~25k flavor molecules and the sets of molecules
empirically reported in each natural ingredient. The property of that data
that all food-pairing analyses rest on is *community structure*: molecules
cluster into flavor families (terpenes of citrus, lactones of dairy, amines
of fish, pyrazines of roasted nuts, ...), ingredients draw most of their
profile from one or two families, and therefore same-family ingredient
pairs share many molecules while cross-family pairs share few.

This module synthesises a universe with exactly that structure: a fixed
roster of flavor families, each holding a block of molecules. Well-known
molecules (limonene, vanillin, allicin, ...) seed their family's block by
name; the remainder get systematic names. The universe is deterministic —
no randomness is involved in its construction.
"""

from __future__ import annotations

from ..datamodel import FlavorMolecule

#: Family name -> (number of molecules, seed molecule names).
#: Counts are loosely proportional to how chemically rich each family is.
FLAVOR_FAMILIES: dict[str, tuple[int, tuple[str, ...]]] = {
    "citrus-terpene": (60, ("limonene", "citral", "gamma-terpinene", "beta-pinene", "citronellal")),
    "herb-terpene": (70, ("linalool", "thymol", "carvacrol", "sabinene", "terpinen-4-ol", "1,8-cineole")),
    "mint-terpene": (35, ("menthol", "menthone", "carvone", "pulegone")),
    "anise-phenolic": (30, ("anethole", "estragole", "fenchone")),
    "floral-alcohol": (50, ("geraniol", "nerol", "phenylethyl alcohol", "benzyl alcohol", "ionone")),
    "green-aldehyde": (55, ("hexanal", "cis-3-hexenol", "trans-2-hexenal", "hexyl acetate")),
    "allium-sulfur": (45, ("allicin", "diallyl disulfide", "dipropyl disulfide", "methyl propyl disulfide")),
    "crucifer-sulfur": (40, ("allyl isothiocyanate", "sulforaphane", "benzyl isothiocyanate")),
    "pungent-alkaloid": (35, ("capsaicin", "piperine", "gingerol", "shogaol")),
    "warm-phenolic": (55, ("eugenol", "cinnamaldehyde", "vanillin", "coumarin", "safrole")),
    "earthy-terpene": (40, ("geosmin", "patchoulol", "2-methylisoborneol")),
    "mushroom-ketone": (30, ("1-octen-3-ol", "1-octen-3-one", "3-octanol")),
    "dairy-lactone": (50, ("delta-decalactone", "gamma-dodecalactone", "delta-octalactone")),
    "buttery-diketone": (30, ("diacetyl", "acetoin", "2,3-pentanedione")),
    "cheese-acid": (45, ("butyric acid", "caproic acid", "methyl ketone c7", "2-heptanone")),
    "meat-maillard": (65, ("2-methyl-3-furanthiol", "bis(2-methyl-3-furyl) disulfide", "12-methyltridecanal")),
    "smoke-phenol": (35, ("guaiacol", "4-methylguaiacol", "syringol", "creosol")),
    "marine-amine": (45, ("trimethylamine", "piperidine", "pyrrolidine")),
    "seafood-bromophenol": (30, ("2,6-dibromophenol", "2-bromophenol", "dimethyl sulfide")),
    "fish-carbonyl": (40, ("2,4-heptadienal", "3,6-nonadienal", "1,5-octadien-3-ol")),
    "berry-ester": (55, ("ethyl butyrate", "methyl anthranilate", "furaneol", "raspberry ketone")),
    "orchard-ester": (50, ("ethyl 2-methylbutyrate", "hexyl butyrate", "benzaldehyde", "gamma-decalactone")),
    "tropical-ester": (45, ("isoamyl acetate", "ethyl hexanoate", "3-methylthio-1-hexanol")),
    "melon-aldehyde": (30, ("2,6-nonadienal", "melonal", "cis-6-nonenal")),
    "caramel-furanone": (40, ("maltol", "sotolon", "hydroxymethylfurfural", "cyclotene")),
    "nutty-pyrazine": (55, ("2,3,5-trimethylpyrazine", "2-acetylpyrazine", "filbertone")),
    "toast-pyranone": (35, ("2-acetylpyrroline", "maltol isobutyrate", "furfural")),
    "chocolate-pyrazine": (35, ("tetramethylpyrazine", "isovaleraldehyde", "theobromine")),
    "coffee-furan": (35, ("furfurylthiol", "kahweofuran", "pyridine")),
    "honey-aromatic": (30, ("phenylacetic acid", "methyl phenylacetate", "beta-damascenone")),
    "ferment-acid": (45, ("lactic acid", "acetic acid", "ethyl lactate", "propionic acid")),
    "alcohol-ester": (50, ("ethanol", "ethyl acetate", "isoamyl alcohol", "ethyl caprylate")),
    "legume-green": (35, ("2-isopropyl-3-methoxypyrazine", "hexanol", "beany aldehyde")),
    "cereal-lipid": (40, ("nonanal", "decanal", "2-pentylfuran", "linoleic acid")),
    "commons": (80, ("acetaldehyde", "acetone", "butanol", "propanal", "methanol", "formic acid")),
}

#: Family holding molecules shared broadly across ingredients of all kinds.
COMMONS_FAMILY = "commons"


def build_universe() -> tuple[FlavorMolecule, ...]:
    """Construct the full molecule roster, ids assigned contiguously.

    Molecules of one family occupy one contiguous id block, which lets
    profile synthesis sample families with simple integer ranges.
    """
    molecules: list[FlavorMolecule] = []
    next_id = 0
    for family, (count, seeds) in FLAVOR_FAMILIES.items():
        if len(seeds) > count:
            raise ValueError(
                f"family {family!r} declares more seeds than molecules"
            )
        for index in range(count):
            if index < len(seeds):
                name = seeds[index]
            else:
                name = f"{family} compound {index + 1:03d}"
            molecules.append(FlavorMolecule(next_id, name, family))
            next_id += 1
    return tuple(molecules)


def family_blocks() -> dict[str, range]:
    """Map each family to its contiguous molecule-id range."""
    blocks: dict[str, range] = {}
    start = 0
    for family, (count, _seeds) in FLAVOR_FAMILIES.items():
        blocks[family] = range(start, start + count)
        start += count
    return blocks


def total_molecules() -> int:
    """Total number of molecules in the universe."""
    return sum(count for count, _seeds in FLAVOR_FAMILIES.values())
