"""Deterministic flavor-profile synthesis for catalog ingredients.

Each basic ingredient receives a flavor profile — a set of molecule ids —
assembled from the family blocks of :mod:`repro.flavordb.universe`:

* a *primary* flavor family contributes the bulk of the profile,
* a *secondary* family (from the same category's palette) adds a bridge,
* the ``commons`` family contributes the universal background molecules,
* a small tail of molecules is scattered across all other families.

Family assignment is name-aware: a table of overrides pins culinarily
obvious cases (garlic is allium-sulfur, lemon is citrus-terpene, smoked
salmon is smoke-phenol...), substring rules catch derived forms ("lemon
thyme", "smoked paprika"), and the remainder fall back to a deterministic
hash over the category's palette. All sampling uses a
``numpy.random.Generator`` seeded from a stable digest of the ingredient
name, so the same catalog is rebuilt bit-for-bit on every machine.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..datamodel import Category
from .universe import COMMONS_FAMILY, FLAVOR_FAMILIES, family_blocks

#: Flavor-family palette per category: the families its ingredients draw
#: primary/secondary membership from (order matters only for hashing).
CATEGORY_FAMILIES: dict[Category, tuple[str, ...]] = {
    Category.VEGETABLE: (
        "green-aldehyde", "allium-sulfur", "crucifer-sulfur",
        "earthy-terpene", "legume-green",
    ),
    Category.FRUIT: (
        "citrus-terpene", "berry-ester", "orchard-ester",
        "tropical-ester", "melon-aldehyde",
    ),
    Category.HERB: (
        "herb-terpene", "mint-terpene", "anise-phenolic", "floral-alcohol",
    ),
    Category.SPICE: (
        "warm-phenolic", "pungent-alkaloid", "herb-terpene",
        "anise-phenolic", "citrus-terpene",
    ),
    Category.MEAT: ("meat-maillard", "smoke-phenol", "cheese-acid"),
    Category.FISH: ("fish-carbonyl", "marine-amine", "smoke-phenol"),
    Category.SEAFOOD: ("marine-amine", "seafood-bromophenol"),
    Category.DAIRY: ("dairy-lactone", "buttery-diketone", "cheese-acid"),
    Category.CEREAL: ("cereal-lipid", "toast-pyranone", "nutty-pyrazine"),
    Category.MAIZE: ("cereal-lipid", "caramel-furanone"),
    Category.LEGUME: ("legume-green", "nutty-pyrazine"),
    Category.NUTS_AND_SEEDS: ("nutty-pyrazine", "cereal-lipid"),
    Category.PLANT: (
        "caramel-furanone", "honey-aromatic", "coffee-furan",
        "chocolate-pyrazine", "ferment-acid", "green-aldehyde",
    ),
    Category.BAKERY: ("toast-pyranone", "caramel-furanone", "cereal-lipid"),
    Category.BEVERAGE: ("citrus-terpene", "honey-aromatic", "caramel-furanone"),
    Category.BEVERAGE_ALCOHOLIC: (
        "alcohol-ester", "ferment-acid", "caramel-furanone",
    ),
    Category.ESSENTIAL_OIL: (
        "citrus-terpene", "herb-terpene", "floral-alcohol",
        "mint-terpene", "anise-phenolic",
    ),
    Category.FLOWER: ("floral-alcohol", "honey-aromatic"),
    Category.FUNGUS: ("mushroom-ketone", "earthy-terpene"),
    Category.ADDITIVE: ("ferment-acid", "caramel-furanone"),
    Category.DISH: ("toast-pyranone", "cereal-lipid"),
}

#: Exact-name overrides for the primary flavor family.
FAMILY_OVERRIDES: dict[str, str] = {
    # alliums
    "onion": "allium-sulfur", "red onion": "allium-sulfur",
    "white onion": "allium-sulfur", "sweet onion": "allium-sulfur",
    "garlic": "allium-sulfur", "leek": "allium-sulfur",
    "shallot": "allium-sulfur", "scallion": "allium-sulfur",
    "chive": "allium-sulfur",
    # crucifers / pungent roots
    "horseradish": "crucifer-sulfur", "wasabi": "crucifer-sulfur",
    "mustard green": "crucifer-sulfur", "mustard seed": "crucifer-sulfur",
    "black mustard seed": "crucifer-sulfur",
    "yellow mustard seed": "crucifer-sulfur",
    # pungency
    "ginger": "pungent-alkaloid", "dried ginger": "pungent-alkaloid",
    "black pepper": "pungent-alkaloid", "white pepper": "pungent-alkaloid",
    "cayenne": "pungent-alkaloid", "chili": "pungent-alkaloid",
    # citrus
    "lemon": "citrus-terpene", "lime": "citrus-terpene",
    "orange": "citrus-terpene", "grapefruit": "citrus-terpene",
    "yuzu": "citrus-terpene", "lemongrass": "citrus-terpene",
    "lemon juice": "citrus-terpene", "lime juice": "citrus-terpene",
    "orange juice": "citrus-terpene",
    # warm spices
    "vanilla": "warm-phenolic", "vanilla bean": "warm-phenolic",
    "vanilla extract": "warm-phenolic", "cinnamon": "warm-phenolic",
    "cassia": "warm-phenolic", "clove": "warm-phenolic",
    "nutmeg": "warm-phenolic", "allspice": "warm-phenolic",
    # anise-like
    "star anise": "anise-phenolic", "anise seed": "anise-phenolic",
    "fennel seed": "anise-phenolic", "fennel bulb": "anise-phenolic",
    "licorice root": "anise-phenolic", "tarragon": "anise-phenolic",
    "ouzo": "anise-phenolic", "absinthe": "anise-phenolic",
    "anise oil": "anise-phenolic",
    # classic culinary herbs share the herb-terpene family
    "basil": "herb-terpene", "oregano": "herb-terpene",
    "thyme": "herb-terpene", "rosemary": "herb-terpene",
    "marjoram": "herb-terpene", "sage": "herb-terpene",
    "parsley": "herb-terpene", "dill": "herb-terpene",
    "savory": "herb-terpene", "chervil": "herb-terpene",
    # mints
    "mint": "mint-terpene", "peppermint": "mint-terpene",
    "spearmint": "mint-terpene", "peppermint oil": "mint-terpene",
    "spearmint oil": "mint-terpene",
    # dairy
    "butter": "buttery-diketone", "clarified butter": "buttery-diketone",
    "ghee": "buttery-diketone", "cream": "buttery-diketone",
    "heavy cream": "buttery-diketone", "light cream": "buttery-diketone",
    "milk": "dairy-lactone", "whole milk": "dairy-lactone",
    "yogurt": "ferment-acid", "greek yogurt": "ferment-acid",
    "kefir": "ferment-acid", "sour cream": "ferment-acid",
    "buttermilk": "ferment-acid",
    # ferments
    "sauerkraut": "ferment-acid", "kimchi": "ferment-acid",
    "pickle": "ferment-acid", "vinegar": "ferment-acid",
    "miso base": "ferment-acid", "yeast": "ferment-acid",
    "nutritional yeast": "ferment-acid",
    # cocoa / coffee / honey
    "cocoa": "chocolate-pyrazine", "dark chocolate": "chocolate-pyrazine",
    "milk chocolate": "chocolate-pyrazine", "chocolate": "chocolate-pyrazine",
    "white chocolate": "caramel-furanone", "carob": "chocolate-pyrazine",
    "coffee": "coffee-furan", "espresso": "coffee-furan",
    "honey": "honey-aromatic",
    # sugars
    "sugar": "caramel-furanone", "brown sugar": "caramel-furanone",
    "molasses": "caramel-furanone", "maple syrup": "caramel-furanone",
    "corn syrup": "caramel-furanone",
    # eggs (category Meat, but flavor-wise closer to dairy/maillard mix)
    "egg": "cereal-lipid", "egg yolk": "cereal-lipid",
    "egg white": "commons",
}

#: Substring rules applied when no exact override matches; first hit wins.
FAMILY_SUBSTRING_RULES: tuple[tuple[str, str], ...] = (
    ("smoked", "smoke-phenol"),
    ("chili", "pungent-alkaloid"),
    ("pepper flake", "pungent-alkaloid"),
    ("chipotle", "smoke-phenol"),
    ("lemon", "citrus-terpene"),
    ("lime", "citrus-terpene"),
    ("orange", "citrus-terpene"),
    ("tomato", "green-aldehyde"),
    ("mushroom", "mushroom-ketone"),
    ("truffle", "earthy-terpene"),
    ("cheese", "cheese-acid"),
    ("berry", "berry-ester"),
    ("melon", "melon-aldehyde"),
    ("vinegar", "ferment-acid"),
    ("wine", "alcohol-ester"),
    ("whiskey", "alcohol-ester"),
    ("rum", "alcohol-ester"),
    ("beer", "ferment-acid"),
    ("tea", "honey-aromatic"),
    ("oil", "cereal-lipid"),
)

#: Profile composition fractions (must sum to 1).
PRIMARY_FRACTION = 0.55
SECONDARY_FRACTION = 0.20
COMMONS_FRACTION = 0.15
NOISE_FRACTION = 0.10

#: Profile size bounds (FlavorDB profiles range from a handful of molecules
#: for simple ingredients to hundreds for coffee/wine; we keep the same
#: spread at smaller absolute scale).
MIN_PROFILE_SIZE = 8
MAX_PROFILE_SIZE = 160
PROFILE_SIZE_LOG_MEAN = 3.5  # exp(3.5) ~ 33 molecules
PROFILE_SIZE_LOG_SIGMA = 0.5

_GLOBAL_SEED_LABEL = b"repro.flavordb.profiles.v1"


def stable_seed(*parts: str) -> int:
    """Derive a 64-bit seed from string parts via SHA-256 (hash() is
    process-randomised and unusable for reproducibility)."""
    digest = hashlib.sha256()
    digest.update(_GLOBAL_SEED_LABEL)
    for part in parts:
        digest.update(b"\x00")
        digest.update(part.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def primary_family(name: str, category: Category) -> str:
    """The primary flavor family for an ingredient."""
    override = FAMILY_OVERRIDES.get(name)
    if override is not None:
        return override
    for fragment, family in FAMILY_SUBSTRING_RULES:
        if fragment in name:
            return family
    palette = CATEGORY_FAMILIES[category]
    return palette[stable_seed("primary", name) % len(palette)]


def secondary_family(name: str, category: Category, primary: str) -> str:
    """A secondary family from the category palette, different from the
    primary when the palette allows it."""
    palette = [
        family for family in CATEGORY_FAMILIES[category] if family != primary
    ]
    if not palette:
        return primary
    return palette[stable_seed("secondary", name) % len(palette)]


def profile_size(name: str) -> int:
    """Deterministic profile size for an ingredient (lognormal, clipped)."""
    rng = np.random.Generator(np.random.PCG64(stable_seed("size", name)))
    size = int(
        round(
            float(
                rng.lognormal(PROFILE_SIZE_LOG_MEAN, PROFILE_SIZE_LOG_SIGMA)
            )
        )
    )
    return int(np.clip(size, MIN_PROFILE_SIZE, MAX_PROFILE_SIZE))


def synthesize_profile(name: str, category: Category) -> frozenset[int]:
    """Build the molecule-id set for one basic ingredient."""
    blocks = family_blocks()
    primary = primary_family(name, category)
    secondary = secondary_family(name, category, primary)
    size = profile_size(name)
    rng = np.random.Generator(np.random.PCG64(stable_seed("profile", name)))

    quota = {
        primary: int(round(size * PRIMARY_FRACTION)),
        secondary: int(round(size * SECONDARY_FRACTION)),
        COMMONS_FAMILY: int(round(size * COMMONS_FRACTION)),
    }
    profile: set[int] = set()
    for family, wanted in quota.items():
        block = blocks[family]
        take = min(wanted, len(block))
        if take > 0:
            picks = rng.choice(len(block), size=take, replace=False)
            profile.update(block.start + int(pick) for pick in picks)
    # Scatter the noise tail over the whole universe.
    remaining = max(size - len(profile), 0)
    universe_size = max(block.stop for block in blocks.values())
    while remaining > 0:
        candidate = int(rng.integers(0, universe_size))
        if candidate not in profile:
            profile.add(candidate)
            remaining -= 1
    return frozenset(profile)
