"""Admission control: bounded per-endpoint queues with backpressure.

Sits between the asyncio transport and dispatch. Every endpoint gets a
small state machine:

* up to ``max_inflight`` requests execute concurrently;
* up to ``max_queue`` more wait in FIFO order for a slot;
* beyond that the request is **rejected immediately** with a structured
  ``503 overloaded`` envelope — shedding load at the front door is what
  keeps p99 bounded when arrival rate exceeds service rate;
* an optional token bucket (``rate_limit`` requests/second with
  ``burst`` headroom) rejects with ``429 rate_limited`` before a slot is
  even considered.

Everything is observable: ``repro_service_inflight`` and
``repro_service_queue_depth`` gauges track the live state per endpoint,
and ``repro_service_rejected_total{endpoint,reason}`` counts every shed
request — all exported through ``/metrics`` (JSON and Prometheus).

The controller is written for a single event loop: state transitions
happen on the loop (no locks), waiters are plain ``asyncio.Future``s
resolved in FIFO order, and a released slot is handed *directly* to the
oldest waiter so the queue drains without thundering herds. The gauges
live in a thread-safe registry, so scraping from another thread is safe.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Callable

from ..obs.metrics import MetricsRegistry
from .metrics import INFLIGHT, QUEUE_DEPTH, REJECTED

__all__ = [
    "AdmissionController",
    "AdmissionLimits",
    "AdmissionReject",
]

#: Defaults: generous enough that a healthy server never queues, tight
#: enough that one endpoint melting down cannot take the process with it.
DEFAULT_MAX_INFLIGHT = 64
DEFAULT_MAX_QUEUE = 256


class AdmissionReject(Exception):
    """A request shed by admission control.

    Attributes:
        status: HTTP status (429 or 503).
        code: machine-readable envelope code
            (``rate_limited`` / ``overloaded``).
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


class AdmissionLimits:
    """The per-endpoint knobs, shared by every endpoint of a controller.

    Args:
        max_inflight: concurrent executions per endpoint (>= 1).
        max_queue: waiting requests per endpoint beyond the in-flight
            limit; 0 disables queueing (excess is shed immediately).
        rate_limit: sustained requests/second per endpoint; ``None``
            disables rate limiting.
        burst: token-bucket capacity; defaults to ``max(rate_limit, 1)``
            so a full second of traffic can arrive at once.
    """

    def __init__(
        self,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_queue: int = DEFAULT_MAX_QUEUE,
        rate_limit: float | None = None,
        burst: float | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if rate_limit is not None and rate_limit <= 0:
            raise ValueError(f"rate_limit must be positive, got {rate_limit}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.rate_limit = rate_limit
        self.burst = (
            burst if burst is not None else max(rate_limit or 0.0, 1.0)
        )


class _EndpointGate:
    """One endpoint's live admission state (event-loop confined)."""

    __slots__ = ("inflight", "waiters", "tokens", "refilled_at")

    def __init__(self, burst: float, now: float) -> None:
        self.inflight = 0
        self.waiters: deque[asyncio.Future] = deque()
        self.tokens = burst
        self.refilled_at = now


class AdmissionController:
    """Bounded per-endpoint admission for the asyncio transport."""

    def __init__(
        self,
        limits: AdmissionLimits | None = None,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.limits = limits if limits is not None else AdmissionLimits()
        self._registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self._clock = clock
        self._gates: dict[str, _EndpointGate] = {}

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    # ------------------------------------------------------------------
    # introspection (tests and /metrics)
    # ------------------------------------------------------------------
    def inflight(self, endpoint: str) -> int:
        gate = self._gates.get(endpoint)
        return gate.inflight if gate is not None else 0

    def queue_depth(self, endpoint: str) -> int:
        gate = self._gates.get(endpoint)
        return len(gate.waiters) if gate is not None else 0

    def rejected_total(self, endpoint: str, reason: str) -> int:
        return int(
            self._registry.counter(
                REJECTED, endpoint=endpoint, reason=reason
            ).value
        )

    # ------------------------------------------------------------------
    # the admission protocol
    # ------------------------------------------------------------------
    def _gate(self, endpoint: str) -> _EndpointGate:
        gate = self._gates.get(endpoint)
        if gate is None:
            gate = self._gates[endpoint] = _EndpointGate(
                self.limits.burst, self._clock()
            )
        return gate

    def _reject(
        self, endpoint: str, status: int, code: str, message: str
    ) -> AdmissionReject:
        self._registry.counter(
            REJECTED, endpoint=endpoint, reason=code
        ).incr()
        return AdmissionReject(status, code, message)

    def _take_token(self, endpoint: str, gate: _EndpointGate) -> None:
        """Refill-then-take on the token bucket; raises 429 when dry."""
        rate = self.limits.rate_limit
        if rate is None:
            return
        now = self._clock()
        gate.tokens = min(
            self.limits.burst, gate.tokens + (now - gate.refilled_at) * rate
        )
        gate.refilled_at = now
        if gate.tokens < 1.0:
            raise self._reject(
                endpoint,
                429,
                "rate_limited",
                f"endpoint {endpoint!r} is limited to {rate:g} "
                f"requests/second; retry later",
            )
        gate.tokens -= 1.0

    async def acquire(self, endpoint: str) -> None:
        """Wait for an execution slot; raises :class:`AdmissionReject`.

        Must be awaited on the controller's event loop. A queued waiter
        that is cancelled (client hung up) leaves the queue cleanly.
        """
        gate = self._gate(endpoint)
        self._take_token(endpoint, gate)
        if gate.inflight < self.limits.max_inflight:
            gate.inflight += 1
            self._set_gauges(endpoint, gate)
            return
        if len(gate.waiters) >= self.limits.max_queue:
            raise self._reject(
                endpoint,
                503,
                "overloaded",
                f"endpoint {endpoint!r} has {gate.inflight} requests "
                f"in flight and {len(gate.waiters)} queued; shedding load",
            )
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        gate.waiters.append(waiter)
        self._set_gauges(endpoint, gate)
        try:
            await waiter
        except asyncio.CancelledError:
            # The slot may already have been handed to us; pass it on.
            if waiter.cancelled():
                try:
                    gate.waiters.remove(waiter)
                except ValueError:
                    pass
            elif waiter.done():
                self.release(endpoint)
            self._set_gauges(endpoint, gate)
            raise
        self._set_gauges(endpoint, gate)

    def release(self, endpoint: str) -> None:
        """Free a slot; hands it directly to the oldest queued waiter."""
        gate = self._gate(endpoint)
        while gate.waiters:
            waiter = gate.waiters.popleft()
            if not waiter.done():
                # Transfer the slot: inflight count is unchanged.
                waiter.set_result(None)
                self._set_gauges(endpoint, gate)
                return
        gate.inflight = max(0, gate.inflight - 1)
        self._set_gauges(endpoint, gate)

    def _set_gauges(self, endpoint: str, gate: _EndpointGate) -> None:
        self._registry.gauge(INFLIGHT, endpoint=endpoint).set(gate.inflight)
        self._registry.gauge(QUEUE_DEPTH, endpoint=endpoint).set(
            len(gate.waiters)
        )
