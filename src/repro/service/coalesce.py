"""Request coalescing: N identical in-flight requests, one computation.

The engine's :class:`~repro.engine.locks.KeyedLocks` deduplicates
concurrent *builds* by serialising per key — the second caller waits,
then rebuilds and finds the cache warm. Serving traffic wants something
stronger: when N identical cacheable requests are in flight at once (a
hot key going viral, a retry storm, a cache entry expiring under load),
exactly one of them should run the handler and the other N-1 should
receive the *same computed result* without ever touching the handler.

:class:`RequestCoalescer` provides that as a transport-independent,
thread-safe primitive: the first caller for a key becomes the **leader**
and runs the compute function; every caller that arrives while the
leader is still computing becomes a **follower**, blocks on the leader's
completion event, and returns the leader's result. The entry is removed
the moment the leader publishes, so the table is bounded by the number
of *concurrently distinct* in-flight keys — the same self-cleaning
property as ``KeyedLocks``.

Both transports share it through :meth:`ServiceApp.dispatch` (the
threaded server's request threads and the asyncio transport's executor
threads block identically), and every coalesced response increments
``repro_service_coalesced_total{endpoint=...}`` so a load test can
*prove* the reduction in handler compute.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, TypeVar

from ..obs.metrics import MetricsRegistry
from .metrics import COALESCED

__all__ = ["COALESCED", "RequestCoalescer"]

T = TypeVar("T")


class _Flight:
    """One in-flight computation: the leader's pending result."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None


class RequestCoalescer:
    """Deduplicates concurrent computations of the same key.

    Args:
        registry: where the coalesced-response counter is registered;
            pass the owning app's registry so ``/metrics`` exports it.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    def __len__(self) -> int:
        """Keys currently being computed (0 when the system is idle)."""
        with self._lock:
            return len(self._flights)

    def coalesced_total(self, endpoint: str) -> int:
        """How many responses this endpoint served via coalescing."""
        return int(self._registry.counter(COALESCED, endpoint=endpoint).value)

    def run(
        self,
        key: str,
        compute: Callable[[], T],
        endpoint: str = "(unknown)",
    ) -> tuple[T, bool]:
        """Compute ``key``'s value once across concurrent callers.

        Returns:
            ``(result, leader)`` — ``leader`` is True for the caller
            that actually ran ``compute``. Followers return the leader's
            result (or re-raise the leader's exception) and increment
            the coalesced counter.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = self._flights[key] = _Flight()
                leading = True
            else:
                leading = False
        if leading:
            try:
                flight.result = compute()
            except BaseException as error:
                flight.error = error
                raise
            finally:
                # Publish before followers wake; remove the entry so the
                # next identical request (after this one) leads afresh —
                # by then the result cache answers it anyway.
                with self._lock:
                    self._flights.pop(key, None)
                flight.done.set()
            return flight.result, True
        flight.done.wait()
        self._registry.counter(COALESCED, endpoint=endpoint).incr()
        if flight.error is not None:
            raise flight.error
        return flight.result, False
