"""Typed request handlers over a warm experiment workspace.

:class:`QueryService` is the transport-independent core of the serving
layer: each ``handle_*`` method takes a decoded JSON payload (a dict) and
returns a JSON-ready dict, raising :class:`RequestError` for anything the
client got wrong. Heavy derived artefacts (the aliasing pipeline, the
cuisine classifier, the CulinaryDB instance) are built lazily on first
use and shared across all server threads behind a lock.
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from ..aliasing import AliasingPipeline
from ..culinarydb import build_culinarydb
from ..datamodel import REGIONS, Ingredient, ReproError
from ..db import Database
from ..db.errors import SqlSyntaxError
from ..engine import RunConfig
from ..experiments import ExperimentWorkspace
from ..generation import CuisineClassifier, RecipeDesigner
from ..obs import get_logger
from ..pairing import CuisineView, food_pairing_score
from ..retrieval import (
    DEFAULT_TOPK,
    MAX_TOPK,
    RetrievalIndex,
    complete_recipe,
    nearest_cuisines,
    similar_ingredients,
)

_LOG = get_logger("repro.service")

#: Hard ceiling on rows returned by ``/sql`` (and default row cap).
MAX_SQL_ROWS = 1000
DEFAULT_SQL_ROWS = 200

#: Default / maximum pairing partners returned by ``/pairings``.
DEFAULT_PAIRING_LIMIT = 10
MAX_PAIRING_LIMIT = 50

#: ``/recommend`` bounds: proposals per request, allowed recipe sizes,
#: and how many nearest cuisines ride along in the response.
DEFAULT_RECOMMEND_COUNT = 3
MAX_RECOMMEND_COUNT = 10
MIN_RECOMMEND_SIZE = 2
MAX_RECOMMEND_SIZE = 20
RECOMMEND_NEAR_CUISINES = 5
MAX_RECOMMEND_SEED = 2**31 - 1

#: ``/montecarlo`` sampling bounds — generous enough for real estimates,
#: tight enough that one request cannot monopolise the server.
DEFAULT_MC_SAMPLES = 10_000
MIN_MC_SAMPLES = 100
MAX_MC_SAMPLES = 50_000
MAX_MC_WORKERS = 8
DEFAULT_MC_SHARD_SIZE = 5_000
MIN_MC_SHARD_SIZE = 100
MAX_MC_SHARD_SIZE = 25_000

#: ``/debug/profile`` capture bounds: long enough to catch a slow
#: endpoint in the act, short enough that the request thread (which
#: blocks for the duration) frees up promptly.
DEFAULT_PROFILE_SECONDS = 2.0
MIN_PROFILE_SECONDS = 0.01
MAX_PROFILE_SECONDS = 30.0


class RequestError(ReproError):
    """A request the service refuses; carries an HTTP status and a code.

    Attributes:
        status: HTTP status to respond with (4xx).
        code: stable machine-readable error code for the envelope.
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


def _payload_dict(payload: Any) -> dict[str, Any]:
    if payload is None:
        return {}
    if not isinstance(payload, dict):
        raise RequestError(
            400, "invalid_payload", "request body must be a JSON object"
        )
    return payload


def _reject_unknown(payload: dict[str, Any], allowed: frozenset[str]) -> None:
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise RequestError(
            400,
            "unknown_field",
            f"unknown field(s): {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(allowed))})",
        )


def _string_field(payload: dict[str, Any], name: str) -> str:
    value = payload.get(name)
    if not isinstance(value, str) or not value.strip():
        raise RequestError(
            400, "invalid_field", f"{name!r} must be a non-empty string"
        )
    return value.strip()


def _string_list_field(payload: dict[str, Any], name: str) -> list[str]:
    value = payload.get(name)
    if (
        not isinstance(value, list)
        or not value
        or not all(isinstance(item, str) and item.strip() for item in value)
    ):
        raise RequestError(
            400,
            "invalid_field",
            f"{name!r} must be a non-empty list of non-empty strings",
        )
    return [item.strip() for item in value]


def _int_field(
    payload: dict[str, Any],
    name: str,
    default: int,
    minimum: int,
    maximum: int,
) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(
            400, "invalid_field", f"{name!r} must be an integer"
        )
    if not minimum <= value <= maximum:
        raise RequestError(
            400,
            "invalid_field",
            f"{name!r} must be between {minimum} and {maximum}, got {value}",
        )
    return value


def _bool_field(payload: dict[str, Any], name: str, default: bool) -> bool:
    value = payload.get(name, default)
    if not isinstance(value, bool):
        raise RequestError(
            400, "invalid_field", f"{name!r} must be a boolean"
        )
    return value


def _float_field(
    payload: dict[str, Any],
    name: str,
    default: float,
    minimum: float,
    maximum: float,
) -> float:
    """A bounded float field; accepts numeric strings (query params)."""
    value = payload.get(name, default)
    if isinstance(value, str):
        try:
            value = float(value)
        except ValueError:
            raise RequestError(
                400, "invalid_field", f"{name!r} must be a number"
            ) from None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(
            400, "invalid_field", f"{name!r} must be a number"
        )
    if not minimum <= value <= maximum:
        raise RequestError(
            400,
            "invalid_field",
            f"{name!r} must be between {minimum:g} and {maximum:g}, "
            f"got {value:g}",
        )
    return float(value)


class QueryService:
    """Request handlers bound to one :class:`ExperimentWorkspace`.

    Args:
        workspace: the warm workspace to serve.
        config: the run configuration the workspace was built from;
            request-scoped Monte Carlo parameters are derived from it
            via :meth:`RunConfig.replace`, keeping the service on the
            same single parameter flow as the CLI.
    """

    def __init__(
        self,
        workspace: ExperimentWorkspace,
        config: RunConfig | None = None,
    ) -> None:
        self._workspace = workspace
        self._config = config if config is not None else RunConfig()
        self._lock = threading.Lock()
        self._pipelines: dict[bool, AliasingPipeline] = {}
        self._classifier: CuisineClassifier | None = None
        self._database: Database | None = None
        self._designers: dict[str, RecipeDesigner] = {}
        self._preloaded = False
        # Engine-built workspaces already carry the pairing_views stage
        # artifact; seed the per-region view cache from it so the first
        # /montecarlo request never rebuilds a view.
        self._views: dict[str, CuisineView] = dict(
            workspace.pairing_views or {}
        )

    @property
    def workspace(self) -> ExperimentWorkspace:
        return self._workspace

    # ------------------------------------------------------------------
    # lazily-built shared artefacts
    # ------------------------------------------------------------------
    def _pipeline(self, fuzzy: bool) -> AliasingPipeline:
        with self._lock:
            pipeline = self._pipelines.get(fuzzy)
            if pipeline is None:
                pipeline = AliasingPipeline(
                    self._workspace.catalog, fuzzy=fuzzy
                )
                self._pipelines[fuzzy] = pipeline
            return pipeline

    def classifier(self) -> CuisineClassifier:
        """The naive-Bayes classifier, trained once on first use."""
        with self._lock:
            if self._classifier is None:
                self._classifier = CuisineClassifier(
                    self._workspace.regional_cuisines(),
                    vocabulary_size=len(self._workspace.catalog),
                )
            return self._classifier

    def database(self) -> Database:
        """CulinaryDB over the workspace corpus, built once on first use."""
        with self._lock:
            if self._database is None:
                self._database = build_culinarydb(
                    self._workspace.recipes,
                    self._workspace.catalog,
                    raw_recipes=self._workspace.corpus.raw_recipes,
                )
            return self._database

    def cuisine_view(self, region_code: str) -> CuisineView:
        """The pairing view of one region, built once on first use.

        Raises:
            RequestError: 404 for a region code outside the workspace.
        """
        from ..pairing import build_cuisine_view

        with self._lock:
            view = self._views.get(region_code)
            if view is None:
                cuisine = self._workspace.regional_cuisines().get(
                    region_code
                )
                if cuisine is None:
                    known = ", ".join(
                        sorted(self._workspace.regional_cuisines())
                    )
                    raise RequestError(
                        404,
                        "unknown_region",
                        f"no such region {region_code!r} "
                        f"(known: {known})",
                    )
                view = build_cuisine_view(cuisine, self._workspace.catalog)
                self._views[region_code] = view
            return view

    def retrieval(self) -> RetrievalIndex:
        """The workspace's retrieval index (the stage artifact)."""
        return self._workspace.retrieval()

    def designer(self, region_code: str) -> RecipeDesigner:
        """The index-backed recipe designer of one region, built once.

        Raises:
            RequestError: 404 for a region code outside the workspace.
        """
        view = self.cuisine_view(region_code)
        index = self.retrieval()
        with self._lock:
            designer = self._designers.get(region_code)
            if designer is None:
                designer = RecipeDesigner(view, index=index)
                self._designers[region_code] = designer
            return designer

    def warm(self) -> None:
        """Pre-build every lazy artefact (used at server start-up)."""
        self._pipeline(fuzzy=False)
        self.classifier()
        self.database()

    def preload(self) -> None:
        """Fully warm the service: lazy artefacts plus every region view.

        ``repro serve --preload`` calls this before binding the socket,
        so the first request of any kind is served from warm state.
        """
        self.warm()
        self._workspace.retrieval()
        self._workspace.similarity()
        views = self._workspace.views()
        with self._lock:
            for code, view in views.items():
                self._views.setdefault(code, view)
            self._preloaded = True
        _LOG.info(
            "service.preloaded",
            regions=len(views),
            recipes=len(self._workspace.recipes),
        )

    # ------------------------------------------------------------------
    # ingredient resolution shared by score/classify/pairings and the
    # retrieval endpoints (similar/complete/recommend)
    # ------------------------------------------------------------------
    def _resolve_names(
        self, names: list[str], fuzzy: bool
    ) -> list[Ingredient]:
        """Map raw phrases to distinct catalog ingredients, order-preserving.

        Raises:
            RequestError: 404 when any phrase resolves to nothing.
        """
        pipeline = self._pipeline(fuzzy)
        resolved = []
        seen: set[int] = set()
        unresolved: list[str] = []
        for name in names:
            resolution = pipeline.resolve_phrase(name)
            if not resolution.ingredients:
                unresolved.append(name)
                continue
            for ingredient in resolution.ingredients:
                if ingredient.ingredient_id not in seen:
                    seen.add(ingredient.ingredient_id)
                    resolved.append(ingredient)
        if unresolved:
            raise RequestError(
                404,
                "unknown_ingredient",
                "unrecognised ingredient(s): "
                + ", ".join(repr(name) for name in unresolved),
            )
        return resolved

    def _ingredient_from(
        self, body: dict[str, Any], fuzzy: bool, field: str = "ingredient"
    ) -> Ingredient:
        """One resolved ingredient from a request field.

        Validates the field (non-empty string) and resolves it through
        the aliasing pipeline; the single resolution path every
        one-ingredient endpoint shares.
        """
        name = _string_field(body, field)
        return self._resolve_names([name], fuzzy)[0]

    def _ingredients_from(
        self, body: dict[str, Any], fuzzy: bool, field: str = "ingredients"
    ) -> list[Ingredient]:
        """Distinct resolved ingredients from a request list field."""
        names = _string_list_field(body, field)
        return self._resolve_names(names, fuzzy)

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def handle_healthz(self, payload: Any) -> dict[str, Any]:
        """Liveness: workspace identity and corpus size."""
        _payload_dict(payload)
        workspace = self._workspace
        return {
            "status": "ok",
            "seed": workspace.seed,
            "recipe_scale": workspace.recipe_scale,
            "recipes": len(workspace.recipes),
            "regions": len(workspace.regional_cuisines()),
        }

    def handle_readyz(self, payload: Any) -> dict[str, Any]:
        """Readiness: lazy-component state plus per-stage cache tiers.

        ``ready`` flips true once every lazily-built shared artefact
        (aliasing pipeline, classifier, CulinaryDB) exists — exactly
        what :meth:`warm` builds, so a ``--no-warm`` server reports
        unready until its first requests have paid those builds. The
        app layer maps an unready body to HTTP 503.

        ``stages`` reports each engine stage's fingerprint and warmest
        cache tier (``memory``/``disk``/``cold``) without resolving
        anything, so polling this endpoint never triggers a build.
        """
        from ..engine import Engine

        _payload_dict(payload)
        with self._lock:
            components = {
                "aliasing_pipeline": bool(self._pipelines),
                "classifier": self._classifier is not None,
                "database": self._database is not None,
            }
            preloaded = self._preloaded
            views_cached = len(self._views)
        return {
            "ready": all(components.values()),
            "preloaded": preloaded,
            "components": components,
            "views_cached": views_cached,
            "stages": Engine(self._config).cache_states(),
        }

    def handle_debug_profile(self, payload: Any) -> dict[str, Any]:
        """Sample this process for N seconds; respond with speedscope JSON.

        The request thread blocks while the profiler samples every
        *other* server thread — the ones actually serving traffic.
        Exactly one capture runs at a time (409 otherwise).
        """
        from ..obs.profile import ProfileBusyError, capture_profile

        body = _payload_dict(payload)
        _reject_unknown(body, frozenset({"seconds"}))
        seconds = _float_field(
            body,
            "seconds",
            default=DEFAULT_PROFILE_SECONDS,
            minimum=MIN_PROFILE_SECONDS,
            maximum=MAX_PROFILE_SECONDS,
        )
        try:
            profiler = capture_profile(seconds)
        except ProfileBusyError as error:
            raise RequestError(409, "profile_busy", str(error)) from error
        return profiler.to_speedscope(name=f"repro service {seconds:g}s")

    def handle_alias(self, payload: Any) -> dict[str, Any]:
        """Resolve one raw ingredient phrase against the catalog."""
        body = _payload_dict(payload)
        _reject_unknown(body, frozenset({"phrase", "fuzzy"}))
        phrase = _string_field(body, "phrase")
        fuzzy = _bool_field(body, "fuzzy", default=False)
        resolution = self._pipeline(fuzzy).resolve_phrase(phrase)
        return {
            "phrase": phrase,
            "kind": resolution.kind.value,
            "ingredients": [
                {
                    "ingredient_id": ingredient.ingredient_id,
                    "name": ingredient.name,
                    "category": ingredient.category.value,
                }
                for ingredient in resolution.ingredients
            ],
            "leftover_tokens": list(resolution.leftover_tokens),
        }

    def handle_score(self, payload: Any) -> dict[str, Any]:
        """Food-pairing N_s for an ad-hoc ingredient list."""
        body = _payload_dict(payload)
        _reject_unknown(body, frozenset({"ingredients", "fuzzy"}))
        fuzzy = _bool_field(body, "fuzzy", default=False)
        ingredients = self._ingredients_from(body, fuzzy)
        pairable = [i for i in ingredients if i.has_flavor_profile]
        if len(pairable) < 2:
            raise RequestError(
                422,
                "not_pairable",
                "food pairing needs at least two resolved ingredients "
                f"with flavor profiles, got {len(pairable)}",
            )
        return {
            "score": food_pairing_score(ingredients),
            "resolved": [ingredient.name for ingredient in ingredients],
            "pairable": len(pairable),
        }

    def handle_classify(self, payload: Any) -> dict[str, Any]:
        """Cuisine prediction for an ad-hoc ingredient list."""
        body = _payload_dict(payload)
        _reject_unknown(body, frozenset({"ingredients", "fuzzy", "top"}))
        fuzzy = _bool_field(body, "fuzzy", default=False)
        top = _int_field(body, "top", default=5, minimum=1, maximum=22)
        ingredients = self._ingredients_from(body, fuzzy)
        prediction = self.classifier().predict(
            [ingredient.ingredient_id for ingredient in ingredients]
        )
        return {
            "region_code": prediction.region_code,
            "resolved": [ingredient.name for ingredient in ingredients],
            "ranking": [
                {"region_code": code, "log_likelihood": round(value, 4)}
                for code, value in prediction.ranking()[:top]
            ],
        }

    def handle_pairings(self, payload: Any) -> dict[str, Any]:
        """Top molecule-sharing partners for one ingredient."""
        body = _payload_dict(payload)
        _reject_unknown(body, frozenset({"ingredient", "fuzzy", "limit"}))
        fuzzy = _bool_field(body, "fuzzy", default=False)
        limit = _int_field(
            body,
            "limit",
            default=DEFAULT_PAIRING_LIMIT,
            minimum=1,
            maximum=MAX_PAIRING_LIMIT,
        )
        target = self._ingredient_from(body, fuzzy)
        if not target.has_flavor_profile:
            raise RequestError(
                422,
                "not_pairable",
                f"{target.name!r} has no flavor profile to pair on",
            )
        catalog = self._workspace.catalog
        partners = sorted(
            (
                (target.shared_molecules(other), other)
                for other in catalog.pairable_ingredients()
                if other.ingredient_id != target.ingredient_id
            ),
            key=lambda pair: (-pair[0], pair[1].name),
        )
        return {
            "ingredient": target.name,
            "profile_size": len(target.flavor_profile),
            "partners": [
                {
                    "name": other.name,
                    "category": other.category.value,
                    "shared_molecules": shared,
                }
                for shared, other in partners[:limit]
                if shared > 0
            ],
        }

    def handle_similar(self, payload: Any) -> dict[str, Any]:
        """Top-k nearest neighbors of one ingredient — or one cuisine.

        Exactly one of ``ingredient`` / ``cuisine`` must be given; the
        answer comes off the retrieval index (precomputed neighbor lists
        / prevalence-vector cosines).
        """
        body = _payload_dict(payload)
        _reject_unknown(
            body, frozenset({"ingredient", "cuisine", "k", "fuzzy"})
        )
        has_ingredient = "ingredient" in body
        has_cuisine = "cuisine" in body
        if has_ingredient == has_cuisine:
            raise RequestError(
                400,
                "invalid_field",
                "provide exactly one of 'ingredient' or 'cuisine'",
            )
        k = _int_field(
            body, "k", default=DEFAULT_TOPK, minimum=1, maximum=MAX_TOPK
        )
        fuzzy = _bool_field(body, "fuzzy", default=False)
        index = self.retrieval()
        if has_ingredient:
            target = self._ingredient_from(body, fuzzy)
            if not target.has_flavor_profile:
                raise RequestError(
                    422,
                    "not_pairable",
                    f"{target.name!r} has no flavor profile to pair on",
                )
            matches = similar_ingredients(
                index, self._workspace.catalog, target, k
            )
            return {
                "ingredient": target.name,
                "k": k,
                "matches": [
                    {
                        "ingredient_id": match.ingredient_id,
                        "name": match.name,
                        "shared_molecules": match.shared_molecules,
                    }
                    for match in matches
                ],
            }
        code = _string_field(body, "cuisine").upper()
        if code not in index.cuisine_row:
            known = ", ".join(index.cuisine_codes)
            raise RequestError(
                404,
                "unknown_region",
                f"no such region {code!r} (known: {known})",
            )
        cuisine_matches = nearest_cuisines(index, code, k)
        return {
            "cuisine": code,
            "k": k,
            "matches": [
                {
                    "region_code": match.region_code,
                    "similarity": match.similarity,
                }
                for match in cuisine_matches
            ],
        }

    def handle_complete(self, payload: Any) -> dict[str, Any]:
        """Best pairing completions for a partial ingredient list."""
        body = _payload_dict(payload)
        _reject_unknown(body, frozenset({"ingredients", "k", "fuzzy"}))
        k = _int_field(
            body, "k", default=DEFAULT_TOPK, minimum=1, maximum=MAX_TOPK
        )
        fuzzy = _bool_field(body, "fuzzy", default=False)
        ingredients = self._ingredients_from(body, fuzzy)
        pairable = [i for i in ingredients if i.has_flavor_profile]
        if not pairable:
            raise RequestError(
                422,
                "not_pairable",
                "recipe completion needs at least one resolved "
                "ingredient with a flavor profile",
            )
        completions = complete_recipe(
            self.retrieval(), self._workspace.catalog, ingredients, k
        )
        return {
            "resolved": [ingredient.name for ingredient in ingredients],
            "pairable": len(pairable),
            "k": k,
            "completions": [
                {
                    "ingredient_id": completion.ingredient_id,
                    "name": completion.name,
                    "shared_molecules": completion.shared_total,
                    "score": round(completion.score, 4),
                    "delta": round(completion.delta, 4),
                }
                for completion in completions
            ],
        }

    def handle_recommend(self, payload: Any) -> dict[str, Any]:
        """Novel in-style recipe proposals for one region.

        The designer sources candidates from the retrieval index; the
        RNG is seeded from the request (default 0), so the response is a
        pure function of the payload and safely cacheable.
        """
        body = _payload_dict(payload)
        _reject_unknown(body, frozenset({"region", "count", "size", "seed"}))
        region_code = _string_field(body, "region").upper()
        count = _int_field(
            body,
            "count",
            default=DEFAULT_RECOMMEND_COUNT,
            minimum=1,
            maximum=MAX_RECOMMEND_COUNT,
        )
        size = None
        if body.get("size") is not None:
            size = _int_field(
                body,
                "size",
                default=MIN_RECOMMEND_SIZE,
                minimum=MIN_RECOMMEND_SIZE,
                maximum=MAX_RECOMMEND_SIZE,
            )
        seed = _int_field(
            body, "seed", default=0, minimum=0, maximum=MAX_RECOMMEND_SEED
        )
        designer = self.designer(region_code)
        rng = np.random.default_rng(seed)
        proposals = [designer.propose(rng, size=size) for _ in range(count)]
        index = self.retrieval()
        neighbors = (
            nearest_cuisines(index, region_code, RECOMMEND_NEAR_CUISINES)
            if region_code in index.cuisine_row
            else []
        )
        return {
            "region": region_code,
            "seed": seed,
            "proposals": [
                {
                    "ingredients": list(proposal.ingredient_names),
                    "pairing_score": round(proposal.pairing_score, 4),
                    "style_score": round(proposal.style_score, 4),
                    "novelty": round(1.0 - proposal.max_overlap, 4),
                }
                for proposal in proposals
            ],
            "similar_cuisines": [
                {
                    "region_code": match.region_code,
                    "similarity": match.similarity,
                }
                for match in neighbors
            ],
        }

    def handle_regions(self, payload: Any) -> dict[str, Any]:
        """Table 1-style per-region summary of the workspace corpus."""
        _payload_dict(payload)
        cuisines = self._workspace.regional_cuisines()
        rows = []
        for region in REGIONS:
            cuisine = cuisines.get(region.code)
            rows.append(
                {
                    "code": region.code,
                    "name": region.name,
                    "pairing": region.pairing.value,
                    "recipes": len(cuisine) if cuisine else 0,
                    "ingredients": (
                        len(cuisine.ingredient_ids) if cuisine else 0
                    ),
                    "published_recipes": region.recipe_count,
                    "published_ingredients": region.ingredient_count,
                }
            )
        return {"regions": rows}

    def handle_stats(self, payload: Any) -> dict[str, Any]:
        """Aggregate corpus and aliasing statistics."""
        _payload_dict(payload)
        workspace = self._workspace
        report = workspace.report
        sizes = [recipe.size for recipe in workspace.recipes]
        return {
            "recipes": len(workspace.recipes),
            "regions": len(workspace.regional_cuisines()),
            "catalog_ingredients": len(workspace.catalog),
            "mean_recipe_size": (
                round(sum(sizes) / len(sizes), 3) if sizes else 0.0
            ),
            "aliasing": {
                "phrases": report.phrases_total,
                "exact_rate": round(report.exact_rate(), 4),
                "recipes_resolved": report.recipes_resolved,
                "recipes_total": report.recipes_total,
            },
        }

    def handle_sql(self, payload: Any) -> dict[str, Any]:
        """Read-only SELECT against the in-memory CulinaryDB.

        Statements go through the per-database plan cache, so repeated
        queries (including parameterised ``?`` templates bound from
        ``params``) skip tokenizing and parsing. ``reference=true`` pins
        the row-at-a-time executor for ablations.
        """
        body = _payload_dict(payload)
        _reject_unknown(
            body,
            frozenset({"sql", "query", "params", "max_rows", "reference"}),
        )
        if ("sql" in body) == ("query" in body):
            raise RequestError(
                400,
                "invalid_field",
                "provide exactly one of 'sql' or 'query'",
            )
        field = "sql" if "sql" in body else "query"
        query = _string_field(body, field)
        params = body.get("params", [])
        if not isinstance(params, list):
            raise RequestError(
                400,
                "invalid_field",
                f"field 'params' must be a list, got "
                f"{type(params).__name__}",
            )
        reference = _bool_field(body, "reference", default=False)
        max_rows = _int_field(
            body,
            "max_rows",
            default=DEFAULT_SQL_ROWS,
            minimum=1,
            maximum=MAX_SQL_ROWS,
        )
        database = self.database()
        try:
            plan = database.prepare(query)
        except SqlSyntaxError as error:
            raise RequestError(400, "sql_syntax", str(error)) from error
        if plan.kind != "select":
            raise RequestError(
                403,
                "read_only",
                "only SELECT statements are served; DML is not allowed",
            )
        execution: dict[str, Any] = {}
        try:
            rows = plan.execute(
                database, params, reference=reference, info_out=execution
            )
        except ReproError as error:
            raise RequestError(400, "sql_error", str(error)) from error
        response = {
            "rows": rows[:max_rows],
            "row_count": len(rows),
            "truncated": len(rows) > max_rows,
            "executor": execution.get("executor", "reference"),
        }
        if execution.get("reason_family"):
            response["fallback"] = execution["reason_family"]
        return response

    def handle_montecarlo(self, payload: Any) -> dict[str, Any]:
        """Null-model Z-score for one region through the parallel engine.

        Runs the same sharded Monte Carlo engine as ``fig4 --workers``
        (shared-memory views, spawned per-shard RNGs, streaming moment
        reduction), so the response depends only on
        ``(region, model, n_samples, seed, shard_size)`` — never on
        ``workers`` — and is therefore safely cacheable.
        """
        from ..pairing import NullModel, compare_to_model
        from ..parallel import resolve_workers

        body = _payload_dict(payload)
        _reject_unknown(
            body,
            frozenset(
                {"region", "model", "n_samples", "workers",
                 "shard_size", "seed"}
            ),
        )
        region_code = _string_field(body, "region").upper()
        model_value = body.get("model", NullModel.RANDOM.value)
        try:
            model = NullModel(model_value)
        except ValueError:
            known = ", ".join(item.value for item in NullModel)
            raise RequestError(
                400,
                "invalid_field",
                f"unknown null model {model_value!r} (known: {known})",
            ) from None
        n_samples = _int_field(
            body,
            "n_samples",
            default=DEFAULT_MC_SAMPLES,
            minimum=MIN_MC_SAMPLES,
            maximum=MAX_MC_SAMPLES,
        )
        workers = _int_field(
            body, "workers", default=1, minimum=1, maximum=MAX_MC_WORKERS
        )
        shard_size = _int_field(
            body,
            "shard_size",
            default=DEFAULT_MC_SHARD_SIZE,
            minimum=MIN_MC_SHARD_SIZE,
            maximum=MAX_MC_SHARD_SIZE,
        )
        seed = body.get("seed")
        if seed is not None and (
            isinstance(seed, bool) or not isinstance(seed, int)
        ):
            raise RequestError(
                400, "invalid_field", "'seed' must be an integer"
            )
        view = self.cuisine_view(region_code)
        request_config = self._config.replace(
            n_samples=n_samples,
            workers=workers,
            shard_size=shard_size,
            seed=seed,
        )
        comparison = compare_to_model(
            view,
            model,
            request_config.n_samples,
            parallel=request_config.parallel(cap=resolve_workers(None)),
            seed=request_config.sampling_seed,
        )
        return {
            "region": region_code,
            "model": model.value,
            "n_samples": n_samples,
            "shard_size": shard_size,
            "cuisine_mean": comparison.cuisine_mean,
            "random_mean": comparison.random_mean,
            "random_std": comparison.random_std,
            "z_score": comparison.z_score,
            "effect_size": comparison.effect_size,
            "direction": comparison.direction,
        }
