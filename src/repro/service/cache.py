"""Thread-safe LRU+TTL result cache for the serving layer.

Handler results are pure functions of ``(endpoint, request payload)`` for
a fixed workspace, so the app can cache them aggressively: the cache key
is the canonicalised request (:func:`canonical_key`), the value is the
ready-to-serialise response body. Entries expire after an optional TTL
and the least-recently-used entry is evicted beyond capacity, so a
long-running server's memory stays bounded no matter the query mix.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from collections import OrderedDict
from typing import Any, Callable

from ..datamodel import ConfigurationError

#: Returned by :meth:`ResultCache.get` on a miss; ``None`` is a valid
#: cached value so a sentinel is needed.
MISSING = object()


def canonical_key(endpoint: str, payload: Any) -> str:
    """Canonical cache key for one request.

    Two payloads that differ only in dict ordering produce the same key;
    the endpoint name is prefixed so handlers never collide.
    """
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return f"{endpoint}:{body}"


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Point-in-time cache counters.

    Attributes:
        size: entries currently stored.
        capacity: maximum entries stored.
        hits: lookups answered from the cache.
        misses: lookups that found nothing (or only an expired entry).
        evictions: entries dropped to respect capacity.
        expirations: entries dropped because their TTL elapsed.
    """

    size: int
    capacity: int
    hits: int
    misses: int
    evictions: int
    expirations: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "size": self.size,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "hit_rate": round(self.hit_rate, 4),
        }


class ResultCache:
    """A bounded LRU cache with optional per-entry TTL; safe under threads.

    All operations take one lock, so the cache is linearisable; the lock
    is never held while computing a value — callers do look-aside caching
    (``get``, compute on miss, ``put``).
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """
        Args:
            capacity: maximum number of entries (must be positive).
            ttl: entry lifetime in seconds; ``None`` disables expiry.
            clock: monotonic time source (injectable for tests).
        """
        if capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be positive, got {capacity}"
            )
        if ttl is not None and ttl <= 0:
            raise ConfigurationError(f"cache ttl must be positive, got {ttl}")
        self._capacity = capacity
        self._ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[float, Any]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def ttl(self) -> float | None:
        return self._ttl

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Any:
        """The cached value, or :data:`MISSING`; refreshes LRU recency."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return MISSING
            stored_at, value = entry
            if self._ttl is not None and now - stored_at >= self._ttl:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return MISSING
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: str, value: Any) -> None:
        """Store a value, evicting the LRU entry beyond capacity."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (self._clock(), value)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def invalidate(self, key: str) -> bool:
        """Drop one entry; True if it was present."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                size=len(self._entries),
                capacity=self._capacity,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
            )
