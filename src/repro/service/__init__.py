"""Query-serving subsystem: the repo's capabilities behind an HTTP JSON API.

The analyses, the aliasing pipeline, the cuisine classifier and the SQL
engine are all built for batch experiment runs; this package wraps a warm
:class:`~repro.experiments.ExperimentWorkspace` behind a request/response
API so the same capabilities serve interactive, query-driven workloads
("Kissing Cuisines" and the world-cuisine evolution papers both treat
recipe analytics as an online service).

The serving stack is layered; requests flow top to bottom:

* **transport** — :mod:`repro.service.aio`, the default asyncio
  HTTP/1.1 front door (keep-alive, pipelining, connection limits,
  graceful drain), and :mod:`repro.service.server`, the original
  ``ThreadingHTTPServer`` retained behind ``--transport thread`` as the
  golden-equivalence reference. Wire-level rules both transports must
  agree on live in :mod:`repro.service.wire`.
* **admission** — :mod:`repro.service.admission`: bounded per-endpoint
  queues; sheds load with structured ``429``/``503`` envelopes.
* **coalescing** — :mod:`repro.service.coalesce`: N identical in-flight
  cacheable requests trigger one handler computation.
* **dispatch** — :mod:`repro.service.app`: routing, caching, metrics,
  error envelopes; the single sync core both transports call.

Below dispatch sit :mod:`repro.service.handlers` (typed handlers over a
warm :class:`~repro.experiments.ExperimentWorkspace`),
:mod:`repro.service.cache` (thread-safe LRU+TTL result cache) and
:mod:`repro.service.metrics` (per-endpoint counters/latency plus the
serving gauges). :mod:`repro.service.loadtest` is the matching load
harness (``repro loadtest``).

``repro serve`` (see :mod:`repro.cli`) builds the workspace once and
serves it until interrupted; SIGTERM drains gracefully.
"""

from .admission import AdmissionController, AdmissionLimits, AdmissionReject
from .aio import (
    AsyncServerHandle,
    AsyncServiceServer,
    create_async_server,
    serve_async_in_thread,
)
from .app import (
    ROUTES,
    PlainTextResponse,
    ServiceApp,
    generate_request_id,
    resolve_request_id,
)
from .cache import CacheStats, ResultCache, canonical_key
from .coalesce import RequestCoalescer
from .handlers import QueryService, RequestError
from .loadtest import LoadClient, LoadReport, run_loadtest
from .metrics import LatencyStats, ServiceMetrics
from .server import ServiceServer, create_server, serve_in_thread

__all__ = [
    "ROUTES",
    "AdmissionController",
    "AdmissionLimits",
    "AdmissionReject",
    "AsyncServerHandle",
    "AsyncServiceServer",
    "PlainTextResponse",
    "RequestCoalescer",
    "ServiceApp",
    "CacheStats",
    "LoadClient",
    "LoadReport",
    "ResultCache",
    "canonical_key",
    "create_async_server",
    "QueryService",
    "RequestError",
    "LatencyStats",
    "ServiceMetrics",
    "ServiceServer",
    "create_server",
    "generate_request_id",
    "resolve_request_id",
    "run_loadtest",
    "serve_async_in_thread",
    "serve_in_thread",
]
