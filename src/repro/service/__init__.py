"""Query-serving subsystem: the repo's capabilities behind an HTTP JSON API.

The analyses, the aliasing pipeline, the cuisine classifier and the SQL
engine are all built for batch experiment runs; this package wraps a warm
:class:`~repro.experiments.ExperimentWorkspace` behind a request/response
API so the same capabilities serve interactive, query-driven workloads
("Kissing Cuisines" and the world-cuisine evolution papers both treat
recipe analytics as an online service). Layers:

* :mod:`repro.service.handlers` — typed request handlers over the
  workspace (:class:`QueryService`), independent of any transport.
* :mod:`repro.service.cache` — a thread-safe LRU+TTL result cache keyed
  on canonicalised requests, shared across handlers.
* :mod:`repro.service.metrics` — per-endpoint counters and latency
  histograms, surfaced at ``/metrics``.
* :mod:`repro.service.app` — routing, request validation, structured
  error envelopes; maps ``(method, path, payload)`` to a JSON response.
* :mod:`repro.service.server` — the stdlib HTTP transport
  (``ThreadingHTTPServer``); adds zero dependencies.

``repro serve`` (see :mod:`repro.cli`) builds the workspace once and
serves it until interrupted.
"""

from .app import (
    ROUTES,
    PlainTextResponse,
    ServiceApp,
    generate_request_id,
    resolve_request_id,
)
from .cache import CacheStats, ResultCache, canonical_key
from .handlers import QueryService, RequestError
from .metrics import LatencyStats, ServiceMetrics
from .server import ServiceServer, create_server

__all__ = [
    "ROUTES",
    "PlainTextResponse",
    "ServiceApp",
    "CacheStats",
    "ResultCache",
    "canonical_key",
    "QueryService",
    "RequestError",
    "LatencyStats",
    "ServiceMetrics",
    "ServiceServer",
    "create_server",
    "generate_request_id",
    "resolve_request_id",
]
