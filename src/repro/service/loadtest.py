"""Load harness for the serving stack (``repro loadtest``).

A concurrent keep-alive HTTP client that replays configurable endpoint
mixes against a running server and reports throughput, latency
percentiles and error fractions — the measurement half of the serving
stack, sharing nothing with the server side so it can drive either
transport impartially.

Mixes:

* ``smoke`` — every serving endpoint once per cycle (health, metrics,
  analysis and SQL endpoints; ``/montecarlo`` at its minimum sample
  count). CI uses it to prove the async transport serves the whole API
  with zero 5xx and drains cleanly.
* ``hot`` — one identical cacheable ``/score`` request, repeated. With
  the cache cleared this is the coalescing torture test: N connections,
  one hot key, and ``handler_calls`` should stay far below ``requests``.
* ``spread`` — ``/score`` with rotating ingredient permutations, so
  every request is a distinct cache key (the anti-coalescing control).

The client is a plain ``asyncio`` implementation over
``open_connection`` — one coroutine per connection, strict HTTP/1.1
keep-alive, no third-party dependencies — so a single process can hold
hundreds of concurrent connections, which threads could not.

Results serialise to the ``BENCH_service_load.json`` schema consumed by
``repro obs check``. Metric naming note: the error share is reported as
``error_fraction`` (never "error_rate" — the watchdog classifies
``*_rate`` leaves as higher-is-better).
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import json
import time
from typing import Any, Callable, Sequence
from urllib.parse import urlsplit

from ..obs.metrics import percentile

__all__ = [
    "MIXES",
    "LoadClient",
    "LoadReport",
    "build_mix",
    "run_loadtest",
]

#: (method, path, JSON payload or None)
RequestSpec = tuple[str, str, Any]

#: Placeholder region code; replaced by the first populated region the
#: target server reports, so mixes work at any ``--scale``.
REGION_PLACEHOLDER = "__region__"

#: Ingredients present even at the smallest corpus scales (the same
#: trio the CI serve-smoke job has always used).
_STAPLES = ("garlic", "onion", "tomato")


def smoke_mix() -> list[RequestSpec]:
    """Every serving endpoint once (``/debug/profile`` excluded: it
    admits one capture at a time, so concurrent replay would 409)."""
    return [
        ("GET", "/healthz", None),
        ("GET", "/readyz", None),
        ("GET", "/regions", None),
        ("GET", "/stats", None),
        ("GET", "/metrics", None),
        ("POST", "/alias", {"phrase": "2 cloves garlic, minced"}),
        ("POST", "/score", {"ingredients": list(_STAPLES)}),
        ("POST", "/classify", {"ingredients": list(_STAPLES), "top": 3}),
        ("POST", "/pairings", {"ingredient": "garlic", "limit": 5}),
        ("POST", "/similar", {"ingredient": "garlic", "k": 5}),
        ("POST", "/complete", {"ingredients": ["garlic", "onion"], "k": 3}),
        (
            "POST",
            "/recommend",
            {"region": REGION_PLACEHOLDER, "count": 2, "seed": 7},
        ),
        (
            "POST",
            "/sql",
            {
                "query": (
                    "SELECT code, name, pairing FROM regions "
                    "ORDER BY code LIMIT 5"
                )
            },
        ),
        (
            "POST",
            "/montecarlo",
            {"region": REGION_PLACEHOLDER, "n_samples": 100, "seed": 7},
        ),
    ]


def hot_mix() -> list[RequestSpec]:
    """One identical cacheable request — the coalescing hot key."""
    return [("POST", "/score", {"ingredients": list(_STAPLES)})]


def spread_mix() -> list[RequestSpec]:
    """Distinct /score cache keys (ingredient-order permutations)."""
    return [
        ("POST", "/score", {"ingredients": list(perm)})
        for perm in itertools.permutations(_STAPLES)
    ]


MIXES: dict[str, Callable[[], list[RequestSpec]]] = {
    "smoke": smoke_mix,
    "hot": hot_mix,
    "spread": spread_mix,
}


@dataclasses.dataclass(frozen=True)
class LoadReport:
    """One load-test run, JSON-ready (the BENCH_service_load schema)."""

    mix: str
    connections: int
    requests: int
    errors: int
    duration_s: float
    requests_per_sec: float
    p50_ms: float
    p99_ms: float
    status_counts: dict[str, int]

    @property
    def error_fraction(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "mix": self.mix,
            "connections": self.connections,
            "requests": self.requests,
            "errors": self.errors,
            "error_fraction": round(self.error_fraction, 6),
            "duration_s": round(self.duration_s, 4),
            "requests_per_sec": round(self.requests_per_sec, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "status_counts": dict(sorted(self.status_counts.items())),
        }

    def render(self) -> str:
        statuses = " ".join(
            f"{status}:{count}"
            for status, count in sorted(self.status_counts.items())
        )
        return (
            f"mix={self.mix} connections={self.connections} "
            f"requests={self.requests} errors={self.errors} "
            f"throughput={self.requests_per_sec:.1f} req/s "
            f"p50={self.p50_ms:.2f} ms p99={self.p99_ms:.2f} ms "
            f"[{statuses}]"
        )


class LoadClient:
    """One keep-alive HTTP/1.1 connection issuing sequential requests.

    The measurement primitive: benchmarks drive bursts through a handful
    of these directly, and :func:`run_loadtest` runs one per simulated
    connection.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def aclose(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def request(
        self, method: str, path: str, payload: Any = None
    ) -> tuple[int, Any]:
        """One round trip; reconnects when the server closed on us."""
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        body = b""
        head = [f"{method} {path} HTTP/1.1", f"Host: {self.host}"]
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            head.append("Content-Type: application/json")
            head.append(f"Content-Length: {len(body)}")
        head.append("Connection: keep-alive")
        self._writer.write(
            "\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + body
        )
        await self._writer.drain()
        status, headers, raw = await asyncio.wait_for(
            self._read_response(), timeout=self.timeout
        )
        if headers.get("connection", "").lower() == "close":
            await self.aclose()
        try:
            decoded = json.loads(raw) if raw else None
        except json.JSONDecodeError:
            decoded = raw.decode("utf-8", "replace")
        return status, decoded

    async def _read_response(self) -> tuple[int, dict[str, str], bytes]:
        assert self._reader is not None
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        return status, headers, raw


def build_mix(name: str) -> list[RequestSpec]:
    """The named mix with placeholders still in (see ``_materialize``)."""
    try:
        return MIXES[name]()
    except KeyError:
        raise ValueError(
            f"unknown mix {name!r} (expected one of {sorted(MIXES)})"
        ) from None


async def _materialize(
    mix: list[RequestSpec], client: LoadClient
) -> list[RequestSpec]:
    """Resolve region placeholders against the live server."""
    if not any(
        isinstance(payload, dict)
        and payload.get("region") == REGION_PLACEHOLDER
        for _, _, payload in mix
    ):
        return mix
    status, body = await client.request("GET", "/regions")
    region = None
    if status == 200 and isinstance(body, dict):
        for row in body.get("regions", []):
            if row.get("recipes"):
                region = row["code"]
                break
    if region is None:
        raise RuntimeError(
            "could not resolve a populated region from /regions"
        )
    resolved = []
    for method, path, payload in mix:
        if (
            isinstance(payload, dict)
            and payload.get("region") == REGION_PLACEHOLDER
        ):
            payload = {**payload, "region": region}
        resolved.append((method, path, payload))
    return resolved


async def _run_async(
    host: str,
    port: int,
    mix_name: str,
    connections: int,
    requests: int,
    timeout: float,
) -> LoadReport:
    mix = build_mix(mix_name)
    probe = LoadClient(host, port, timeout=timeout)
    await probe.connect()
    try:
        mix = await _materialize(mix, probe)
    finally:
        await probe.aclose()

    latencies: list[float] = []
    status_counts: dict[str, int] = {}
    errors = 0
    # Spread the total evenly; the remainder goes to the first workers.
    share, extra = divmod(requests, connections)

    async def worker(index: int) -> None:
        nonlocal errors
        count = share + (1 if index < extra else 0)
        if count == 0:
            return
        client = LoadClient(host, port, timeout=timeout)
        await client.connect()
        try:
            # Offset each worker so connections do not march in
            # lockstep through the mix.
            for step in range(count):
                method, path, payload = mix[(index + step) % len(mix)]
                started = time.perf_counter()
                try:
                    status, _ = await client.request(method, path, payload)
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    await client.aclose()
                    errors += 1
                    status_counts["(transport)"] = (
                        status_counts.get("(transport)", 0) + 1
                    )
                    continue
                latencies.append(time.perf_counter() - started)
                key = str(status)
                status_counts[key] = status_counts.get(key, 0) + 1
                if status >= 500:
                    errors += 1
        finally:
            await client.aclose()

    started = time.perf_counter()
    await asyncio.gather(*(worker(i) for i in range(connections)))
    duration = time.perf_counter() - started

    ordered = sorted(latencies)
    return LoadReport(
        mix=mix_name,
        connections=connections,
        requests=requests,
        errors=errors,
        duration_s=duration,
        requests_per_sec=requests / duration if duration > 0 else 0.0,
        p50_ms=percentile(ordered, 0.50) * 1000 if ordered else 0.0,
        p99_ms=percentile(ordered, 0.99) * 1000 if ordered else 0.0,
        status_counts=status_counts,
    )


def run_loadtest(
    url: str,
    mix: str = "smoke",
    connections: int = 8,
    requests: int = 200,
    timeout: float = 30.0,
) -> LoadReport:
    """Replay ``mix`` against ``url`` and measure.

    Runs its own event loop, so it must be called from a thread that is
    not already inside one (the CLI, tests and benchmarks all qualify).
    """
    parts = urlsplit(url if "//" in url else f"http://{url}")
    host = parts.hostname or "127.0.0.1"
    port = parts.port or 80
    if connections < 1:
        raise ValueError(f"connections must be positive, got {connections}")
    if requests < 1:
        raise ValueError(f"requests must be positive, got {requests}")
    return asyncio.run(
        _run_async(host, port, mix, connections, requests, timeout)
    )
