"""Stdlib HTTP transport for the service app.

A :class:`~http.server.ThreadingHTTPServer` subclass that decodes JSON
requests, hands them to :meth:`ServiceApp.dispatch` and encodes the JSON
response — nothing else. One OS thread per connection is plenty for the
CPU-bound workloads behind it, and it keeps the subsystem at zero
dependencies.
"""

from __future__ import annotations

import functools
import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs

from .app import (
    PlainTextResponse,
    ServiceApp,
    resolve_request_id,
)
from .wire import MAX_BODY_BYTES, decode_body, frame_body

__all__ = [
    "MAX_BODY_BYTES",
    "ServiceRequestHandler",
    "ServiceServer",
    "create_server",
    "serve_in_thread",
]


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Translates HTTP requests to ``ServiceApp.dispatch`` calls."""

    server: "ServiceServer"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._serve("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._serve("POST")

    def __getattr__(self, name: str) -> Any:
        # BaseHTTPRequestHandler probes ``do_<METHOD>`` with hasattr and
        # answers a bare HTML 501 when it is missing. Synthesise a
        # handler for every method instead, so HEAD/PUT/DELETE/... flow
        # through dispatch and receive the structured 405/404 JSON
        # envelope with an X-Request-Id like every other response.
        if name.startswith("do_") and name[3:].isupper():
            return functools.partial(self._serve, name[3:])
        raise AttributeError(name)

    def _serve(self, method: str) -> None:
        # Resolve the correlation id first: even a malformed-body 400
        # carries it, in the envelope and the X-Request-Id echo.
        request_id = resolve_request_id(self.headers.get("X-Request-Id"))
        payload, parse_error = self._read_payload()
        if parse_error is not None:
            parse_error["request_id"] = request_id
            self._respond(parse_error["status"], parse_error, request_id)
            return
        path, _, query = self.path.partition("?")
        if payload is None and query:
            # GET endpoints take parameters from the query string
            # (e.g. /metrics?format=prometheus); last value wins.
            payload = {
                key: values[-1]
                for key, values in parse_qs(query).items()
            }
        status, body = self.server.app.dispatch(
            method, path, payload, request_id=request_id
        )
        self._respond(status, body, request_id)

    def _read_payload(self) -> tuple[Any, dict[str, Any] | None]:
        """The decoded JSON body, or an error envelope when undecodable.

        Framing rules (411 on POST without Content-Length, size limits)
        are shared with the asyncio transport via
        :mod:`repro.service.wire`, so the two front doors cannot drift.
        """
        length, frame_error = frame_body(
            self.command,
            self.headers.get("Content-Length"),
            self.headers.get("Transfer-Encoding"),
        )
        if frame_error is not None:
            # The body boundary is unknown; answer, then close.
            self.close_connection = True
            return None, frame_error
        if not length:
            return None, None
        raw = self.rfile.read(length)
        return decode_body(raw)

    def _respond(
        self,
        status: int,
        body: dict[str, Any] | PlainTextResponse,
        request_id: str | None = None,
    ) -> None:
        if isinstance(body, PlainTextResponse):
            encoded = body.text.encode("utf-8")
            content_type = body.content_type
        else:
            encoded = json.dumps(body).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        if request_id is not None:
            self.send_header("X-Request-Id", request_id)
        self.send_header("Content-Length", str(len(encoded)))
        if self.close_connection:
            # Framing errors leave the body boundary unknown; tell the
            # client explicitly that this connection is done.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(encoded)

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            sys.stderr.write(
                f"{self.address_string()} - {format % args}\n"
            )


class ServiceServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`ServiceApp`."""

    daemon_threads = True
    #: socketserver's default listen backlog is 5, which drops
    #: connections under any real connect burst (e.g. ``repro loadtest``
    #: opening hundreds of keep-alive connections at once).
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        app: ServiceApp,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.app = app
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def create_server(
    app: ServiceApp,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = False,
) -> ServiceServer:
    """Bind a server (``port=0`` picks a free port; see ``.url``)."""
    return ServiceServer((host, port), app, verbose=verbose)


def serve_in_thread(server: ServiceServer) -> threading.Thread:
    """Run ``serve_forever`` on a daemon thread (tests and embedding)."""
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service", daemon=True
    )
    thread.start()
    return thread
