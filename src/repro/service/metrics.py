"""Per-endpoint request metrics: counters and latency percentiles.

Since the ``repro.obs`` observability layer landed, this module is a thin
wrapper: the ring-buffer reservoir and percentile code that used to live
here was generalised into :mod:`repro.obs.metrics`, and
:class:`ServiceMetrics` now just maintains a conventional set of series
in a :class:`~repro.obs.metrics.MetricsRegistry`:

* ``repro_requests_total{endpoint=...}`` — requests dispatched,
* ``repro_request_errors_total{endpoint=...}`` — 4xx/5xx responses,
* ``repro_cache_hits_total{endpoint=...}`` — responses from the cache,
* ``repro_request_seconds{endpoint=...}`` — latency histogram
  (sliding-window p50/p95/p99 over the most recent
  :data:`RESERVOIR_SIZE` samples).

The JSON ``/metrics`` body, the ``--stats`` shutdown table and the
Prometheus exposition (``/metrics?format=prometheus``) all derive from
the same registry.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..obs.metrics import (  # noqa: F401 - re-exported for compatibility
    PERCENTILES,
    RESERVOIR_SIZE,
    HistogramStats,
    MetricsRegistry,
    percentile,
)

REQUESTS = "repro_requests_total"
ERRORS = "repro_request_errors_total"
CACHE_HITS = "repro_cache_hits_total"
LATENCY = "repro_request_seconds"

# Serving-layer series (admission + coalescing + dispatch). The names
# live here so every layer registers into the same conventional set and
# ``/metrics`` can enumerate them without creating empty series.
#: Gauge: requests currently executing, per endpoint.
INFLIGHT = "repro_service_inflight"
#: Gauge: requests waiting in the admission queue, per endpoint.
QUEUE_DEPTH = "repro_service_queue_depth"
#: Counter: requests rejected by admission, per endpoint and reason.
REJECTED = "repro_service_rejected_total"
#: Counter: responses served from another request's in-flight
#: computation (see :mod:`repro.service.coalesce`).
COALESCED = "repro_service_coalesced_total"
#: Counter: actual handler invocations, per endpoint — requests minus
#: cache hits minus coalesced responses; the load test's compute proof.
HANDLER_CALLS = "repro_service_handler_calls_total"


@dataclasses.dataclass(frozen=True)
class LatencyStats:
    """Summary of one endpoint's latency window (seconds).

    Attributes:
        count: total requests observed (beyond the window).
        mean: mean latency over the window.
        p50/p95/p99: percentiles over the window; 0.0 when empty.
    """

    count: int
    mean: float
    p50: float
    p95: float
    p99: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean * 1000, 3),
            "p50_ms": round(self.p50 * 1000, 3),
            "p95_ms": round(self.p95 * 1000, 3),
            "p99_ms": round(self.p99 * 1000, 3),
        }


class ServiceMetrics:
    """Thread-safe registry of per-endpoint metrics.

    Each instance owns its own :class:`MetricsRegistry` by default, so
    tests and embedded apps never share state; pass a registry to
    aggregate several apps into one exposition.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    def observe(
        self,
        endpoint: str,
        seconds: float,
        error: bool = False,
        cache_hit: bool = False,
    ) -> None:
        """Record one request against ``endpoint``."""
        registry = self._registry
        registry.counter(REQUESTS, endpoint=endpoint).incr()
        if error:
            registry.counter(ERRORS, endpoint=endpoint).incr()
        if cache_hit:
            registry.counter(CACHE_HITS, endpoint=endpoint).incr()
        registry.histogram(LATENCY, endpoint=endpoint).observe(seconds)

    def handler_call(self, endpoint: str) -> None:
        """Record one actual handler invocation against ``endpoint``."""
        self._registry.counter(HANDLER_CALLS, endpoint=endpoint).incr()

    def endpoint_names(self) -> tuple[str, ...]:
        return self._registry.label_values(REQUESTS, "endpoint")

    def serving_snapshot(self) -> dict[str, Any]:
        """The serving-layer gauges/counters, JSON-ready.

        Enumerates existing series only (never creates empty ones), so
        a freshly-started server reports empty maps rather than zeros
        for endpoints it has not seen.
        """
        body: dict[str, Any] = {
            "inflight": {},
            "queue_depth": {},
            "coalesced": {},
            "handler_calls": {},
            "rejected": {},
        }
        keyed = {
            INFLIGHT: "inflight",
            QUEUE_DEPTH: "queue_depth",
            COALESCED: "coalesced",
            HANDLER_CALLS: "handler_calls",
        }
        for series in self._registry.collect():
            key = keyed.get(series.name)
            endpoint = series.labels.get("endpoint", "(unknown)")
            if key is not None:
                body[key][endpoint] = int(series.metric.value)
            elif series.name == REJECTED:
                reason = series.labels.get("reason", "(unknown)")
                body["rejected"].setdefault(endpoint, {})[reason] = int(
                    series.metric.value
                )
        return body

    def _count(self, name: str, endpoint: str) -> int:
        return int(self._registry.counter(name, endpoint=endpoint).value)

    def snapshot(self) -> dict[str, Any]:
        """All endpoints' counters and latency summaries, JSON-ready."""
        body: dict[str, Any] = {}
        for endpoint in self.endpoint_names():
            requests = self._count(REQUESTS, endpoint)
            cache_hits = self._count(CACHE_HITS, endpoint)
            stats = self._registry.histogram(LATENCY, endpoint=endpoint).stats()
            latency = LatencyStats(
                count=requests,
                mean=stats.mean,
                p50=stats.p50,
                p95=stats.p95,
                p99=stats.p99,
            )
            body[endpoint] = {
                "requests": requests,
                "errors": self._count(ERRORS, endpoint),
                "cache_hits": cache_hits,
                "hit_rate": round(cache_hits / requests, 4) if requests else 0.0,
                "latency": latency.as_dict(),
            }
        return body

    def render_prometheus(self) -> str:
        """The Prometheus text exposition of this app's series."""
        return self._registry.render_prometheus()

    def render_summary(self) -> str:
        """Aligned text table of the snapshot (the ``--stats`` summary)."""
        snapshot = self.snapshot()
        if not snapshot:
            return "(no requests served)"
        headers = [
            "endpoint", "requests", "errors", "cache_hits", "hit_rate",
            "mean_ms", "p50_ms", "p95_ms", "p99_ms",
        ]
        rows = [
            [
                name,
                str(stats["requests"]),
                str(stats["errors"]),
                str(stats["cache_hits"]),
                f"{stats['hit_rate']:.2%}",
                f"{stats['latency']['mean_ms']:.3f}",
                f"{stats['latency']['p50_ms']:.3f}",
                f"{stats['latency']['p95_ms']:.3f}",
                f"{stats['latency']['p99_ms']:.3f}",
            ]
            for name, stats in snapshot.items()
        ]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows))
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(header.ljust(width) for header, width in zip(headers, widths))
        ]
        for row in rows:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)
