"""Per-endpoint request metrics: counters and latency percentiles.

Every dispatched request records its endpoint, outcome and wall-clock
latency. Latencies land in a fixed-size reservoir (the most recent
:data:`RESERVOIR_SIZE` samples per endpoint), from which ``/metrics``
derives p50/p95/p99 — a sliding-window view that stays O(1) memory on a
server handling millions of requests. Counters are monotonic for the
process lifetime.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from typing import Any

#: Latency samples retained per endpoint (a sliding window).
RESERVOIR_SIZE = 2048

#: Percentiles exposed by snapshots, as fractions.
PERCENTILES = (0.50, 0.95, 0.99)


@dataclasses.dataclass(frozen=True)
class LatencyStats:
    """Summary of one endpoint's latency window (seconds).

    Attributes:
        count: total requests observed (beyond the window).
        mean: mean latency over the window.
        p50/p95/p99: percentiles over the window; 0.0 when empty.
    """

    count: int
    mean: float
    p50: float
    p95: float
    p99: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean * 1000, 3),
            "p50_ms": round(self.p50 * 1000, 3),
            "p95_ms": round(self.p95 * 1000, 3),
            "p99_ms": round(self.p99 * 1000, 3),
        }


def percentile(sorted_samples: list[float], fraction: float) -> float:
    """Linear-interpolated percentile of an ascending sample list."""
    if not sorted_samples:
        return 0.0
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    rank = fraction * (len(sorted_samples) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_samples[low]
    weight = rank - low
    return sorted_samples[low] * (1 - weight) + sorted_samples[high] * weight


class _EndpointMetrics:
    """Counters plus a latency ring buffer for one endpoint."""

    __slots__ = ("requests", "errors", "cache_hits", "samples", "next_slot")

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.cache_hits = 0
        self.samples: list[float] = []
        self.next_slot = 0

    def observe(self, seconds: float, error: bool, cache_hit: bool) -> None:
        self.requests += 1
        if error:
            self.errors += 1
        if cache_hit:
            self.cache_hits += 1
        if len(self.samples) < RESERVOIR_SIZE:
            self.samples.append(seconds)
        else:  # overwrite the oldest sample (ring buffer)
            self.samples[self.next_slot] = seconds
            self.next_slot = (self.next_slot + 1) % RESERVOIR_SIZE

    def latency(self) -> LatencyStats:
        window = sorted(self.samples)
        mean = sum(window) / len(window) if window else 0.0
        p50, p95, p99 = (percentile(window, f) for f in PERCENTILES)
        return LatencyStats(
            count=self.requests, mean=mean, p50=p50, p95=p95, p99=p99
        )


class ServiceMetrics:
    """Thread-safe registry of per-endpoint metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: dict[str, _EndpointMetrics] = {}

    def observe(
        self,
        endpoint: str,
        seconds: float,
        error: bool = False,
        cache_hit: bool = False,
    ) -> None:
        """Record one request against ``endpoint``."""
        with self._lock:
            metrics = self._endpoints.get(endpoint)
            if metrics is None:
                metrics = self._endpoints[endpoint] = _EndpointMetrics()
            metrics.observe(seconds, error, cache_hit)

    def endpoint_names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._endpoints))

    def snapshot(self) -> dict[str, Any]:
        """All endpoints' counters and latency summaries, JSON-ready."""
        with self._lock:
            items = [
                (name, metrics.requests, metrics.errors, metrics.cache_hits,
                 metrics.latency())
                for name, metrics in sorted(self._endpoints.items())
            ]
        body: dict[str, Any] = {}
        for name, requests, errors, cache_hits, latency in items:
            body[name] = {
                "requests": requests,
                "errors": errors,
                "cache_hits": cache_hits,
                "latency": latency.as_dict(),
            }
        return body

    def render_summary(self) -> str:
        """Aligned text table of the snapshot (the ``--stats`` summary)."""
        snapshot = self.snapshot()
        if not snapshot:
            return "(no requests served)"
        headers = [
            "endpoint", "requests", "errors", "cache_hits",
            "p50_ms", "p95_ms", "p99_ms",
        ]
        rows = [
            [
                name,
                str(stats["requests"]),
                str(stats["errors"]),
                str(stats["cache_hits"]),
                f"{stats['latency']['p50_ms']:.3f}",
                f"{stats['latency']['p95_ms']:.3f}",
                f"{stats['latency']['p99_ms']:.3f}",
            ]
            for name, stats in snapshot.items()
        ]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows))
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(header.ljust(width) for header, width in zip(headers, widths))
        ]
        for row in rows:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)
