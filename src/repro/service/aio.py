"""Asyncio HTTP/1.1 transport: the event-loop front door.

The layered serving stack, top to bottom:

1. **transport** (this module) — ``asyncio.start_server``, an HTTP/1.1
   parser with keep-alive and pipelining, Content-Length enforcement
   (shared with the threaded transport via :mod:`repro.service.wire`),
   a connection limit, and graceful drain: stop accepting, finish every
   in-flight request, turn new requests away with ``503 draining``.
2. **admission** (:mod:`repro.service.admission`) — bounded per-endpoint
   queues; sheds load with ``429 rate_limited`` / ``503 overloaded``.
3. **coalescing** (:mod:`repro.service.coalesce`) — N identical
   in-flight cacheable requests run the handler once.
4. **dispatch** (:class:`~repro.service.app.ServiceApp`) — the single
   sync core both transports call, unchanged.

The event loop only ever parses bytes and shuffles buffers. CPU-bound
handler work runs through ``loop.run_in_executor`` on a bounded thread
pool, so one slow ``/montecarlo`` cannot stall ``/healthz``. The lone
exception is the result-cache fast path: a clean cache hit is a lock
acquisition and a dict copy, cheaper served inline than a thread-pool
round trip (see :meth:`ServiceApp.dispatch_cached`).

Pipelining falls out of the read loop: requests on one connection are
parsed and answered strictly in order, so a client may write several
requests before reading any response and the responses come back in
request order, as HTTP/1.1 requires.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import json
import signal
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _REASON_PHRASES
from typing import Any
from urllib.parse import parse_qs

from .admission import AdmissionController, AdmissionLimits, AdmissionReject
from .app import (
    ROUTES,
    PlainTextResponse,
    ServiceApp,
    error_body,
    resolve_request_id,
)
from .metrics import REJECTED
from .wire import decode_body, frame_body

__all__ = [
    "AsyncServiceServer",
    "AsyncServerHandle",
    "create_async_server",
    "serve_async_in_thread",
]

#: Refuse request heads (request line + headers) beyond this size.
MAX_HEADER_BYTES = 32 * 1024
#: Concurrent TCP connections accepted before shedding with 503.
DEFAULT_MAX_CONNECTIONS = 1024
#: How long drain waits for in-flight requests before force-closing.
DEFAULT_DRAIN_TIMEOUT = 10.0


class _Hangup(Exception):
    """The peer closed the connection between requests (not an error)."""


class AsyncServiceServer:
    """One asyncio event loop serving a :class:`ServiceApp`.

    Args:
        app: the dispatch core (shared with the threaded transport).
        host/port: bind address; ``port=0`` picks a free port (see
            :attr:`url` after :meth:`start`).
        limits: admission knobs; ``None`` uses the defaults.
        max_connections: concurrent-connection ceiling; excess
            connections receive one ``503 connection_limit`` envelope
            and are closed.
        executor_workers: thread-pool size for CPU-bound dispatch;
            ``None`` uses the stdlib default (``min(32, cpus + 4)``).
        drain_timeout: seconds :meth:`drain` waits for in-flight
            requests before force-closing connections.
    """

    def __init__(
        self,
        app: ServiceApp,
        host: str = "127.0.0.1",
        port: int = 8080,
        limits: AdmissionLimits | None = None,
        max_connections: int = DEFAULT_MAX_CONNECTIONS,
        executor_workers: int | None = None,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        verbose: bool = False,
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.drain_timeout = drain_timeout
        self.verbose = verbose
        # The admission gauges/counters land in the app's registry so
        # /metrics exports them next to the request series.
        self.admission = AdmissionController(
            limits, registry=app.metrics.registry
        )
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="repro-aio"
        )
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._inflight = 0
        self._idle: asyncio.Event | None = None
        self._draining = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    def _log(self, message: str) -> None:
        if self.verbose:
            sys.stderr.write(f"repro-aio: {message}\n")

    async def start(self) -> None:
        """Bind the listening socket (resolves ``port=0`` to the real port)."""
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_HEADER_BYTES,
            # Survive connect bursts: the default backlog (100) drops
            # connections when hundreds of load-test clients dial at once.
            backlog=max(128, self.max_connections),
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._log(f"listening on {self.url}")

    async def run(
        self,
        install_signal_handlers: bool = True,
        on_started: Any = None,
    ) -> bool:
        """Start, serve until SIGINT/SIGTERM, then drain.

        Args:
            install_signal_handlers: bind SIGINT/SIGTERM to graceful
                drain (skipped where the loop does not support it).
            on_started: optional zero-arg callback invoked once the
                socket is bound (the CLI prints the serving banner).

        Returns:
            True when the drain finished every in-flight request within
            ``drain_timeout`` (a *clean* drain), False otherwise.
        """
        await self.start()
        if on_started is not None:
            on_started()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        if install_signal_handlers:
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, stop.set)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError):
                    pass
        try:
            await stop.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
        return await self.drain()

    async def drain(self) -> bool:
        """Graceful shutdown: finish in-flight work, refuse new work.

        Stops accepting connections, answers any new request arriving on
        an existing keep-alive connection with ``503 draining`` plus
        ``Connection: close``, waits up to ``drain_timeout`` for
        in-flight requests, then closes whatever remains.
        """
        self._draining = True
        self._log("draining: listener closed, finishing in-flight requests")
        if self._server is not None:
            self._server.close()
        clean = True
        if self._idle is not None and self._inflight:
            try:
                await asyncio.wait_for(
                    self._idle.wait(), timeout=self.drain_timeout
                )
            except asyncio.TimeoutError:
                clean = False
                self._log(
                    f"drain timeout: {self._inflight} requests still in "
                    "flight; force-closing"
                )
        # Unblock idle keep-alive connections parked in readuntil().
        for writer in list(self._connections):
            writer.close()
        if self._conn_tasks:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(*self._conn_tasks, return_exceptions=True),
                    timeout=5.0,
                )
        if self._server is not None:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
        self._executor.shutdown(wait=clean)
        self._log(f"drain complete (clean={clean})")
        return clean

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._connections.add(writer)
        try:
            if len(self._connections) > self.max_connections:
                self.app.metrics.registry.counter(
                    REJECTED, endpoint="(server)", reason="connection_limit"
                ).incr()
                await self._respond(
                    writer,
                    503,
                    error_body(
                        503,
                        "connection_limit",
                        f"server is at its {self.max_connections}-connection "
                        "limit",
                    ),
                    resolve_request_id(None),
                    close=True,
                )
                return
            await self._serve_connection(reader, writer)
        except (ConnectionResetError, BrokenPipeError, TimeoutError, OSError):
            pass
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                method, target, version, headers = await self._read_head(
                    reader
                )
            except _Hangup:
                return
            except asyncio.LimitOverrunError:
                await self._respond(
                    writer,
                    400,
                    error_body(
                        400,
                        "header_too_large",
                        f"request head exceeds {MAX_HEADER_BYTES} bytes",
                    ),
                    resolve_request_id(None),
                    close=True,
                )
                return
            except ValueError as error:
                await self._respond(
                    writer,
                    400,
                    error_body(400, "invalid_request", str(error)),
                    resolve_request_id(None),
                    close=True,
                )
                return
            request_id = resolve_request_id(headers.get("x-request-id"))
            length, frame_error = frame_body(
                method,
                headers.get("content-length"),
                headers.get("transfer-encoding"),
            )
            if frame_error is not None:
                # Body boundary unknown: answer, then close.
                frame_error["request_id"] = request_id
                await self._respond(
                    writer,
                    frame_error["status"],
                    frame_error,
                    request_id,
                    close=True,
                )
                return
            payload: Any = None
            if length:
                try:
                    raw = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    return
                payload, decode_error = decode_body(raw)
                if decode_error is not None:
                    # The body was consumed, so keep-alive is safe.
                    decode_error["request_id"] = request_id
                    await self._respond(
                        writer, 400, decode_error, request_id, close=False
                    )
                    continue
            if self._draining:
                body = error_body(
                    503, "draining", "server is draining; retry elsewhere"
                )
                body["request_id"] = request_id
                await self._respond(writer, 503, body, request_id, close=True)
                return
            status, body = await self._process(
                method, target, payload, request_id
            )
            close = (
                headers.get("connection", "").lower() == "close"
                or version != "HTTP/1.1"
                or self._draining
            )
            await self._respond(writer, status, body, request_id, close=close)
            if close:
                return

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, str, dict[str, str]]:
        """Parse one request head; raises ValueError on malformed input."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                raise _Hangup from None
            raise ValueError("truncated request head") from None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise ValueError(f"malformed request line: {lines[0]!r}")
        method, target, version = parts
        if not version.startswith("HTTP/"):
            raise ValueError(f"malformed HTTP version: {version!r}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise ValueError(f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        return method, target, version, headers

    # ------------------------------------------------------------------
    # request processing
    # ------------------------------------------------------------------
    async def _process(
        self, method: str, target: str, payload: Any, request_id: str
    ) -> tuple[int, dict[str, Any] | PlainTextResponse]:
        path, _, query = target.partition("?")
        if payload is None and query:
            # GET endpoints take parameters from the query string
            # (e.g. /metrics?format=prometheus); last value wins.
            payload = {
                key: values[-1] for key, values in parse_qs(query).items()
            }
        # Cache hits are served inline on the loop: cheaper than the
        # executor round trip, and admission only guards *compute*.
        fast = self.app.dispatch_cached(
            method, path, payload, request_id=request_id
        )
        if fast is not None:
            return fast
        if self._idle is not None:
            self._inflight += 1
            self._idle.clear()
        try:
            return await self._admit_and_dispatch(
                method, path, payload, request_id
            )
        finally:
            if self._idle is not None:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.set()

    async def _admit_and_dispatch(
        self, method: str, path: str, payload: Any, request_id: str
    ) -> tuple[int, dict[str, Any] | PlainTextResponse]:
        loop = asyncio.get_running_loop()
        dispatch = functools.partial(
            self.app.dispatch, method, path, payload, request_id
        )
        if path not in ROUTES:
            # Unknown paths skip admission: dispatch answers 404 without
            # touching a handler, and the rejection counters should not
            # invent endpoints that do not exist.
            return await loop.run_in_executor(self._executor, dispatch)
        endpoint = path.lstrip("/")
        try:
            await self.admission.acquire(endpoint)
        except AdmissionReject as rejection:
            body = error_body(rejection.status, rejection.code, str(rejection))
            body["request_id"] = request_id
            return rejection.status, body
        try:
            return await loop.run_in_executor(self._executor, dispatch)
        finally:
            self.admission.release(endpoint)

    # ------------------------------------------------------------------
    # response encoding
    # ------------------------------------------------------------------
    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: dict[str, Any] | PlainTextResponse,
        request_id: str | None,
        close: bool,
    ) -> None:
        if isinstance(body, PlainTextResponse):
            encoded = body.text.encode("utf-8")
            content_type = body.content_type
        else:
            encoded = json.dumps(body).encode("utf-8")
            content_type = "application/json"
        reason = _REASON_PHRASES.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
        ]
        if request_id is not None:
            head.append(f"X-Request-Id: {request_id}")
        head.append(f"Content-Length: {len(encoded)}")
        head.append(f"Connection: {'close' if close else 'keep-alive'}")
        writer.write(
            "\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + encoded
        )
        await writer.drain()


def create_async_server(
    app: ServiceApp,
    host: str = "127.0.0.1",
    port: int = 8080,
    **kwargs: Any,
) -> AsyncServiceServer:
    """Construct (without binding) an :class:`AsyncServiceServer`."""
    return AsyncServiceServer(app, host=host, port=port, **kwargs)


class AsyncServerHandle:
    """An async server running on a dedicated event-loop thread.

    The async twin of :func:`~repro.service.server.serve_in_thread`,
    for tests, benchmarks and embedding: the caller's thread stays
    synchronous, ``stop()`` triggers a graceful drain and reports
    whether it was clean.
    """

    def __init__(self, server: AsyncServiceServer) -> None:
        self.server = server
        self.drained_clean: bool | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-aio-serve", daemon=True
        )

    @property
    def url(self) -> str:
        return self.server.url

    def start(self, timeout: float = 10.0) -> "AsyncServerHandle":
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("async server failed to start in time")
        if self._error is not None:
            raise self._error
        return self

    def stop(self, timeout: float = 30.0) -> bool:
        """Drain and stop; returns True when the drain was clean."""
        if self._loop is not None and self._stop is not None:
            loop, stop = self._loop, self._stop
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(stop.set)
        self._thread.join(timeout)
        return bool(self.drained_clean)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 - surfaced in start()
            self._error = error
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as error:  # noqa: BLE001 - surfaced in start()
            self._error = error
            self._started.set()
            return
        self._started.set()
        await self._stop.wait()
        self.drained_clean = await self.server.drain()


def serve_async_in_thread(
    app: ServiceApp,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs: Any,
) -> AsyncServerHandle:
    """Boot an async server on a background thread and wait until bound."""
    return AsyncServerHandle(
        AsyncServiceServer(app, host=host, port=port, **kwargs)
    ).start()
