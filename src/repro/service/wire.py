"""Wire-level HTTP rules shared by both transports.

The threaded server (:mod:`repro.service.server`) and the asyncio
transport (:mod:`repro.service.aio`) have very different I/O models, but
the *protocol decisions* — how a request body is framed, which framing
mistakes produce which structured envelope — must be byte-identical
between them, because the async transport is validated by golden
equivalence against the threaded one. Those decisions live here, as pure
functions over header values, so neither transport can drift.

Framing rules (:func:`frame_body`):

* ``Transfer-Encoding`` present → ``411 length_required`` (chunked
  bodies are not supported; this stack only speaks ``Content-Length``).
* ``POST`` without ``Content-Length`` → ``411 length_required``. HTTP
  cannot distinguish "no body" from "body with unknown length" without
  the header, and guessing "empty" silently drops real payloads.
* Malformed ``Content-Length`` → ``400 invalid_request``.
* ``Content-Length`` beyond :data:`MAX_BODY_BYTES` →
  ``400 payload_too_large``, refused before reading a byte.

After any framing error the connection must close: the body boundary is
unknown, so the next request cannot be parsed.
"""

from __future__ import annotations

import json
from typing import Any

from .app import error_body

__all__ = [
    "MAX_BODY_BYTES",
    "decode_body",
    "frame_body",
]

#: Refuse request bodies beyond this size (1 MiB) before reading them.
MAX_BODY_BYTES = 1 << 20


def frame_body(
    method: str,
    length_header: str | None,
    transfer_encoding: str | None = None,
) -> tuple[int, dict[str, Any] | None]:
    """How many body bytes to read, or the framing-error envelope.

    Returns:
        ``(length, None)`` when the body is well-framed (``length`` may
        be 0), or ``(0, envelope)`` when the request must be rejected —
        in which case the transport must also close the connection.
    """
    if transfer_encoding is not None:
        return 0, error_body(
            411,
            "length_required",
            "chunked transfer encoding is not supported; "
            "send a Content-Length header",
        )
    if length_header is None:
        if method == "POST":
            return 0, error_body(
                411,
                "length_required",
                "POST requires a Content-Length header",
            )
        return 0, None
    try:
        length = int(length_header)
    except ValueError:
        return 0, error_body(
            400, "invalid_request", "malformed Content-Length"
        )
    if length <= 0:
        return 0, None
    if length > MAX_BODY_BYTES:
        return 0, error_body(
            400,
            "payload_too_large",
            f"request body exceeds {MAX_BODY_BYTES} bytes",
        )
    return length, None


def decode_body(raw: bytes) -> tuple[Any, dict[str, Any] | None]:
    """The decoded JSON payload, or the ``invalid_json`` envelope."""
    try:
        return json.loads(raw), None
    except json.JSONDecodeError as error:
        return None, error_body(
            400, "invalid_json", f"request body is not valid JSON: {error}"
        )
