"""The service application: routing, caching, metrics and error envelopes.

:class:`ServiceApp` maps ``(method, path, payload)`` to a
``(status, body)`` pair. It owns the shared :class:`ResultCache` and
:class:`ServiceMetrics`; transports (the stdlib HTTP server, tests, or a
future batching front-end) only ever call :meth:`ServiceApp.dispatch`.

Error responses use one structured envelope::

    {"error": {"code": "unknown_ingredient", "message": "..."},
     "status": 404, "request_id": "..."}

Every response — success or failure, cached or fresh — carries a
``request_id``: the validated ``X-Request-Id`` the client supplied, or a
generated one. The same id is bound to the dispatch span and to every
structured log line emitted while the request is being served, so one
grep correlates a client-reported failure across logs, trace and body.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import re
import time
import traceback
from typing import Any, Callable

from ..datamodel import ReproError
from ..obs import NOOP_SPAN, bound_log_fields, get_registry, get_tracer, span

#: The tracer singleton, bound once: ``configure_tracing`` mutates its
#: ``enabled`` flag in place, so dispatch can check one attribute.
_TRACER = get_tracer()
from .cache import MISSING, ResultCache, canonical_key
from .coalesce import RequestCoalescer
from .handlers import QueryService, RequestError
from .metrics import ServiceMetrics


@dataclasses.dataclass(frozen=True)
class Route:
    """One endpoint: its method, handler name and cache policy.

    Attributes:
        method: HTTP method (``GET`` or ``POST``).
        handler: ``QueryService`` method name serving the route.
        cacheable: whether responses may be served from the result cache
            (introspection endpoints must always be recomputed).
    """

    method: str
    handler: str
    cacheable: bool


#: path -> route table. POST endpoints take a JSON body; GET endpoints
#: ignore any body.
ROUTES: dict[str, Route] = {
    "/healthz": Route("GET", "handle_healthz", cacheable=False),
    "/readyz": Route("GET", "handle_readyz", cacheable=False),
    "/metrics": Route("GET", "handle_metrics", cacheable=False),
    "/debug/profile": Route("GET", "handle_debug_profile", cacheable=False),
    "/regions": Route("GET", "handle_regions", cacheable=True),
    "/stats": Route("GET", "handle_stats", cacheable=True),
    "/alias": Route("POST", "handle_alias", cacheable=True),
    "/score": Route("POST", "handle_score", cacheable=True),
    "/classify": Route("POST", "handle_classify", cacheable=True),
    "/pairings": Route("POST", "handle_pairings", cacheable=True),
    "/similar": Route("POST", "handle_similar", cacheable=True),
    "/complete": Route("POST", "handle_complete", cacheable=True),
    "/recommend": Route("POST", "handle_recommend", cacheable=True),
    "/sql": Route("POST", "handle_sql", cacheable=True),
    "/montecarlo": Route("POST", "handle_montecarlo", cacheable=True),
}


def error_body(status: int, code: str, message: str) -> dict[str, Any]:
    """The structured error envelope every failure path uses."""
    return {"error": {"code": code, "message": message}, "status": status}


#: Client-supplied request ids must be short and log-safe; anything else
#: is discarded and replaced (never echoed — that would be log injection).
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,128}$")

#: Generated ids: one random process prefix plus a counter. Two orders
#: of magnitude cheaper than uuid4 — this runs on every request even
#: with all observability off.
_RID_PREFIX = f"{os.getpid():x}-{os.urandom(4).hex()}"
_RID_COUNTER = itertools.count(1)


def generate_request_id() -> str:
    """A fresh process-unique request id (``<pid>-<rand>-<seq>``)."""
    return f"{_RID_PREFIX}-{next(_RID_COUNTER):06x}"


def resolve_request_id(supplied: Any) -> str:
    """The id to serve a request under: the client's when valid, else new.

    Idempotent — resolving an already-resolved id returns it unchanged,
    so transport and app layers can both call it safely.
    """
    if isinstance(supplied, str) and _REQUEST_ID_RE.match(supplied):
        return supplied
    return generate_request_id()


@dataclasses.dataclass(frozen=True)
class PlainTextResponse:
    """A non-JSON response body (Prometheus exposition text).

    Transports check for this type and send ``text`` verbatim with
    ``content_type`` instead of JSON-encoding the body.
    """

    text: str
    content_type: str = "text/plain; version=0.0.4; charset=utf-8"


class ServiceApp:
    """Dispatches requests to a :class:`QueryService` with caching/metrics."""

    def __init__(
        self,
        service: QueryService,
        cache: ResultCache | None = None,
        metrics: ServiceMetrics | None = None,
        clock: Callable[[], float] = time.perf_counter,
        coalescer: RequestCoalescer | None = None,
    ) -> None:
        self.service = service
        self.cache = cache if cache is not None else ResultCache()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._clock = clock
        # The coalescer registers its counter in this app's registry so
        # /metrics exports it alongside the request series.
        self.coalescer = (
            coalescer
            if coalescer is not None
            else RequestCoalescer(self.metrics.registry)
        )

    def dispatch(
        self,
        method: str,
        path: str,
        payload: Any = None,
        request_id: str | None = None,
        _trace: Any = NOOP_SPAN,
    ) -> tuple[int, dict[str, Any] | PlainTextResponse]:
        """Serve one request; never raises.

        Returns:
            ``(http status, JSON-ready body)`` — or, for
            ``/metrics?format=prometheus``, a :class:`PlainTextResponse`.
            Dict bodies always carry the request's ``request_id``
            (supplied and valid, or generated here).
        """
        # With tracing disabled (the default) this costs two identity
        # checks — no span object, no kwargs dict, no extra call frame.
        # When enabled, open the dispatch span and re-enter with it bound.
        traced = _trace is not NOOP_SPAN
        if not traced and _TRACER.enabled:
            with span("service.dispatch", method=method, path=path) as open_span:
                return self.dispatch(
                    method, path, payload, request_id, _trace=open_span
                )
        rid = resolve_request_id(request_id)
        if traced:
            _trace.set("request_id", rid)
        with bound_log_fields(request_id=rid):
            status, body = self._dispatch_request(
                method, path, payload, _trace, traced
            )
        if isinstance(body, dict):
            # Shallow copy: the cache holds the id-free body, every
            # response gets its own correlation id.
            body = {**body, "request_id": rid}
        return status, body

    def _dispatch_request(
        self,
        method: str,
        path: str,
        payload: Any,
        _trace: Any,
        traced: bool,
    ) -> tuple[int, dict[str, Any] | PlainTextResponse]:
        trace = _trace
        started = self._clock()
        route = ROUTES.get(path)
        if route is None:
            status, body = 404, error_body(
                404, "unknown_path", f"no such endpoint: {path}"
            )
            if traced:
                trace.set("status", status)
            self.metrics.observe(
                "(unknown)", self._clock() - started, error=True
            )
            return status, body
        endpoint = path.lstrip("/")
        if traced:
            trace.set("endpoint", endpoint)
        if method != route.method:
            status, body = 405, error_body(
                405,
                "method_not_allowed",
                f"{path} requires {route.method}, got {method}",
            )
            if traced:
                trace.set("status", status)
            self.metrics.observe(
                endpoint, self._clock() - started, error=True
            )
            return status, body

        cache_hit = False
        coalesced = False
        body: dict[str, Any] | PlainTextResponse
        try:
            if route.handler == "handle_metrics":
                status, body = self._dispatch_metrics(payload)
            elif route.cacheable:
                key = canonical_key(endpoint, payload)
                cached = self.cache.get(key)
                if cached is not MISSING:
                    cache_hit = True
                    status, body = 200, cached
                else:
                    # Concurrent identical requests coalesce: one leader
                    # runs the handler (and warms the cache), followers
                    # receive the leader's completed (status, body).
                    (status, body), leader = self.coalescer.run(
                        key,
                        lambda: self._compute_cacheable(
                            route, endpoint, key, payload
                        ),
                        endpoint=endpoint,
                    )
                    coalesced = not leader
            else:
                status, body = self._invoke(route, endpoint, payload)
                if (
                    route.handler == "handle_readyz"
                    and isinstance(body, dict)
                    and not body.get("ready", True)
                ):
                    # Not an error envelope: the body carries the full
                    # per-stage state; 503 tells load balancers to wait.
                    status = 503
        except Exception as error:  # noqa: BLE001 - must not die
            traceback.print_exc()
            status, body = 500, error_body(
                500, "internal_error", f"{type(error).__name__}: {error}"
            )
        if traced:
            trace.set("status", status)
            trace.set("cache_hit", cache_hit)
            trace.set("coalesced", coalesced)
        self.metrics.observe(
            endpoint,
            self._clock() - started,
            error=status >= 400,
            cache_hit=cache_hit,
        )
        return status, body

    def _invoke(
        self, route: Route, endpoint: str, payload: Any
    ) -> tuple[int, dict[str, Any]]:
        """Run one handler with error-envelope mapping; never raises.

        This is the single compute core both the cacheable (coalesced)
        and non-cacheable paths share; the handler-calls counter makes
        actual compute distinguishable from cache/coalesce traffic.
        """
        self.metrics.handler_call(endpoint)
        try:
            return 200, getattr(self.service, route.handler)(payload)
        except RequestError as error:
            return error.status, error_body(
                error.status, error.code, str(error)
            )
        except ReproError as error:
            return 400, error_body(
                400, type(error).__name__.lower(), str(error)
            )
        except Exception as error:  # noqa: BLE001 - must not die
            traceback.print_exc()
            return 500, error_body(
                500, "internal_error", f"{type(error).__name__}: {error}"
            )

    def _compute_cacheable(
        self, route: Route, endpoint: str, key: str, payload: Any
    ) -> tuple[int, dict[str, Any]]:
        """The leader's computation: invoke, then warm the cache."""
        status, body = self._invoke(route, endpoint, payload)
        if status == 200:
            self.cache.put(key, body)
        return status, body

    def dispatch_cached(
        self,
        method: str,
        path: str,
        payload: Any = None,
        request_id: str | None = None,
    ) -> tuple[int, dict[str, Any]] | None:
        """Serve a request *only* if it is a clean result-cache hit.

        The asyncio transport probes this on the event loop before
        paying the executor handoff: a hit costs one lock acquisition
        and a dict copy, so serving it inline is faster than descending
        into the thread pool. Anything else — uncached, non-cacheable,
        wrong method, tracing enabled (spans must stay complete) —
        returns ``None`` and the caller falls back to full dispatch.
        """
        if _TRACER.enabled:
            return None
        route = ROUTES.get(path)
        if route is None or not route.cacheable or method != route.method:
            return None
        started = self._clock()
        endpoint = path.lstrip("/")
        cached = self.cache.get(canonical_key(endpoint, payload))
        if cached is MISSING:
            return None
        rid = resolve_request_id(request_id)
        self.metrics.observe(
            endpoint, self._clock() - started, cache_hit=True
        )
        return 200, {**cached, "request_id": rid}

    def _dispatch_metrics(
        self, payload: Any
    ) -> tuple[int, dict[str, Any] | PlainTextResponse]:
        """Serve ``/metrics``: JSON by default, ``?format=prometheus`` text."""
        fmt = payload.get("format") if isinstance(payload, dict) else None
        if fmt in (None, "json"):
            return 200, self._metrics_body()
        if fmt == "prometheus":
            return 200, PlainTextResponse(self._prometheus_body())
        return 400, error_body(
            400,
            "invalid_field",
            f"unknown metrics format {fmt!r} (expected json or prometheus)",
        )

    def _metrics_body(self) -> dict[str, Any]:
        return {
            "endpoints": self.metrics.snapshot(),
            "serving": self.metrics.serving_snapshot(),
            "cache": self.cache.stats().as_dict(),
        }

    def _prometheus_body(self) -> str:
        """Exposition text: this app's series, cache gauges, global registry."""
        parts = [self.metrics.render_prometheus()]
        cache = self.cache.stats()
        cache_lines = [
            "# TYPE repro_cache_entries gauge",
            f"repro_cache_entries {cache.size}",
            "# TYPE repro_cache_hits gauge",
            f"repro_cache_hits {cache.hits}",
            "# TYPE repro_cache_misses gauge",
            f"repro_cache_misses {cache.misses}",
            "# TYPE repro_cache_evictions gauge",
            f"repro_cache_evictions {cache.evictions}",
            "# TYPE repro_cache_hit_rate gauge",
            f"repro_cache_hit_rate {round(cache.hit_rate, 4)}",
        ]
        parts.append("\n".join(cache_lines) + "\n")
        global_registry = get_registry()
        if global_registry is not self.metrics.registry:
            parts.append(global_registry.render_prometheus())
        return "".join(part for part in parts if part)
