"""The service application: routing, caching, metrics and error envelopes.

:class:`ServiceApp` maps ``(method, path, payload)`` to a
``(status, body)`` pair. It owns the shared :class:`ResultCache` and
:class:`ServiceMetrics`; transports (the stdlib HTTP server, tests, or a
future batching front-end) only ever call :meth:`ServiceApp.dispatch`.

Error responses use one structured envelope::

    {"error": {"code": "unknown_ingredient", "message": "..."},
     "status": 404}
"""

from __future__ import annotations

import dataclasses
import time
import traceback
from typing import Any, Callable

from ..datamodel import ReproError
from .cache import MISSING, ResultCache, canonical_key
from .handlers import QueryService, RequestError
from .metrics import ServiceMetrics


@dataclasses.dataclass(frozen=True)
class Route:
    """One endpoint: its method, handler name and cache policy.

    Attributes:
        method: HTTP method (``GET`` or ``POST``).
        handler: ``QueryService`` method name serving the route.
        cacheable: whether responses may be served from the result cache
            (introspection endpoints must always be recomputed).
    """

    method: str
    handler: str
    cacheable: bool


#: path -> route table. POST endpoints take a JSON body; GET endpoints
#: ignore any body.
ROUTES: dict[str, Route] = {
    "/healthz": Route("GET", "handle_healthz", cacheable=False),
    "/metrics": Route("GET", "handle_metrics", cacheable=False),
    "/regions": Route("GET", "handle_regions", cacheable=True),
    "/stats": Route("GET", "handle_stats", cacheable=True),
    "/alias": Route("POST", "handle_alias", cacheable=True),
    "/score": Route("POST", "handle_score", cacheable=True),
    "/classify": Route("POST", "handle_classify", cacheable=True),
    "/pairings": Route("POST", "handle_pairings", cacheable=True),
    "/sql": Route("POST", "handle_sql", cacheable=True),
}


def error_body(status: int, code: str, message: str) -> dict[str, Any]:
    """The structured error envelope every failure path uses."""
    return {"error": {"code": code, "message": message}, "status": status}


class ServiceApp:
    """Dispatches requests to a :class:`QueryService` with caching/metrics."""

    def __init__(
        self,
        service: QueryService,
        cache: ResultCache | None = None,
        metrics: ServiceMetrics | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.service = service
        self.cache = cache if cache is not None else ResultCache()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._clock = clock

    def dispatch(
        self, method: str, path: str, payload: Any = None
    ) -> tuple[int, dict[str, Any]]:
        """Serve one request; never raises.

        Returns:
            ``(http status, JSON-ready body)``.
        """
        started = self._clock()
        route = ROUTES.get(path)
        if route is None:
            status, body = 404, error_body(
                404, "unknown_path", f"no such endpoint: {path}"
            )
            self.metrics.observe("(unknown)", self._clock() - started, error=True)
            return status, body
        endpoint = path.lstrip("/")
        if method != route.method:
            status, body = 405, error_body(
                405,
                "method_not_allowed",
                f"{path} requires {route.method}, got {method}",
            )
            self.metrics.observe(endpoint, self._clock() - started, error=True)
            return status, body

        cache_hit = False
        try:
            if route.handler == "handle_metrics":
                status, body = 200, self._metrics_body()
            elif route.cacheable:
                key = canonical_key(endpoint, payload)
                cached = self.cache.get(key)
                if cached is not MISSING:
                    cache_hit = True
                    status, body = 200, cached
                else:
                    body = getattr(self.service, route.handler)(payload)
                    self.cache.put(key, body)
                    status = 200
            else:
                status, body = 200, getattr(self.service, route.handler)(payload)
        except RequestError as error:
            status, body = error.status, error_body(
                error.status, error.code, str(error)
            )
        except ReproError as error:
            status, body = 400, error_body(
                400, type(error).__name__.lower(), str(error)
            )
        except Exception as error:  # noqa: BLE001 - the server must not die
            traceback.print_exc()
            status, body = 500, error_body(
                500, "internal_error", f"{type(error).__name__}: {error}"
            )
        self.metrics.observe(
            endpoint,
            self._clock() - started,
            error=status >= 400,
            cache_hit=cache_hit,
        )
        return status, body

    def _metrics_body(self) -> dict[str, Any]:
        return {
            "endpoints": self.metrics.snapshot(),
            "cache": self.cache.stats().as_dict(),
        }
