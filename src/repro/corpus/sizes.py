"""Recipe-size sampling.

Fig 3a of the paper shows a bounded, thin-tailed recipe size distribution
with an average of nine ingredients per recipe — "neither too simple nor
overloaded". A shifted, truncated Poisson has exactly this shape: the
support starts at :data:`MIN_RECIPE_SIZE`, the tail decays super-
exponentially, and the mean is a single tunable parameter.
"""

from __future__ import annotations

import numpy as np

#: Smallest generated recipe (a pair is the smallest pairable recipe; we
#: keep a margin so size-2 recipes stay rare, as in real corpora).
MIN_RECIPE_SIZE = 3

#: Hard upper bound, the "overloaded recipe" cutoff.
MAX_RECIPE_SIZE = 25


def sample_recipe_sizes(
    rng: np.random.Generator, count: int, mean_size: float
) -> np.ndarray:
    """Draw ``count`` recipe sizes with the target mean.

    Sizes are ``MIN_RECIPE_SIZE + Poisson(mean_size - MIN_RECIPE_SIZE)``,
    clipped to ``MAX_RECIPE_SIZE``. Clipping moves the realised mean by
    well under 1% for the means used here (8–10).

    Raises:
        ValueError: if ``mean_size`` is not inside the supported range.
    """
    if not MIN_RECIPE_SIZE < mean_size < MAX_RECIPE_SIZE:
        raise ValueError(
            f"mean_size must be in ({MIN_RECIPE_SIZE}, {MAX_RECIPE_SIZE}), "
            f"got {mean_size}"
        )
    sizes = MIN_RECIPE_SIZE + rng.poisson(
        mean_size - MIN_RECIPE_SIZE, size=count
    )
    return np.clip(sizes, MIN_RECIPE_SIZE, MAX_RECIPE_SIZE)
