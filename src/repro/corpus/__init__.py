"""Synthetic recipe-corpus generation (the scraped-data substitute).

Generates raw, noisy recipe records for the paper's 22 regions (plus the
four WORLD-only mini-regions) with the published recipe counts, unique
ingredient counts, size distribution, popularity scaling and per-region
food-pairing character.
"""

from .assembler import RecipeAssembler, overlap_matrix
from .generator import (
    DEFAULT_SEED,
    SOURCE_TOTALS,
    CorpusGenerator,
    GeneratedCorpus,
    generate_default_corpus,
)
from .pantry import HEAD_SIZE, RegionPantry, build_pantry, zipf_weights
from .profiles import (
    BASE_CATEGORY_WEIGHTS,
    REGION_GENERATOR_PROFILES,
    WORLD_ONLY_PROFILES,
    RegionGeneratorProfile,
)
from .renderer import PhraseRenderer, pluralize
from .sizes import MAX_RECIPE_SIZE, MIN_RECIPE_SIZE, sample_recipe_sizes

__all__ = [
    "RecipeAssembler",
    "overlap_matrix",
    "DEFAULT_SEED",
    "SOURCE_TOTALS",
    "CorpusGenerator",
    "GeneratedCorpus",
    "generate_default_corpus",
    "HEAD_SIZE",
    "RegionPantry",
    "build_pantry",
    "zipf_weights",
    "BASE_CATEGORY_WEIGHTS",
    "REGION_GENERATOR_PROFILES",
    "WORLD_ONLY_PROFILES",
    "RegionGeneratorProfile",
    "PhraseRenderer",
    "pluralize",
    "MAX_RECIPE_SIZE",
    "MIN_RECIPE_SIZE",
    "sample_recipe_sizes",
]
