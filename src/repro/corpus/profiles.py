"""Generator profiles for the 22 regions (plus the WORLD-only mini-regions).

The synthetic corpus must reproduce the paper's published *shape*:

* Table 1 — recipe and unique-ingredient counts per region (exact),
* Fig 2 — category-composition emphasis (France/British Isles/Scandinavia
  dairy-forward; Indian Subcontinent/Africa/Middle East/Caribbean
  spice-forward),
* Fig 3 — recipe sizes (mean ≈ 9) and Zipf-like ingredient popularity,
* Fig 4 — the sign and rough ordering of food-pairing Z-scores: 16 regions
  uniform (positive), 6 contrasting (negative),
* Fig 5 — culinarily plausible top-contributing ingredients.

Each :class:`RegionGeneratorProfile` encodes how its cuisine's popularity
head relates to the flavor-family structure of the catalog:

* *uniform* regions concentrate their most popular ingredients in one or
  two flavor families (``signature_families``), so popularity-weighted
  ingredient pairs share many molecules;
* *contrasting* regions spread their head across many families
  (``spread_head=True``), so popular pairs share fewer molecules than an
  average pantry pair.

``pairing_bias`` additionally tilts in-recipe ingredient choice toward
(positive) or away from (negative) flavor overlap with the ingredients
already in the recipe — the residual the frequency-preserving null model
cannot explain.
"""

from __future__ import annotations

import dataclasses

from ..datamodel import Category

#: Baseline category attractiveness, shared by all regions. Tuned so the
#: WORLD aggregate of Fig 2 leads with Vegetable, Spice, Dairy, Herb,
#: Plant, Meat, Fruit (Section II.A).
BASE_CATEGORY_WEIGHTS: dict[Category, float] = {
    Category.VEGETABLE: 2.00,
    Category.SPICE: 1.10,
    Category.DAIRY: 1.30,
    Category.HERB: 1.25,
    Category.PLANT: 1.15,
    Category.MEAT: 1.35,
    Category.FRUIT: 0.95,
    Category.ADDITIVE: 0.90,
    Category.CEREAL: 0.80,
    Category.BAKERY: 0.70,
    Category.LEGUME: 0.70,
    Category.NUTS_AND_SEEDS: 0.70,
    Category.DISH: 0.40,
    Category.FISH: 0.60,
    Category.MAIZE: 0.50,
    Category.SEAFOOD: 0.50,
    Category.BEVERAGE_ALCOHOLIC: 0.50,
    Category.FUNGUS: 0.50,
    Category.BEVERAGE: 0.40,
    Category.ESSENTIAL_OIL: 0.15,
    Category.FLOWER: 0.15,
}


@dataclasses.dataclass(frozen=True, slots=True)
class RegionGeneratorProfile:
    """Everything the corpus generator needs to synthesise one cuisine.

    Attributes:
        code: region code (Table 1) or a WORLD-only region name.
        recipe_count: number of recipes to generate (Table 1).
        ingredient_count: unique ingredients the cuisine must use (Table 1).
        pairing_bias: in-recipe flavor-affinity tilt; positive = uniform
            pairing, negative = contrasting pairing.
        signature_ingredients: iconic ingredients pinned to the top
            popularity ranks, most-popular first.
        signature_families: flavor families the popularity head is drawn
            from (after the pinned signatures).
        spread_head: when True, head top-up maximises family diversity
            instead of drawing from ``signature_families``.
        baseline_families: for spread-head regions, families boosted in the
            pantry *tail*; they raise the uniform-random baseline overlap
            that the cuisine's contrasting head undercuts.
        category_multipliers: per-category emphasis applied on top of
            :data:`BASE_CATEGORY_WEIGHTS` (Fig 2 shape).
        mean_recipe_size: target mean ingredients per recipe (Fig 3a).
        zipf_exponent: popularity decay exponent (Fig 3b).
    """

    code: str
    recipe_count: int
    ingredient_count: int
    pairing_bias: float
    signature_ingredients: tuple[str, ...]
    signature_families: tuple[str, ...]
    spread_head: bool = False
    baseline_families: tuple[str, ...] = ()
    category_multipliers: dict[Category, float] = dataclasses.field(
        default_factory=dict
    )
    mean_recipe_size: float = 9.0
    zipf_exponent: float = 1.0

    def category_weight(self, category: Category) -> float:
        base = BASE_CATEGORY_WEIGHTS[category]
        return base * self.category_multipliers.get(category, 1.0)


_DAIRY_FORWARD = {Category.DAIRY: 2.2}
_SPICE_FORWARD = {Category.SPICE: 2.0}

#: Generator profiles for the paper's 22 regions, keyed by region code.
REGION_GENERATOR_PROFILES: dict[str, RegionGeneratorProfile] = {
    profile.code: profile
    for profile in (
        # ---- uniform (positive) regions, strongest bias first ----------
        RegionGeneratorProfile(
            code="ITA", recipe_count=7504, ingredient_count=452,
            pairing_bias=1.25,
            signature_ingredients=(
                "tomato", "basil", "olive oil", "garlic", "parmesan cheese",
                "oregano", "onion", "mozzarella cheese", "pasta", "rosemary",
                "thyme", "sun dried tomato", "zucchini", "parsley",
                "tomato paste",
            ),
            signature_families=("herb-terpene", "green-aldehyde"),
            mean_recipe_size=8.8,
        ),
        RegionGeneratorProfile(
            code="AFR", recipe_count=651, ingredient_count=303,
            pairing_bias=0.85,
            signature_ingredients=(
                "dried chili", "cumin", "coriander seed", "dried ginger",
                "cinnamon", "peanut", "tomato", "okra", "sweet potato",
                "plantain", "lamb", "berbere",
            ),
            signature_families=("warm-phenolic", "pungent-alkaloid"),
            category_multipliers=_SPICE_FORWARD,
            mean_recipe_size=9.2,
        ),
        RegionGeneratorProfile(
            code="CBN", recipe_count=1103, ingredient_count=340,
            pairing_bias=0.80,
            signature_ingredients=(
                "allspice", "habanero pepper", "thyme", "scallion",
                "coconut milk", "lime", "dried ginger", "rum", "plantain",
                "jerk seasoning", "cinnamon",
            ),
            signature_families=("warm-phenolic", "pungent-alkaloid"),
            category_multipliers=_SPICE_FORWARD,
            mean_recipe_size=9.3,
        ),
        RegionGeneratorProfile(
            code="GRC", recipe_count=934, ingredient_count=280,
            pairing_bias=0.75,
            signature_ingredients=(
                "olive oil", "oregano", "feta cheese", "lemon", "tomato",
                "eggplant", "mint", "dill", "yogurt", "cucumber", "parsley",
            ),
            signature_families=("herb-terpene", "green-aldehyde"),
            mean_recipe_size=8.9,
        ),
        RegionGeneratorProfile(
            code="ESP", recipe_count=816, ingredient_count=312,
            pairing_bias=0.70,
            signature_ingredients=(
                "olive oil", "paprika", "garlic", "saffron", "tomato",
                "chorizo", "sherry vinegar", "almond", "red bell pepper",
                "parsley",
            ),
            signature_families=("green-aldehyde", "warm-phenolic"),
            mean_recipe_size=8.7,
        ),
        RegionGeneratorProfile(
            code="USA", recipe_count=16118, ingredient_count=612,
            pairing_bias=0.68,
            signature_ingredients=(
                "butter", "sugar", "flour", "egg", "milk", "brown sugar",
                "vanilla", "cream", "cheddar cheese", "cinnamon",
                "baking powder", "chicken", "beef", "maple syrup",
            ),
            signature_families=("caramel-furanone", "buttery-diketone"),
            mean_recipe_size=9.1,
        ),
        RegionGeneratorProfile(
            code="INSC", recipe_count=4058, ingredient_count=378,
            pairing_bias=0.62,
            signature_ingredients=(
                "turmeric", "cumin", "coriander seed", "garam masala",
                "dried ginger", "green chili", "asafoetida", "fenugreek leaf",
                "ghee", "yogurt", "onion", "tomato", "cardamom", "clove",
                "cinnamon", "mustard seed",
            ),
            signature_families=("warm-phenolic", "pungent-alkaloid"),
            category_multipliers={Category.SPICE: 2.0, Category.MEAT: 0.6},
            mean_recipe_size=9.6,
        ),
        RegionGeneratorProfile(
            code="ME", recipe_count=993, ingredient_count=313,
            pairing_bias=0.58,
            signature_ingredients=(
                "cumin", "sumac", "olive oil", "parsley", "mint",
                "lemon juice", "chickpea", "za'atar", "cinnamon", "allspice",
                "tahini",
            ),
            signature_families=("warm-phenolic", "herb-terpene"),
            category_multipliers=_SPICE_FORWARD,
            mean_recipe_size=9.0,
        ),
        RegionGeneratorProfile(
            code="MEX", recipe_count=3138, ingredient_count=376,
            pairing_bias=0.55,
            signature_ingredients=(
                "jalapeno pepper", "cilantro", "lime", "tomato", "onion",
                "cumin", "ancho chili", "avocado", "tomatillo",
                "corn tortilla", "serrano pepper",
            ),
            signature_families=("pungent-alkaloid", "green-aldehyde"),
            mean_recipe_size=9.0,
        ),
        RegionGeneratorProfile(
            code="ANZ", recipe_count=494, ingredient_count=294,
            pairing_bias=0.55,
            signature_ingredients=(
                "butter", "golden syrup", "brown sugar", "cream", "sugar",
                "rolled oat", "lamb", "pumpkin", "kiwi",
            ),
            signature_families=("caramel-furanone", "buttery-diketone"),
            mean_recipe_size=8.6,
        ),
        RegionGeneratorProfile(
            code="SAM", recipe_count=310, ingredient_count=221,
            pairing_bias=0.45,
            signature_ingredients=(
                "corn", "black bean", "cilantro", "lime", "arbol chili",
                "quinoa", "beef", "cumin", "plantain",
            ),
            signature_families=("green-aldehyde", "legume-green"),
            mean_recipe_size=8.5,
        ),
        RegionGeneratorProfile(
            code="FRA", recipe_count=2703, ingredient_count=424,
            pairing_bias=0.42,
            signature_ingredients=(
                "butter", "cream", "white wine", "shallot", "thyme",
                "tarragon", "gruyere cheese", "brie cheese", "baguette",
                "dijon mustard", "creme fraiche",
            ),
            signature_families=("buttery-diketone", "dairy-lactone"),
            category_multipliers=_DAIRY_FORWARD,
            mean_recipe_size=9.2,
        ),
        RegionGeneratorProfile(
            code="THA", recipe_count=667, ingredient_count=265,
            pairing_bias=0.38,
            signature_ingredients=(
                "fish sauce", "lemongrass", "thai basil", "coconut milk",
                "lime", "galangal", "bird chili", "kaffir lime leaf",
                "cilantro", "palm sugar",
            ),
            signature_families=("citrus-terpene", "pungent-alkaloid"),
            mean_recipe_size=9.4,
        ),
        RegionGeneratorProfile(
            code="CHN", recipe_count=941, ingredient_count=302,
            pairing_bias=0.34,
            signature_ingredients=(
                "soy sauce", "scallion", "ginger", "garlic", "sesame oil",
                "rice", "shaoxing wine", "star anise", "szechuan pepper",
                "hoisin sauce",
            ),
            signature_families=("allium-sulfur", "pungent-alkaloid"),
            mean_recipe_size=8.8,
        ),
        RegionGeneratorProfile(
            code="SEA", recipe_count=611, ingredient_count=266,
            pairing_bias=0.30,
            signature_ingredients=(
                "garlic", "shallot", "bird chili", "shrimp paste",
                "coconut milk", "lemongrass", "fish sauce", "palm sugar",
                "lime",
            ),
            signature_families=("pungent-alkaloid", "allium-sulfur"),
            mean_recipe_size=9.1,
        ),
        RegionGeneratorProfile(
            code="CAN", recipe_count=1112, ingredient_count=368,
            pairing_bias=0.25,
            signature_ingredients=(
                "maple syrup", "butter", "potato", "cheddar cheese", "bacon",
                "rolled oat", "cream", "salmon",
            ),
            signature_families=("caramel-furanone", "buttery-diketone"),
            mean_recipe_size=8.9,
        ),
        # ---- contrasting (negative) regions, strongest first ------------
        RegionGeneratorProfile(
            code="SCND", recipe_count=404, ingredient_count=245,
            pairing_bias=-1.60,
            signature_ingredients=(
                "butter", "sour cream", "cream", "dill", "milk",
                "pickled herring", "rye bread", "potato", "lingonberry",
                "cardamom", "smoked salmon", "mustard seed",
            ),
            signature_families=(),
            spread_head=True,
            baseline_families=('herb-terpene', 'berry-ester', 'warm-phenolic'),
            category_multipliers={Category.DAIRY: 2.6, Category.FISH: 1.8},
            mean_recipe_size=8.4,
        ),
        RegionGeneratorProfile(
            code="JPN", recipe_count=580, ingredient_count=283,
            pairing_bias=-1.45,
            signature_ingredients=(
                "rice", "soy sauce", "mirin", "nori", "bonito flake",
                "sake", "ginger", "sesame seed", "wasabi", "dashi",
            ),
            signature_families=(),
            spread_head=True,
            baseline_families=('herb-terpene', 'citrus-terpene', 'green-aldehyde'),
            category_multipliers={Category.FISH: 2.2, Category.SEAFOOD: 1.8},
            mean_recipe_size=8.2,
        ),
        RegionGeneratorProfile(
            code="DACH", recipe_count=487, ingredient_count=260,
            pairing_bias=-1.30,
            signature_ingredients=(
                "pork", "sauerkraut", "potato", "caraway seed", "butter",
                "apple", "rye bread", "mustard seed", "cabbage",
                "juniper berry",
            ),
            signature_families=(),
            spread_head=True,
            baseline_families=('herb-terpene', 'orchard-ester', 'warm-phenolic'),
            mean_recipe_size=8.6,
        ),
        RegionGeneratorProfile(
            code="BRI", recipe_count=1075, ingredient_count=340,
            pairing_bias=-1.15,
            signature_ingredients=(
                "butter", "cheddar cheese", "milk", "cream", "potato",
                "beef", "pea", "mint", "worcestershire sauce", "black tea",
                "bread", "bacon",
            ),
            signature_families=(),
            spread_head=True,
            baseline_families=('herb-terpene', 'berry-ester', 'caramel-furanone'),
            category_multipliers={Category.DAIRY: 2.6},
            mean_recipe_size=8.7,
        ),
        RegionGeneratorProfile(
            code="KOR", recipe_count=301, ingredient_count=198,
            pairing_bias=-0.95,
            signature_ingredients=(
                "gochugaru", "kimchi", "garlic", "sesame oil", "soy sauce",
                "rice", "scallion", "tofu", "dried shrimp", "gochujang",
            ),
            signature_families=(),
            spread_head=True,
            baseline_families=('green-aldehyde', 'citrus-terpene', 'herb-terpene'),
            mean_recipe_size=8.3,
        ),
        RegionGeneratorProfile(
            code="EE", recipe_count=565, ingredient_count=255,
            pairing_bias=-0.75,
            signature_ingredients=(
                "beet", "sour cream", "dill", "potato", "cabbage",
                "caraway seed", "pork", "mushroom", "paprika", "vinegar",
            ),
            signature_families=(),
            spread_head=True,
            baseline_families=('herb-terpene', 'berry-ester', 'green-aldehyde'),
            mean_recipe_size=8.8,
        ),
    )
}

#: Mini-regions folded into the WORLD aggregate only (207 recipes total).
WORLD_ONLY_PROFILES: tuple[RegionGeneratorProfile, ...] = (
    RegionGeneratorProfile(
        code="Portugal", recipe_count=62, ingredient_count=90,
        pairing_bias=0.4,
        signature_ingredients=("olive oil", "garlic", "cod", "paprika"),
        signature_families=("green-aldehyde", "herb-terpene"),
    ),
    RegionGeneratorProfile(
        code="Belgium", recipe_count=49, ingredient_count=80,
        pairing_bias=0.3,
        signature_ingredients=("butter", "beer", "chocolate", "mussel"),
        signature_families=("buttery-diketone", "caramel-furanone"),
    ),
    RegionGeneratorProfile(
        code="Central America", recipe_count=51, ingredient_count=85,
        pairing_bias=0.35,
        signature_ingredients=("corn", "black bean", "plantain", "cilantro"),
        signature_families=("green-aldehyde", "legume-green"),
    ),
    RegionGeneratorProfile(
        code="Netherlands", recipe_count=45, ingredient_count=75,
        pairing_bias=0.25,
        signature_ingredients=("potato", "gouda cheese", "butter", "kale"),
        signature_families=("dairy-lactone", "buttery-diketone"),
    ),
)
