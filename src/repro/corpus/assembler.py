"""Recipe assembly: popularity-driven draws with a flavor-affinity tilt.

Recipes are composed the way the paper's copy-mutate evolution literature
(ref [10]) suggests real recipes form: ingredients join a dish according to
how common they are in the cuisine, modulated by how well they blend with
what is already in the pot. The modulation is the cuisine's
``pairing_bias``:

* positive bias (uniform cuisines): candidates sharing flavor molecules
  with the current partial recipe are up-weighted,
* negative bias (contrasting cuisines): they are down-weighted,
* zero bias degenerates to the frequency-preserving null model.

The overlap matrix between all pantry ingredients is precomputed once per
region; assembling one recipe is then a handful of vectorised numpy
operations per ingredient slot.
"""

from __future__ import annotations

import numpy as np

from ..datamodel import Ingredient
from .pantry import RegionPantry

#: Shared-molecule counts are squashed to ``min(overlap, OVERLAP_CAP)`` and
#: scaled by 1/OVERLAP_SCALE inside the exponential tilt, so a single
#: freakishly-overlapping pair cannot dominate the draw.
OVERLAP_CAP = 12.0
OVERLAP_SCALE = 4.0

#: Fraction of draws that ignore the affinity tilt entirely — culinary
#: noise (pantry leftovers, decoration, tradition) the bias cannot explain.
NOISE_RATE = 0.08


def overlap_matrix(
    ingredients: tuple[Ingredient, ...], reference: bool = False
) -> np.ndarray:
    """Pairwise shared-molecule counts |F_i ∩ F_j| (diagonal zeroed).

    Computed via a binary ingredient×molecule membership matrix so the
    whole pantry matrix is one matmul. The matmul runs in float64 (BLAS)
    rather than int32 (a naive loop inside numpy) — counts are small
    integers, far below 2**53, so the float products and sums are exact
    and the int32 result is bit-identical to the integer matmul.

    ``reference=True`` keeps the original int32 matmul; it exists so the
    cold-build bench can measure the pre-optimisation path
    (``BENCH_aliasing.json``), mirroring how
    :func:`repro.pairing.naive_sample_model_scores` serves the sampler
    ablation.
    """
    if not ingredients:
        return np.zeros((0, 0), dtype=np.int32)
    max_molecule = 0
    for ingredient in ingredients:
        if ingredient.flavor_profile:
            max_molecule = max(max_molecule, max(ingredient.flavor_profile))
    dtype = np.int32 if reference else np.float64
    membership = np.zeros((len(ingredients), max_molecule + 1), dtype=dtype)
    for row, ingredient in enumerate(ingredients):
        if ingredient.flavor_profile:
            membership[row, list(ingredient.flavor_profile)] = 1
    matrix = membership @ membership.T
    if not reference:
        matrix = matrix.astype(np.int32)
    np.fill_diagonal(matrix, 0)
    return matrix


class RecipeAssembler:
    """Draws recipes (as pantry-index arrays) for one region.

    ``reference=True`` selects the pre-optimisation draw path (int32
    overlap matmul, per-slot ``rng.choice``); it produces bit-identical
    recipes — asserted by the equivalence tests — and exists so the
    cold-build bench can measure the fast path against it.
    """

    def __init__(self, pantry: RegionPantry, reference: bool = False) -> None:
        self._pantry = pantry
        self._popularity = pantry.popularity.astype(np.float64)
        self._overlap = overlap_matrix(
            pantry.ingredients, reference=reference
        ).astype(np.float64)
        np.clip(self._overlap, 0.0, OVERLAP_CAP, out=self._overlap)
        self._bias = pantry.profile.pairing_bias
        self._reference = reference

    @property
    def pantry(self) -> RegionPantry:
        return self._pantry

    @staticmethod
    def _draw(rng: np.random.Generator, p: np.ndarray) -> int:
        """Inlined ``rng.choice(len(p), p=p)``: cumsum + searchsorted.

        ``Generator.choice`` builds the same cdf and consumes exactly one
        ``rng.random()`` — but spends several microseconds per call on
        argument coercion and p-validation (kahan sum, finfo, dtype
        checks), which dominates the whole assembly loop. This inline
        reproduces its draw bit-for-bit (same cdf arithmetic, same
        uniform variate, same ``side="right"`` search) without the
        per-call overhead.
        """
        cdf = p.cumsum()
        cdf /= cdf[-1]
        return int(cdf.searchsorted(rng.random(), side="right"))

    def assemble(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw one recipe of ``size`` distinct pantry indices.

        The first ingredient follows popularity alone; each subsequent one
        follows popularity times ``exp(bias * mean_overlap / scale)``
        against the partial recipe, except for a ``NOISE_RATE`` fraction of
        pure-popularity draws.
        """
        pantry_size = self._pantry.size
        size = min(size, pantry_size)
        if self._reference:
            draw = lambda p: int(rng.choice(pantry_size, p=p))  # noqa: E731
        else:
            draw = lambda p: self._draw(rng, p)  # noqa: E731
        chosen = np.empty(size, dtype=np.int64)
        weights = self._popularity.copy()
        first = draw(weights / weights.sum())
        chosen[0] = first
        weights[first] = 0.0
        if size == 1:
            return chosen
        affinity = self._overlap[first].copy()
        for slot in range(1, size):
            if self._bias == 0.0 or rng.random() < NOISE_RATE:
                tilt = weights
            else:
                mean_affinity = affinity / slot
                tilt = weights * np.exp(
                    self._bias * mean_affinity / OVERLAP_SCALE
                )
            total = tilt.sum()
            if total <= 0.0:
                remaining = np.flatnonzero(weights > 0)
                # rng.choice(remaining) draws its index via integers();
                # call it directly to keep the stream identical.
                pick = int(
                    remaining[
                        int(
                            rng.integers(
                                0, remaining.size, size=None, dtype=np.int64
                            )
                        )
                    ]
                )
            else:
                pick = draw(tilt / total)
            chosen[slot] = pick
            weights[pick] = 0.0
            affinity += self._overlap[pick]
        return chosen

    def assemble_many(
        self, rng: np.random.Generator, sizes: np.ndarray
    ) -> list[np.ndarray]:
        """Draw one recipe per entry of ``sizes``."""
        return [self.assemble(rng, int(size)) for size in sizes]
