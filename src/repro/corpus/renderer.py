"""Raw-phrase rendering: canonical ingredients -> noisy ingredient lines.

The corpus generator must exercise the aliasing pipeline the way scraped
recipes would, so every ingredient is rendered into a realistic free-text
line: quantities (including fractions), units, container words,
preparation descriptors, plural forms and spelling-variant synonyms
("2 tablespoons whisky", "1 (14 ounce) can diced tomatoes, drained").

Fidelity contract: every rendered phrase must alias back to exactly the
ingredient it was rendered from. The renderer guarantees this by
validating each candidate surface form (canonical name, synonyms, plural)
through the actual :class:`~repro.aliasing.AliasingPipeline` once, and
only decorating with vocabulary the normaliser is known to strip.
"""

from __future__ import annotations

import numpy as np

from ..aliasing import AliasingPipeline, MatchKind
from ..datamodel import Ingredient

#: Quantity spellings, mixed numbers and vulgar fractions included.
QUANTITIES: tuple[str, ...] = (
    "1", "2", "3", "4", "5", "6", "8", "12",
    "1/2", "1/3", "1/4", "2/3", "3/4",
    "1 1/2", "2 1/2", "½", "¼", "¾",
)

#: Units paired with quantities ("2 cups ...").
UNIT_WORDS: tuple[str, ...] = (
    "cup", "cups", "tablespoon", "tablespoons", "tbsp", "teaspoon",
    "teaspoons", "tsp", "ounce", "ounces", "oz", "pound", "pounds", "lb",
    "g", "kg", "ml",
)

#: Container words ("1 can ...", "2 bunches ..."); all in MEASURE_WORDS.
CONTAINER_WORDS: tuple[str, ...] = (
    "can", "jar", "package", "bunch", "sprig", "piece", "slice", "bag",
)

#: Trailing preparation descriptors; every token is a culinary stopword.
DESCRIPTORS: tuple[str, ...] = (
    "chopped", "diced", "minced", "thinly sliced", "finely chopped",
    "roughly chopped", "drained", "melted", "softened", "roasted and slit",
    "peeled and diced", "trimmed", "grated", "crushed", "seeded and minced",
    "to taste", "at room temperature", "cut into cubes", "well washed",
)

#: Leading descriptors ("fresh basil leaves" style, minus the plural).
LEADING_DESCRIPTORS: tuple[str, ...] = ("fresh", "freshly grated", "cold", "")


class PhraseRenderer:
    """Renders validated noisy ingredient phrases."""

    def __init__(self, pipeline: AliasingPipeline) -> None:
        self._pipeline = pipeline
        self._surface_cache: dict[int, tuple[str, ...]] = {}

    def surface_forms(self, ingredient: Ingredient) -> tuple[str, ...]:
        """All validated surface forms for an ingredient.

        Candidates are the canonical name, each synonym, and the naive
        plural of each; a candidate survives only if the aliasing pipeline
        resolves it exactly back to this ingredient.
        """
        cached = self._surface_cache.get(ingredient.ingredient_id)
        if cached is not None:
            return cached
        candidates = [ingredient.name]
        candidates.extend(ingredient.synonyms)
        candidates.extend(
            pluralize(candidate) for candidate in list(candidates)
        )
        validated = []
        seen: set[str] = set()
        for candidate in candidates:
            if candidate in seen:
                continue
            seen.add(candidate)
            resolution = self._pipeline.resolve_phrase(candidate)
            if (
                resolution.kind is MatchKind.EXACT
                and len(resolution.ingredients) == 1
                and resolution.ingredients[0].ingredient_id
                == ingredient.ingredient_id
            ):
                validated.append(candidate)
        forms = tuple(validated) if validated else (ingredient.name,)
        self._surface_cache[ingredient.ingredient_id] = forms
        return forms

    def render(
        self, ingredient: Ingredient, rng: np.random.Generator
    ) -> str:
        """Render one noisy ingredient line."""
        forms = self.surface_forms(ingredient)
        surface = forms[int(rng.integers(len(forms)))]
        style = rng.random()
        if style < 0.10:  # bare mention: "salt to taste"
            if rng.random() < 0.5:
                return f"{surface} to taste"
            return surface
        quantity = QUANTITIES[int(rng.integers(len(QUANTITIES)))]
        if style < 0.20:  # canned/packaged form
            container = CONTAINER_WORDS[int(rng.integers(len(CONTAINER_WORDS)))]
            inner = QUANTITIES[int(rng.integers(len(QUANTITIES)))]
            return f"{quantity} ({inner} ounce) {container} {surface}"
        parts = [quantity]
        if rng.random() < 0.75:
            parts.append(UNIT_WORDS[int(rng.integers(len(UNIT_WORDS)))])
        leading = LEADING_DESCRIPTORS[
            int(rng.integers(len(LEADING_DESCRIPTORS)))
        ]
        if leading:
            parts.append(leading)
        parts.append(surface)
        phrase = " ".join(parts)
        if rng.random() < 0.55:
            descriptor = DESCRIPTORS[int(rng.integers(len(DESCRIPTORS)))]
            phrase = f"{phrase}, {descriptor}"
        return phrase


def pluralize(name: str) -> str:
    """Naive plural of an ingredient name (last word only).

    Invalid plurals are filtered out by surface-form validation, so the
    rule only needs to be right for the common cases.
    """
    words = name.split(" ")
    last = words[-1]
    if last.endswith(("s", "x", "z", "ch", "sh")):
        plural = last + "es"
    elif last.endswith("y") and len(last) > 1 and last[-2] not in "aeiou":
        plural = last[:-1] + "ies"
    elif last.endswith("o") and len(last) > 2 and last[-2] not in "aeiou":
        plural = last + "es"
    else:
        plural = last + "s"
    return " ".join(words[:-1] + [plural])
