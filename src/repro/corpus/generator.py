"""Synthetic corpus generation: the full 45,772-recipe CulinaryDB stand-in.

:class:`CorpusGenerator` orchestrates the substrate: for every region it
builds the pantry (:mod:`repro.corpus.pantry`), samples recipe sizes
(:mod:`repro.corpus.sizes`), assembles ingredient sets with the region's
flavor-affinity bias (:mod:`repro.corpus.assembler`), enforces Table 1's
exact unique-ingredient counts, renders noisy raw phrases
(:mod:`repro.corpus.renderer`), and attributes recipes to the paper's four
sources with their exact published totals.

Everything is deterministic given ``seed``; the default seed is the one
all experiments and benchmarks use.
"""

from __future__ import annotations

import dataclasses
import math
from collections import Counter

import numpy as np

from ..aliasing import AliasingPipeline
from ..datamodel import ConfigurationError, RawRecipe
from ..flavordb import IngredientCatalog, default_catalog, stable_seed
from ..obs import span
from .assembler import RecipeAssembler
from .pantry import RegionPantry, build_pantry
from .profiles import (
    REGION_GENERATOR_PROFILES,
    WORLD_ONLY_PROFILES,
    RegionGeneratorProfile,
)
from .renderer import PhraseRenderer
from .sizes import sample_recipe_sizes

#: Seed used by all experiments unless overridden.
DEFAULT_SEED = 20180417

#: The paper's source totals (Section III.A). TarlaDalal recipes belong to
#: the Indian Subcontinent; the other three sources split the rest.
SOURCE_TOTALS = {
    "AllRecipes": 16177,
    "Food Network": 15917,
    "Epicurious": 11069,
    "TarlaDalal": 2609,
}

_GENERAL_SOURCES = ("AllRecipes", "Food Network", "Epicurious")

_DISH_TYPES = (
    "stew", "salad", "soup", "roast", "curry", "bake", "stir fry",
    "pie", "braise", "bowl", "skillet", "casserole", "gratin", "fritters",
)

_REGION_ADJECTIVES = {
    "AFR": "African", "ANZ": "Aussie", "BRI": "British", "CAN": "Canadian",
    "CBN": "Caribbean", "CHN": "Chinese", "DACH": "Alpine",
    "EE": "Eastern European", "FRA": "French", "GRC": "Greek",
    "INSC": "Indian", "ITA": "Italian", "JPN": "Japanese", "KOR": "Korean",
    "MEX": "Mexican", "ME": "Levantine", "SCND": "Nordic",
    "SAM": "South American", "SEA": "Southeast Asian", "ESP": "Spanish",
    "THA": "Thai", "USA": "American", "Portugal": "Portuguese",
    "Belgium": "Belgian", "Central America": "Central American",
    "Netherlands": "Dutch",
}


@dataclasses.dataclass(frozen=True)
class RegionPlan:
    """One region's deterministic share of the corpus.

    Region recipe counts are pure arithmetic on the profile and scale,
    so the global recipe-id layout and source-label assignment can be
    computed *before* any region is generated — which is what lets
    regions build independently (and in parallel) while the merged
    corpus stays bit-identical to the serial one.

    Attributes:
        profile: the region's generator profile.
        start_recipe_id: id of the region's first recipe (1-based,
            contiguous in profile order).
        source_labels: source attribution for each recipe, region-local
            order.
    """

    profile: RegionGeneratorProfile
    start_recipe_id: int
    source_labels: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class RegionOutput:
    """Everything one region's generation produces (mergeable shard)."""

    code: str
    raw_recipes: tuple[RawRecipe, ...]
    intended: dict[int, frozenset[int]]
    pantry: RegionPantry


@dataclasses.dataclass(frozen=True)
class GeneratedCorpus:
    """Everything one generation run produces.

    Attributes:
        raw_recipes: the noisy scraped-style records, id order.
        intended_ingredients: recipe id -> the exact canonical ingredient
            ids the raw phrases were rendered from (ground truth for
            aliasing fidelity checks).
        pantries: region code -> the pantry used.
        seed: generation seed.
    """

    raw_recipes: tuple[RawRecipe, ...]
    intended_ingredients: dict[int, frozenset[int]]
    pantries: dict[str, RegionPantry]
    seed: int

    def region_codes(self) -> tuple[str, ...]:
        return tuple(self.pantries)


class CorpusGenerator:
    """Deterministic generator for the synthetic recipe corpus."""

    def __init__(
        self,
        catalog: IngredientCatalog | None = None,
        seed: int = DEFAULT_SEED,
        include_world_only: bool = True,
        recipe_scale: float = 1.0,
        reference_assembler: bool = False,
    ) -> None:
        """
        Args:
            catalog: ingredient catalog (defaults to the shared one).
            seed: generation seed; all randomness derives from it.
            include_world_only: also generate the 207 recipes from the four
                WORLD-only mini-regions.
            recipe_scale: multiply per-region recipe counts (tests use
                small scales). Pantry sizes are preserved, so scales below
                ~0.05 are clamped per region to keep every pantry
                ingredient reachable.
            reference_assembler: assemble through the pre-optimisation
                reference draw path (bit-identical output; exists for
                the cold-build bench, see
                :class:`~repro.corpus.assembler.RecipeAssembler`).
        """
        if recipe_scale <= 0:
            raise ConfigurationError("recipe_scale must be positive")
        self._catalog = catalog if catalog is not None else default_catalog()
        self._pipeline = AliasingPipeline(self._catalog)
        self._renderer = PhraseRenderer(self._pipeline)
        self._seed = seed
        self._include_world_only = include_world_only
        self._recipe_scale = recipe_scale
        self._reference_assembler = reference_assembler

    @property
    def catalog(self) -> IngredientCatalog:
        return self._catalog

    def profiles(self) -> tuple[RegionGeneratorProfile, ...]:
        """Profiles this generator will realise, region order."""
        profiles = tuple(REGION_GENERATOR_PROFILES.values())
        if self._include_world_only:
            profiles += WORLD_ONLY_PROFILES
        return profiles

    def region_plans(self) -> list[RegionPlan]:
        """The deterministic per-region layout of the full corpus.

        Recipe counts, id ranges and source labels involve no sampling,
        so the plan is computed up front; each plan then generates its
        region independently (every RNG stream is keyed by region code).
        """
        profiles = self.profiles()
        counts = [
            (profile.code, self._region_recipe_count(profile))
            for profile in profiles
        ]
        labels = self._source_labels(counts)
        plans: list[RegionPlan] = []
        cursor = 0
        next_id = 1
        for profile, (_code, count) in zip(profiles, counts):
            plans.append(
                RegionPlan(
                    profile=profile,
                    start_recipe_id=next_id,
                    source_labels=tuple(labels[cursor : cursor + count]),
                )
            )
            cursor += count
            next_id += count
        return plans

    def generate_region(self, plan: RegionPlan) -> RegionOutput:
        """Assemble and render one region of the corpus."""
        profile = plan.profile
        code = profile.code
        with span("corpus.region", region=code) as trace:
            pantry = build_pantry(profile, self._catalog)
            recipes = self._assemble_region(profile, pantry)
            render_rng = np.random.Generator(
                np.random.PCG64(stable_seed("render", code, str(self._seed)))
            )
            raw_recipes: list[RawRecipe] = []
            intended: dict[int, frozenset[int]] = {}
            for offset, indices in enumerate(recipes):
                recipe_id = plan.start_recipe_id + offset
                ingredients = [pantry.ingredients[int(i)] for i in indices]
                phrases = tuple(
                    self._renderer.render(ingredient, render_rng)
                    for ingredient in ingredients
                )
                title = self._title(code, ingredients[0].name, render_rng)
                raw_recipes.append(
                    RawRecipe(
                        recipe_id=recipe_id,
                        title=title,
                        source=plan.source_labels[offset],
                        region_code=code,
                        ingredient_phrases=phrases,
                        instructions=self._instructions(ingredients),
                    )
                )
                intended[recipe_id] = frozenset(
                    ingredient.ingredient_id for ingredient in ingredients
                )
                trace.incr("phrases", len(phrases))
            trace.incr("recipes", len(raw_recipes))
            return RegionOutput(
                code=code,
                raw_recipes=tuple(raw_recipes),
                intended=intended,
                pantry=pantry,
            )

    def generate(self, workers: int = 1) -> GeneratedCorpus:
        """Generate the full corpus.

        Args:
            workers: generate regions across this many processes (``1``
                = serial in-process). Region RNG streams are keyed by
                region code and the merge follows profile order, so the
                corpus is bit-identical for any worker count.
        """
        with span(
            "corpus.generate",
            seed=self._seed,
            scale=self._recipe_scale,
            workers=workers,
        ) as trace:
            plans = self.region_plans()
            # Workers rebuild the generator from (seed, scale,
            # include_world_only) alone, so only a default-catalog,
            # default-assembler generator may fan out.
            if (
                workers > 1
                and self._catalog is default_catalog()
                and not self._reference_assembler
            ):
                from ..parallel.executor import run_tasks

                payloads = [
                    (
                        self._seed,
                        self._recipe_scale,
                        self._include_world_only,
                        plan,
                    )
                    for plan in plans
                ]
                outputs = run_tasks(
                    _generate_region_worker,
                    payloads,
                    workers=workers,
                    label="corpus.regions",
                )
            else:
                outputs = [self.generate_region(plan) for plan in plans]

            raw_recipes: list[RawRecipe] = []
            intended: dict[int, frozenset[int]] = {}
            pantries: dict[str, RegionPantry] = {}
            for output in outputs:
                raw_recipes.extend(output.raw_recipes)
                intended.update(output.intended)
                pantries[output.code] = output.pantry

            trace.incr("recipes", len(raw_recipes))
            trace.incr("regions", len(pantries))
            return GeneratedCorpus(
                raw_recipes=tuple(raw_recipes),
                intended_ingredients=intended,
                pantries=pantries,
                seed=self._seed,
            )

    # ------------------------------------------------------------------
    # per-region assembly
    # ------------------------------------------------------------------
    def _region_recipe_count(self, profile: RegionGeneratorProfile) -> int:
        scaled = int(round(profile.recipe_count * self._recipe_scale))
        # Keep enough recipes that every pantry ingredient can appear.
        minimum = math.ceil(
            profile.ingredient_count / max(profile.mean_recipe_size - 2, 1)
        )
        return max(scaled, minimum, 10)

    def _assemble_region(
        self, profile: RegionGeneratorProfile, pantry: RegionPantry
    ) -> list[np.ndarray]:
        rng = np.random.Generator(
            np.random.PCG64(
                stable_seed("assemble", profile.code, str(self._seed))
            )
        )
        count = self._region_recipe_count(profile)
        sizes = sample_recipe_sizes(rng, count, profile.mean_recipe_size)
        assembler = RecipeAssembler(
            pantry, reference=self._reference_assembler
        )
        recipes = assembler.assemble_many(rng, sizes)
        self._enforce_coverage(recipes, pantry, rng)
        return recipes

    def _enforce_coverage(
        self,
        recipes: list[np.ndarray],
        pantry: RegionPantry,
        rng: np.random.Generator,
    ) -> None:
        """Guarantee every pantry ingredient is used at least once.

        Table 1's unique-ingredient counts are exact, so rare pantry tail
        ingredients that random assembly missed are swapped into recipes,
        replacing an ingredient that occurs at least twice corpus-wide.
        """
        usage = Counter[int]()
        for indices in recipes:
            usage.update(int(i) for i in indices)
        unused = [
            index for index in range(pantry.size) if usage[index] == 0
        ]
        if not unused:
            return
        order = rng.permutation(len(recipes))
        cursor = 0
        for missing in unused:
            placed = False
            for _attempt in range(len(recipes)):
                recipe = recipes[order[cursor % len(recipes)]]
                cursor += 1
                members = set(int(i) for i in recipe)
                if missing in members:
                    continue
                replaceable = [
                    slot
                    for slot, index in enumerate(recipe)
                    if usage[int(index)] >= 2
                ]
                if not replaceable:
                    continue
                # Replace the most-used member: losing one occurrence of a
                # very popular ingredient distorts the popularity and
                # pairing structure the least.
                slot = max(
                    replaceable, key=lambda s: usage[int(recipe[s])]
                )
                usage[int(recipe[slot])] -= 1
                recipe[slot] = missing
                usage[missing] += 1
                placed = True
                break
            if not placed:
                raise ConfigurationError(
                    f"could not place pantry ingredient index {missing} for "
                    f"region {pantry.profile.code}; corpus too small"
                )

    # ------------------------------------------------------------------
    # sources, titles, instructions
    # ------------------------------------------------------------------
    def _source_labels(
        self, region_counts: list[tuple[str, int]]
    ) -> list[str]:
        """Assign a source to every recipe, in global recipe order.

        TarlaDalal's quota goes to Indian Subcontinent recipes first; the
        three general sources split everything else proportionally to
        their published totals, deterministically.
        """
        total = sum(count for _code, count in region_counts)
        scale = total / sum(SOURCE_TOTALS.values())
        tarladalal_quota = int(round(SOURCE_TOTALS["TarlaDalal"] * scale))
        labels: list[str] = []
        general_weights = np.asarray(
            [SOURCE_TOTALS[name] for name in _GENERAL_SOURCES], np.float64
        )
        general_weights /= general_weights.sum()
        rng = np.random.Generator(
            np.random.PCG64(stable_seed("sources", str(self._seed)))
        )
        general_assigned = Counter[str]()
        general_total = 0
        for code, count in region_counts:
            for _ in range(count):
                if code == "INSC" and tarladalal_quota > 0:
                    labels.append("TarlaDalal")
                    tarladalal_quota -= 1
                    continue
                general_total += 1
                # Largest-deficit assignment keeps realised counts within
                # one recipe of the target proportions.
                deficits = [
                    general_weights[i] * general_total
                    - general_assigned[name]
                    for i, name in enumerate(_GENERAL_SOURCES)
                ]
                pick = _GENERAL_SOURCES[int(np.argmax(deficits))]
                general_assigned[pick] += 1
                labels.append(pick)
        del rng  # reserved for future stochastic assignment
        return labels

    def _title(
        self, code: str, main_ingredient: str, rng: np.random.Generator
    ) -> str:
        adjective = _REGION_ADJECTIVES.get(code, code.title())
        dish = _DISH_TYPES[int(rng.integers(len(_DISH_TYPES)))]
        return f"{adjective} {main_ingredient} {dish}".title()

    def _instructions(self, ingredients) -> str:
        head = ", ".join(
            ingredient.name for ingredient in ingredients[:3]
        )
        return (
            f"Prepare the {head}. Combine all ingredients and cook until "
            "done. Season, rest briefly and serve."
        )


# Per-process generator singleton for pool workers: building the pantry
# renderer stack is much more expensive than generating one region, so a
# worker reuses its generator across every region it is handed (keyed by
# the generation parameters in case a pool is reused across builds).
_WORKER_GENERATOR: tuple[tuple[int, float, bool], CorpusGenerator] | None = (
    None
)


def _generate_region_worker(
    payload: tuple[int, float, bool, RegionPlan],
) -> RegionOutput:
    """Pool entry point: generate one region in a worker process."""
    global _WORKER_GENERATOR
    seed, recipe_scale, include_world_only, plan = payload
    key = (seed, recipe_scale, include_world_only)
    if _WORKER_GENERATOR is None or _WORKER_GENERATOR[0] != key:
        _WORKER_GENERATOR = (
            key,
            CorpusGenerator(
                seed=seed,
                include_world_only=include_world_only,
                recipe_scale=recipe_scale,
            ),
        )
    return _WORKER_GENERATOR[1].generate_region(plan)


def generate_default_corpus(
    seed: int = DEFAULT_SEED, recipe_scale: float = 1.0
) -> GeneratedCorpus:
    """Convenience wrapper: generate with default catalog and options."""
    return CorpusGenerator(seed=seed, recipe_scale=recipe_scale).generate()
