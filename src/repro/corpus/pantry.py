"""Regional pantry construction: which ingredients a cuisine uses, and how
much.

A :class:`RegionPantry` is the ranked ingredient inventory of one cuisine:
exactly ``profile.ingredient_count`` ingredients (so Table 1 is matched),
with Zipf popularity weights over the ranks (Fig 3b). Rank assignment
implements the pairing calibration described in
:mod:`repro.corpus.profiles`:

* ranks 0..k: the profile's pinned ``signature_ingredients``;
* ranks up to :data:`HEAD_SIZE`: for *uniform* cuisines, ingredients from
  the signature flavor families (popular ingredients share molecules); for
  *contrasting* cuisines, ingredients chosen to maximise family diversity
  (popular ingredients share few molecules);
* remaining ranks: category-weighted sample of the rest of the catalog.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..datamodel import ConfigurationError, Ingredient
from ..flavordb import IngredientCatalog, stable_seed
from .profiles import RegionGeneratorProfile

#: Number of top popularity ranks treated as the cuisine's "head".
HEAD_SIZE = 40

#: Zipf shift: keeps the very first ranks from dwarfing everything.
ZIPF_SHIFT = 3.0

#: Tail-selection boost for a contrasting cuisine's baseline families.
BASELINE_TAIL_BOOST = 4.0


@dataclasses.dataclass(frozen=True)
class RegionPantry:
    """Ranked ingredient inventory of one cuisine.

    Attributes:
        profile: the generator profile this pantry realises.
        ingredients: pantry ingredients, most popular first.
        popularity: normalised popularity weights aligned with
            ``ingredients`` (sums to 1, strictly decreasing).
    """

    profile: RegionGeneratorProfile
    ingredients: tuple[Ingredient, ...]
    popularity: np.ndarray

    def __post_init__(self) -> None:
        if len(self.ingredients) != len(self.popularity):
            raise ConfigurationError("popularity misaligned with ingredients")

    @property
    def size(self) -> int:
        return len(self.ingredients)

    def ingredient_ids(self) -> np.ndarray:
        return np.asarray(
            [ingredient.ingredient_id for ingredient in self.ingredients],
            dtype=np.int64,
        )


def zipf_weights(count: int, exponent: float) -> np.ndarray:
    """Normalised Zipf popularity over ``count`` ranks."""
    ranks = np.arange(count, dtype=np.float64)
    weights = (ranks + ZIPF_SHIFT) ** (-exponent)
    return weights / weights.sum()


class _PantryBuilder:
    """Accumulates the ranked pantry while tracking what is taken."""

    def __init__(
        self, profile: RegionGeneratorProfile, catalog: IngredientCatalog
    ) -> None:
        self.profile = profile
        self.catalog = catalog
        self.chosen: list[Ingredient] = []
        self._chosen_ids: set[int] = set()

    def take(self, ingredient: Ingredient) -> None:
        if ingredient.ingredient_id not in self._chosen_ids:
            self.chosen.append(ingredient)
            self._chosen_ids.add(ingredient.ingredient_id)

    def available(self, pool) -> list[Ingredient]:
        return [
            ingredient
            for ingredient in pool
            if ingredient.ingredient_id not in self._chosen_ids
        ]

    def category_weights(self, pool: list[Ingredient]) -> np.ndarray:
        weights = np.asarray(
            [
                self.profile.category_weight(ingredient.category)
                for ingredient in pool
            ],
            dtype=np.float64,
        )
        return weights / weights.sum()


def build_pantry(
    profile: RegionGeneratorProfile, catalog: IngredientCatalog
) -> RegionPantry:
    """Construct the deterministic pantry for one region profile.

    Raises:
        ConfigurationError: if a signature ingredient is unknown or the
            catalog is too small for the requested pantry.
    """
    rng = np.random.Generator(
        np.random.PCG64(stable_seed("pantry", profile.code))
    )
    builder = _PantryBuilder(profile, catalog)
    if len(profile.signature_ingredients) > profile.ingredient_count:
        raise ConfigurationError(
            f"region {profile.code}: {len(profile.signature_ingredients)} "
            f"signature ingredients exceed the pantry size "
            f"{profile.ingredient_count}"
        )

    # 1. Pinned signature ingredients, in profile order.
    for name in profile.signature_ingredients:
        ingredient = catalog.resolve(name)
        if ingredient is None:
            raise ConfigurationError(
                f"region {profile.code}: unknown signature ingredient {name!r}"
            )
        builder.take(ingredient)

    # 2. Head top-up.
    head_target = min(HEAD_SIZE, profile.ingredient_count)
    if profile.spread_head:
        _fill_head_spread(builder, head_target, rng)
    else:
        _fill_head_cohesive(builder, head_target, rng)

    # 3. Category-weighted tail over the whole catalog. For contrasting
    # cuisines, ingredients of the baseline families are boosted: they form
    # cohesive clusters in the rarely-used tail, raising the uniform-random
    # pairing baseline that the cross-family head undercuts.
    tail_candidates = builder.available(catalog.ingredients)
    remaining = profile.ingredient_count - len(builder.chosen)
    if remaining > len(tail_candidates):
        raise ConfigurationError(
            f"region {profile.code}: catalog too small for "
            f"{profile.ingredient_count} pantry ingredients"
        )
    if remaining > 0:
        weights = builder.category_weights(tail_candidates)
        if profile.baseline_families:
            baseline = set(profile.baseline_families)
            boost = np.asarray(
                [
                    BASELINE_TAIL_BOOST
                    if catalog.family_of(ingredient) in baseline
                    else 1.0
                    for ingredient in tail_candidates
                ],
                dtype=np.float64,
            )
            weights = weights * boost
            weights /= weights.sum()
        picks = rng.choice(
            len(tail_candidates), size=remaining, replace=False, p=weights
        )
        for pick in picks:
            builder.take(tail_candidates[int(pick)])

    popularity = zipf_weights(len(builder.chosen), profile.zipf_exponent)
    return RegionPantry(profile, tuple(builder.chosen), popularity)


def _fill_head_cohesive(
    builder: _PantryBuilder, head_target: int, rng: np.random.Generator
) -> None:
    """Uniform cuisines: draw the head from the signature flavor families."""
    profile, catalog = builder.profile, builder.catalog
    family_pool = [
        ingredient
        for ingredient in builder.available(catalog.pairable_ingredients())
        if not ingredient.is_compound
        and catalog.family_of(ingredient) in profile.signature_families
    ]
    needed = head_target - len(builder.chosen)
    if needed <= 0 or not family_pool:
        return
    weights = builder.category_weights(family_pool)
    count = min(needed, len(family_pool))
    picks = rng.choice(len(family_pool), size=count, replace=False, p=weights)
    for pick in picks:
        builder.take(family_pool[int(pick)])


def _fill_head_spread(
    builder: _PantryBuilder, head_target: int, rng: np.random.Generator
) -> None:
    """Contrasting cuisines: maximise family diversity across the head."""
    catalog = builder.catalog
    family_counts: dict[str, int] = {}
    for ingredient in builder.chosen:
        family = catalog.family_of(ingredient)
        family_counts[family] = family_counts.get(family, 0) + 1
    by_family: dict[str, list[Ingredient]] = {}
    for ingredient in builder.available(catalog.pairable_ingredients()):
        if ingredient.is_compound:
            continue  # compounds' pooled profiles blur the head structure
        by_family.setdefault(catalog.family_of(ingredient), []).append(
            ingredient
        )
    profile = builder.profile
    for pool in by_family.values():
        rng.shuffle(pool)  # type: ignore[arg-type]
        # Popped last-first: prefer the region's emphasised categories
        # (keeps dairy-forward cuisines dairy-forward) and, within those,
        # small flavor profiles — popular ingredients of a contrasting
        # cuisine share few molecules even through the commons family.
        pool.sort(
            key=lambda item: (
                profile.category_weight(item.category),
                -len(item.flavor_profile),
            )
        )
    while len(builder.chosen) < head_target and by_family:
        # Pick the least-represented family that still has candidates.
        family = min(
            by_family, key=lambda name: (family_counts.get(name, 0), name)
        )
        pool = by_family[family]
        builder.take(pool.pop())
        if not pool:
            del by_family[family]
        family_counts[family] = family_counts.get(family, 0) + 1
