"""Top-k retrieval kernels: similar ingredients, completions, cuisines.

Each kernel has two paths that return *identical* rankings:

* the **indexed** path (default) walks the precomputed
  :class:`~repro.retrieval.index.RetrievalIndex` structures, and
* the **reference** path (``reference=True``) brute-forces the same
  answer straight off the catalog / cuisine objects — retained
  permanently, mirroring the corpus fast-path pattern, so equivalence
  tests can always cross-check the index.

Ties are broken deterministically everywhere: equal overlap counts order
by ascending ingredient name, equal cuisine similarities (after rounding
to :data:`SIMILARITY_DECIMALS` places) by ascending region code.

Every query is traced (``retrieval.*`` spans) and counted:
``repro_retrieval_hit_total{kind}`` for indexed answers,
``repro_retrieval_fallback_total{kind}`` for brute-force ones, and the
``repro_retrieval_latency_ms{kind,path}`` histogram.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Mapping, Sequence

import numpy as np

from ..datamodel import (
    ConfigurationError,
    Cuisine,
    Ingredient,
    LookupFailure,
    ValidationError,
)
from ..flavordb import IngredientCatalog
from ..obs import get_registry, span
from .index import NEIGHBOR_LIST_LIMIT, RetrievalIndex

__all__ = [
    "DEFAULT_TOPK",
    "MAX_TOPK",
    "SIMILARITY_DECIMALS",
    "Completion",
    "CuisineMatch",
    "SimilarMatch",
    "complete_recipe",
    "nearest_cuisines",
    "similar_ingredients",
]

#: Default / maximum k served by the endpoints and CLI (the same cap as
#: ``/pairings``' partner limit).
DEFAULT_TOPK = 10
MAX_TOPK = 50

#: Cuisine similarities are rounded to this many decimals before ranking,
#: so the indexed (matrix-product) and reference (per-pair) paths — equal
#: up to float round-off — always rank identically.
SIMILARITY_DECIMALS = 9


@dataclasses.dataclass(frozen=True)
class SimilarMatch:
    """One similar-ingredient result row."""

    ingredient_id: int
    name: str
    shared_molecules: int


@dataclasses.dataclass(frozen=True)
class Completion:
    """One recipe-completion candidate.

    Attributes:
        shared_total: molecules the candidate shares with the partial
            recipe, summed over its pairable members.
        score: projected N_s of the partial recipe plus this candidate.
        delta: ``score`` minus the partial's own N_s (0.0 base when the
            partial has fewer than two pairable members).
    """

    ingredient_id: int
    name: str
    shared_total: int
    score: float
    delta: float


@dataclasses.dataclass(frozen=True)
class CuisineMatch:
    """One nearest-cuisine result row (cosine similarity, 0..1)."""

    region_code: str
    similarity: float


def _require_k(k: int) -> None:
    if isinstance(k, bool) or not isinstance(k, int) or k < 1:
        raise ConfigurationError(f"k must be a positive integer, got {k!r}")


def _observe(kind: str, path: str, started: float) -> None:
    registry = get_registry()
    if path == "indexed":
        registry.counter("repro_retrieval_hit_total", kind=kind).incr()
    else:
        registry.counter("repro_retrieval_fallback_total", kind=kind).incr()
    registry.histogram(
        "repro_retrieval_latency_ms", kind=kind, path=path
    ).observe((time.perf_counter() - started) * 1000.0)


# ---------------------------------------------------------------------------
# similar ingredients
# ---------------------------------------------------------------------------
def similar_ingredients(
    index: RetrievalIndex,
    catalog: IngredientCatalog,
    ingredient: Ingredient | str,
    k: int = DEFAULT_TOPK,
    reference: bool = False,
) -> list[SimilarMatch]:
    """Top-k flavor-sharing partners of one ingredient.

    Partners with zero shared molecules never appear. The indexed path is
    an array slice of the precomputed neighbor list; asking for more than
    :data:`NEIGHBOR_LIST_LIMIT` partners silently brute-forces so the
    answer stays exact.

    Raises:
        ConfigurationError: for a non-positive ``k``.
        ValidationError: when the ingredient has no flavor profile.
    """
    _require_k(k)
    if isinstance(ingredient, str):
        ingredient = catalog.get(ingredient)
    if not ingredient.has_flavor_profile:
        raise ValidationError(
            f"{ingredient.name!r} has no flavor profile to pair on"
        )
    use_reference = reference or k > NEIGHBOR_LIST_LIMIT
    started = time.perf_counter()
    with span("retrieval.similar", k=k):
        if use_reference:
            matches = _similar_reference(catalog, ingredient, k)
        else:
            matches = _similar_indexed(index, ingredient, k)
    _observe("similar", "reference" if use_reference else "indexed", started)
    return matches


def _similar_indexed(
    index: RetrievalIndex, ingredient: Ingredient, k: int
) -> list[SimilarMatch]:
    row = index.row_by_id[ingredient.ingredient_id]
    partner_rows = index.neighbor_rows[row][:k]
    partner_shared = index.neighbor_shared[row][:k]
    matches: list[SimilarMatch] = []
    for partner, shared in zip(partner_rows, partner_shared):
        if partner < 0:
            break
        matches.append(
            SimilarMatch(
                ingredient_id=int(index.ingredient_ids[partner]),
                name=index.names[partner],
                shared_molecules=int(shared),
            )
        )
    return matches


def _similar_reference(
    catalog: IngredientCatalog, ingredient: Ingredient, k: int
) -> list[SimilarMatch]:
    scored = sorted(
        (
            (ingredient.shared_molecules(other), other)
            for other in catalog.pairable_ingredients()
            if other.ingredient_id != ingredient.ingredient_id
        ),
        key=lambda pair: (-pair[0], pair[1].name),
    )
    return [
        SimilarMatch(
            ingredient_id=other.ingredient_id,
            name=other.name,
            shared_molecules=shared,
        )
        for shared, other in scored[:k]
        if shared > 0
    ]


# ---------------------------------------------------------------------------
# recipe completion
# ---------------------------------------------------------------------------
def complete_recipe(
    index: RetrievalIndex,
    catalog: IngredientCatalog,
    partial: Sequence[Ingredient],
    k: int = DEFAULT_TOPK,
    reference: bool = False,
) -> list[Completion]:
    """Best pairing completions for a partial recipe.

    Candidates are every pairable catalog ingredient outside the partial
    that shares at least one molecule with it, ranked by total shared
    molecules (equivalently, by the projected N_s of the completed
    recipe — the two orders coincide because the recipe size is fixed
    within one query). The indexed path gathers the per-candidate totals
    by walking the molecule postings of the partial's profiles; the
    reference path intersects profiles against the whole universe.

    Raises:
        ConfigurationError: for a non-positive ``k``.
        ValidationError: when no partial member has a flavor profile.
    """
    _require_k(k)
    members = [item for item in partial if item.has_flavor_profile]
    if not members:
        raise ValidationError(
            "recipe completion needs at least one ingredient "
            "with a flavor profile"
        )
    exclude = {item.ingredient_id for item in partial}
    base_pairs = _pair_sum(members)
    started = time.perf_counter()
    with span("retrieval.complete", partial=len(members), k=k):
        if reference:
            completions = _complete_reference(
                catalog, members, exclude, base_pairs, k
            )
        else:
            completions = _complete_indexed(
                index, members, exclude, base_pairs, k
            )
    _observe("complete", "reference" if reference else "indexed", started)
    return completions


def _pair_sum(members: Sequence[Ingredient]) -> int:
    """Sum of pairwise shared-molecule counts inside the partial."""
    total = 0
    for i, left in enumerate(members):
        for right in members[i + 1 :]:
            total += left.shared_molecules(right)
    return total


def _completion_scores(
    shared_total: int, base_pairs: int, n: int
) -> tuple[float, float]:
    """(projected N_s, delta vs the partial's own N_s)."""
    score = 2.0 * (base_pairs + shared_total) / ((n + 1) * n)
    base = 2.0 * base_pairs / (n * (n - 1)) if n >= 2 else 0.0
    return score, score - base


def _complete_indexed(
    index: RetrievalIndex,
    members: Sequence[Ingredient],
    exclude: set[int],
    base_pairs: int,
    k: int,
) -> list[Completion]:
    accumulated = np.zeros(index.size, dtype=np.int64)
    postings = index.molecule_postings
    for member in members:
        for molecule in member.flavor_profile:
            rows = postings.get(molecule)
            if rows is not None:
                accumulated[rows] += 1
    candidates = np.flatnonzero(accumulated > 0)
    if len(exclude):
        keep = [
            row
            for row in candidates
            if int(index.ingredient_ids[row]) not in exclude
        ]
        candidates = np.asarray(keep, dtype=np.int64)
    if not len(candidates):
        return []
    order = np.lexsort(
        (index.name_rank[candidates], -accumulated[candidates])
    )
    n = len(members)
    completions: list[Completion] = []
    for row in candidates[order[:k]]:
        shared_total = int(accumulated[row])
        score, delta = _completion_scores(shared_total, base_pairs, n)
        completions.append(
            Completion(
                ingredient_id=int(index.ingredient_ids[row]),
                name=index.names[int(row)],
                shared_total=shared_total,
                score=score,
                delta=delta,
            )
        )
    return completions


def _complete_reference(
    catalog: IngredientCatalog,
    members: Sequence[Ingredient],
    exclude: set[int],
    base_pairs: int,
    k: int,
) -> list[Completion]:
    scored = []
    for candidate in catalog.pairable_ingredients():
        if candidate.ingredient_id in exclude:
            continue
        shared_total = sum(
            candidate.shared_molecules(member) for member in members
        )
        if shared_total > 0:
            scored.append((shared_total, candidate))
    scored.sort(key=lambda pair: (-pair[0], pair[1].name))
    n = len(members)
    completions: list[Completion] = []
    for shared_total, candidate in scored[:k]:
        score, delta = _completion_scores(shared_total, base_pairs, n)
        completions.append(
            Completion(
                ingredient_id=candidate.ingredient_id,
                name=candidate.name,
                shared_total=shared_total,
                score=score,
                delta=delta,
            )
        )
    return completions


# ---------------------------------------------------------------------------
# nearest cuisines
# ---------------------------------------------------------------------------
def nearest_cuisines(
    index: RetrievalIndex,
    target_code: str,
    k: int = DEFAULT_TOPK,
    reference: bool = False,
    similarity: tuple[Sequence[str], np.ndarray] | None = None,
    cuisines: Mapping[str, Cuisine] | None = None,
) -> list[CuisineMatch]:
    """The cuisines closest to a target by ingredient-prevalence cosine.

    The indexed path is one matrix-vector product over the precomputed
    prevalence vectors. The reference path reuses a ``(codes, matrix)``
    pair from :func:`repro.analysis.authenticity.similarity_matrix`
    (pass ``similarity=workspace.similarity()`` to share the workspace's
    cached matrix) or computes per-pair similarities from raw ``cuisines``.

    Raises:
        ConfigurationError: for a non-positive ``k``, or a reference call
            without ``similarity`` or ``cuisines``.
        LookupFailure: for a region code outside the index.
    """
    _require_k(k)
    if target_code not in index.cuisine_row:
        known = ", ".join(index.cuisine_codes)
        raise LookupFailure(
            f"unknown cuisine {target_code!r} (known: {known})"
        )
    started = time.perf_counter()
    with span("retrieval.nearest_cuisines", k=k):
        if reference:
            matches = _nearest_reference(
                index, target_code, k, similarity, cuisines
            )
        else:
            matches = _nearest_indexed(index, target_code, k)
    _observe(
        "nearest_cuisines", "reference" if reference else "indexed", started
    )
    return matches


def _rank_cuisines(
    codes: Sequence[str], values: Sequence[float], target_code: str, k: int
) -> list[CuisineMatch]:
    rounded = [
        (round(float(value), SIMILARITY_DECIMALS), code)
        for code, value in zip(codes, values)
        if code != target_code
    ]
    rounded.sort(key=lambda pair: (-pair[0], pair[1]))
    return [
        CuisineMatch(region_code=code, similarity=value)
        for value, code in rounded[:k]
    ]


def _nearest_indexed(
    index: RetrievalIndex, target_code: str, k: int
) -> list[CuisineMatch]:
    row = index.cuisine_row[target_code]
    values = index.cuisine_vectors @ index.cuisine_vectors[row]
    return _rank_cuisines(index.cuisine_codes, values, target_code, k)


def _nearest_reference(
    index: RetrievalIndex,
    target_code: str,
    k: int,
    similarity: tuple[Sequence[str], np.ndarray] | None,
    cuisines: Mapping[str, Cuisine] | None,
) -> list[CuisineMatch]:
    if similarity is not None:
        codes, matrix = similarity
        if target_code not in codes:
            known = ", ".join(codes)
            raise LookupFailure(
                f"unknown cuisine {target_code!r} (known: {known})"
            )
        row = list(codes).index(target_code)
        return _rank_cuisines(codes, matrix[row], target_code, k)
    if cuisines is None:
        raise ConfigurationError(
            "reference nearest_cuisines needs 'similarity' or 'cuisines'"
        )
    from ..analysis.authenticity import cuisine_similarity

    codes = sorted(cuisines)
    if target_code not in cuisines:
        raise LookupFailure(f"unknown cuisine {target_code!r}")
    target = cuisines[target_code]
    values = [
        1.0
        if code == target_code
        else cuisine_similarity(target, cuisines[code])
        for code in codes
    ]
    return _rank_cuisines(codes, values, target_code, k)
