"""The retrieval index: inverted molecule postings + precomputed top-k lists.

The interactive workload is retrieval — "what pairs with X", "what
completes this recipe", "which cuisine is nearest" — and answering those
by scanning the full ingredient universe per query is O(n) set
intersections each time. :class:`RetrievalIndex` precomputes, once per
corpus build:

* **molecule postings**: molecule id → sorted array of index rows whose
  flavor profile contains it (the inverted index over the molecule
  universe). ``complete_recipe`` accumulates candidate overlap counts by
  walking the postings of the partial recipe's molecules instead of
  intersecting profiles against every catalog entry.
* **neighbor lists**: per ingredient, the positive-overlap partners
  sorted by ``(-shared molecules, name)`` and truncated to
  :data:`NEIGHBOR_LIST_LIMIT` — ``similar_ingredients`` becomes an array
  slice.
* **cuisine vectors**: L2-normalised ingredient-prevalence vectors per
  regional cuisine, so ``nearest_cuisines`` is one matrix-vector product
  (cosine similarity, the same measure as
  :func:`repro.analysis.authenticity.cuisine_similarity`).

The index is built as the fifth content-addressed engine stage
(``retrieval_index``; see :mod:`repro.engine.stages`), so a warm restart
loads it from the artifact store with builds=0 and its fingerprint never
depends on the worker count.
"""

from __future__ import annotations

import dataclasses
import functools
from collections.abc import Mapping

import numpy as np

from ..datamodel import Cuisine
from ..flavordb import IngredientCatalog
from ..obs import span

__all__ = ["NEIGHBOR_LIST_LIMIT", "RetrievalIndex", "build_retrieval_index"]

#: Positive-overlap partners retained per ingredient. Comfortably above
#: the serving cap (``MAX_TOPK``); kernels fall back to the brute-force
#: reference for larger ``k`` so answers stay exact.
NEIGHBOR_LIST_LIMIT = 100


@dataclasses.dataclass(frozen=True)
class RetrievalIndex:
    """Precomputed retrieval structures over one catalog + cuisine set.

    Attributes:
        ingredient_ids: catalog ids of the pairable ingredients, ascending
            (one *row* of the index per id).
        names: canonical ingredient name per row.
        neighbor_rows: ``(rows, NEIGHBOR_LIST_LIMIT)`` int32 — partner row
            indices sorted by ``(-shared, name)``, ``-1``-padded.
        neighbor_shared: shared-molecule count aligned with
            ``neighbor_rows`` (0-padded).
        molecule_postings: molecule id → ascending int32 row array of the
            ingredients whose profile contains it.
        cuisine_codes: region codes covered by ``cuisine_vectors``, sorted.
        cuisine_vectors: ``(cuisines, catalog size)`` float64 — per-cuisine
            ingredient prevalence, L2-normalised so cosine similarity is a
            dot product.
    """

    ingredient_ids: np.ndarray
    names: tuple[str, ...]
    neighbor_rows: np.ndarray
    neighbor_shared: np.ndarray
    molecule_postings: dict[int, np.ndarray]
    cuisine_codes: tuple[str, ...]
    cuisine_vectors: np.ndarray

    @property
    def size(self) -> int:
        """Number of indexed (pairable) ingredients."""
        return len(self.names)

    @functools.cached_property
    def row_by_id(self) -> dict[int, int]:
        """Catalog ingredient id → index row."""
        return {
            int(ingredient_id): row
            for row, ingredient_id in enumerate(self.ingredient_ids)
        }

    @functools.cached_property
    def name_rank(self) -> np.ndarray:
        """Per row, the ingredient's position in name-sorted order.

        The deterministic tie-breaker every ranking uses: equal overlap
        counts order by ascending name.
        """
        order = sorted(range(self.size), key=self.names.__getitem__)
        rank = np.empty(self.size, dtype=np.int64)
        for position, row in enumerate(order):
            rank[row] = position
        return rank

    @functools.cached_property
    def cuisine_row(self) -> dict[str, int]:
        """Region code → row of ``cuisine_vectors``."""
        return {code: row for row, code in enumerate(self.cuisine_codes)}


def build_retrieval_index(
    catalog: IngredientCatalog, cuisines: Mapping[str, Cuisine]
) -> RetrievalIndex:
    """Build the index from a catalog and the regional cuisines.

    Deterministic: depends only on the catalog contents and the cuisines'
    ingredient usage (iteration order of ``cuisines`` is irrelevant — codes
    are sorted), so the stage artifact is byte-stable at any worker count.
    """
    pairable = [
        ingredient for ingredient in catalog if ingredient.has_flavor_profile
    ]
    rows = len(pairable)
    names = tuple(ingredient.name for ingredient in pairable)
    ingredient_ids = np.asarray(
        [ingredient.ingredient_id for ingredient in pairable], dtype=np.int64
    )
    with span("retrieval.build_index", ingredients=rows):
        max_molecule = max(
            max(ingredient.flavor_profile) for ingredient in pairable
        )
        membership = np.zeros((rows, max_molecule + 1), dtype=np.float32)
        for row, ingredient in enumerate(pairable):
            membership[row, list(ingredient.flavor_profile)] = 1.0
        shared = (membership @ membership.T).astype(np.int64)
        np.fill_diagonal(shared, 0)

        name_order = sorted(range(rows), key=names.__getitem__)
        name_rank = np.empty(rows, dtype=np.int64)
        for position, row in enumerate(name_order):
            name_rank[row] = position

        neighbor_rows = np.full((rows, NEIGHBOR_LIST_LIMIT), -1, np.int32)
        neighbor_shared = np.zeros((rows, NEIGHBOR_LIST_LIMIT), np.int32)
        for row in range(rows):
            counts = shared[row]
            order = np.lexsort((name_rank, -counts))
            order = order[counts[order] > 0][:NEIGHBOR_LIST_LIMIT]
            neighbor_rows[row, : len(order)] = order
            neighbor_shared[row, : len(order)] = counts[order]

        postings: dict[int, np.ndarray] = {}
        for molecule in range(max_molecule + 1):
            members = np.flatnonzero(membership[:, molecule])
            if len(members):
                postings[int(molecule)] = members.astype(np.int32)

        codes = tuple(sorted(cuisines))
        vectors = np.zeros((len(codes), len(catalog)), dtype=np.float64)
        for position, code in enumerate(codes):
            cuisine = cuisines[code]
            total = len(cuisine)
            if total == 0:
                continue
            for ingredient_id, count in cuisine.ingredient_usage.items():
                vectors[position, ingredient_id] = count / total
            norm = float(np.linalg.norm(vectors[position]))
            if norm > 0:
                vectors[position] /= norm

        return RetrievalIndex(
            ingredient_ids=ingredient_ids,
            names=names,
            neighbor_rows=neighbor_rows,
            neighbor_shared=neighbor_shared,
            molecule_postings=postings,
            cuisine_codes=codes,
            cuisine_vectors=vectors,
        )
