"""``repro.retrieval`` — indexed top-k similarity & recommendation serving.

The pairing machinery answers "score this recipe"; the interactive
workload users actually generate is retrieval: most-similar ingredients,
best completions for a partial recipe, nearest cuisines. This package
turns those from O(universe) scans into index walks:

* :mod:`repro.retrieval.index` — :class:`RetrievalIndex`, the inverted
  molecule→ingredient postings plus precomputed sorted neighbor lists
  and cuisine prevalence vectors, built as the content-addressed
  ``retrieval_index`` engine stage.
* :mod:`repro.retrieval.queries` — the top-k kernels
  (:func:`similar_ingredients`, :func:`complete_recipe`,
  :func:`nearest_cuisines`), each with a retained ``reference=True``
  brute-force path and deterministic tie-breaking.

Served at ``POST /similar``, ``/complete`` and ``/recommend`` (see
:mod:`repro.service`) and from the ``repro similar`` / ``repro
recommend`` CLI subcommands.
"""

from .index import NEIGHBOR_LIST_LIMIT, RetrievalIndex, build_retrieval_index
from .queries import (
    DEFAULT_TOPK,
    MAX_TOPK,
    SIMILARITY_DECIMALS,
    Completion,
    CuisineMatch,
    SimilarMatch,
    complete_recipe,
    nearest_cuisines,
    similar_ingredients,
)

__all__ = [
    "NEIGHBOR_LIST_LIMIT",
    "RetrievalIndex",
    "build_retrieval_index",
    "DEFAULT_TOPK",
    "MAX_TOPK",
    "SIMILARITY_DECIMALS",
    "Completion",
    "CuisineMatch",
    "SimilarMatch",
    "complete_recipe",
    "nearest_cuisines",
    "similar_ingredients",
]
