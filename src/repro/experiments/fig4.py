"""Experiment ``fig4``: food-pairing Z-scores against the four null models.

Regenerates the paper's central result: every cuisine deviates from its
random counterpart — 16 regions toward uniform pairing (positive Z), 6
toward contrasting pairing (negative Z); preserving ingredient frequency
reproduces the pattern to a large extent (|Z| collapses), while preserving
category composition does not.
"""

from __future__ import annotations

import dataclasses

from typing import TYPE_CHECKING

from ..datamodel import REGIONS, PairingKind
from ..pairing import CuisinePairingResult, NullModel, analyze_cuisine
from ..reporting.tables import render_table
from .workspace import ExperimentWorkspace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..parallel import ParallelConfig


@dataclasses.dataclass(frozen=True, slots=True)
class Fig4Row:
    code: str
    expected: PairingKind
    z_random: float
    z_frequency: float
    z_category: float
    z_frequency_category: float
    effect_size: float

    @property
    def direction(self) -> PairingKind:
        return (
            PairingKind.UNIFORM
            if self.z_random > 0
            else PairingKind.CONTRASTING
        )

    @property
    def sign_matches_paper(self) -> bool:
        return self.direction is self.expected

    @property
    def frequency_explains(self) -> bool:
        """Frequency model collapses the deviation (paper's key finding)."""
        return abs(self.z_frequency) < abs(self.z_random)

    @property
    def category_does_not_explain(self) -> bool:
        """Category model leaves most of the deviation unexplained."""
        return abs(self.z_category) > abs(self.z_frequency)


#: Order in which Section II.C lists the uniform regions ("Italy, Africa,
#: Caribbean, ..."), presumed strongest-first.
PAPER_UNIFORM_ORDER: tuple[str, ...] = (
    "ITA", "AFR", "CBN", "GRC", "ESP", "USA", "INSC", "ME", "MEX", "ANZ",
    "SAM", "FRA", "THA", "CHN", "SEA", "CAN",
)

#: Order in which Section II.C lists the contrasting regions.
PAPER_CONTRASTING_ORDER: tuple[str, ...] = (
    "SCND", "JPN", "DACH", "BRI", "KOR", "EE",
)


@dataclasses.dataclass(frozen=True)
class Fig4Result:
    rows: tuple[Fig4Row, ...]
    n_samples: int
    details: dict[str, CuisinePairingResult]

    @property
    def all_signs_match(self) -> bool:
        return all(row.sign_matches_paper for row in self.rows)

    @property
    def uniform_count(self) -> int:
        return sum(
            1 for row in self.rows if row.direction is PairingKind.UNIFORM
        )

    @property
    def contrasting_count(self) -> int:
        return sum(
            1
            for row in self.rows
            if row.direction is PairingKind.CONTRASTING
        )

    @property
    def frequency_explains_everywhere(self) -> bool:
        return all(row.frequency_explains for row in self.rows)

    def positive_order_spearman(self) -> float:
        """Spearman correlation between our positive-group Z ordering and
        the order Section II.C lists the uniform regions in (presumed
        strongest-first). 1.0 = identical ordering."""
        from scipy import stats as scipy_stats

        by_code = {row.code: row for row in self.rows}
        observed = [-by_code[code].z_random for code in PAPER_UNIFORM_ORDER]
        listed = list(range(len(PAPER_UNIFORM_ORDER)))
        result = scipy_stats.spearmanr(listed, observed)
        return float(result.statistic)

    def render(self) -> str:
        ordered = sorted(self.rows, key=lambda row: -row.z_random)
        body = [
            [
                row.code,
                row.expected.value,
                row.z_random,
                row.z_frequency,
                row.z_category,
                row.z_frequency_category,
                row.sign_matches_paper,
            ]
            for row in ordered
        ]
        table = render_table(
            [
                "Region", "Paper", "Z(random)", "Z(freq)", "Z(cat)",
                "Z(freq+cat)", "Sign OK",
            ],
            body,
        )
        return (
            f"{table}\n\nuniform: {self.uniform_count}, "
            f"contrasting: {self.contrasting_count} "
            f"(paper: 16 / 6); samples per model: {self.n_samples}"
        )


def run_fig4(
    workspace: ExperimentWorkspace,
    n_samples: int = 100_000,
    models: tuple[NullModel, ...] = tuple(NullModel),
    parallel: "ParallelConfig | None" = None,
    seed: int | None = None,
) -> Fig4Result:
    """Food-pairing analysis of all 22 regions.

    Args:
        workspace: shared experiment workspace.
        n_samples: random recipes per model (paper: 100,000).
        models: null models to evaluate.
        parallel: when set, every (region, model) sampling shard fans out
            through one shared process pool; results are bit-identical
            for any worker count (see :mod:`repro.parallel`).
        seed: extra seed mixed into the shard generators (engine path).
    """
    cuisines = workspace.regional_cuisines()
    views = workspace.views()  # the engine's pairing_views artifact
    rows: list[Fig4Row] = []
    details: dict[str, CuisinePairingResult] = {}
    if parallel is not None:
        details = _analyze_parallel(
            views, cuisines, models, n_samples, parallel, seed
        )
    for region in REGIONS:
        if parallel is not None:
            result = details[region.code]
        else:
            result = analyze_cuisine(
                cuisines[region.code],
                workspace.catalog,
                models=models,
                n_samples=n_samples,
                view=views[region.code],
            )
            details[region.code] = result

        def z_of(model: NullModel) -> float:
            comparison = result.comparisons.get(model)
            return comparison.z_score if comparison is not None else 0.0

        rows.append(
            Fig4Row(
                code=region.code,
                expected=region.pairing,
                z_random=z_of(NullModel.RANDOM),
                z_frequency=z_of(NullModel.FREQUENCY),
                z_category=z_of(NullModel.CATEGORY),
                z_frequency_category=z_of(NullModel.FREQUENCY_CATEGORY),
                effect_size=result.comparisons[NullModel.RANDOM].effect_size,
            )
        )
    return Fig4Result(rows=tuple(rows), n_samples=n_samples, details=details)


def _analyze_parallel(
    views,
    cuisines,
    models: tuple[NullModel, ...],
    n_samples: int,
    parallel: "ParallelConfig",
    seed: int | None,
) -> dict[str, CuisinePairingResult]:
    """All 22 regions' pairing analyses through one shared worker pool.

    Publishing every region's view (the ``pairing_views`` stage
    artifact) up front lets slow regions' shards interleave with fast
    ones — one pool, one sweep, no per-region barrier.
    """
    from ..pairing import comparison_from_moments, cuisine_mean_score
    from ..parallel import sweep_pairing_moments

    moments_map = sweep_pairing_moments(
        views, models, n_samples, parallel, seed
    )
    details: dict[str, CuisinePairingResult] = {}
    for region in REGIONS:
        cuisine = cuisines[region.code]
        cuisine_mean = cuisine_mean_score(views[region.code])
        comparisons = {
            model: comparison_from_moments(
                cuisine_mean, model, moments_map[(region.code, model)]
            )
            for model in models
        }
        details[region.code] = CuisinePairingResult(
            region_code=region.code,
            cuisine_mean=cuisine_mean,
            recipe_count=len(cuisine),
            ingredient_count=len(cuisine.ingredient_ids),
            comparisons=comparisons,
        )
    return details
