"""Experiment ``fig2``: category-composition heat-map.

Regenerates the data behind Fig 2 and checks the paper's qualitative
claims:

* WORLD level (Additive excluded): Vegetable, Spice, Dairy, Herb, Plant,
  Meat, Fruit are the most frequently used categories;
* France, British Isles and Scandinavia use dairy more prominently than
  vegetables;
* Indian Subcontinent, Africa, Middle East and Caribbean are
  spice-predominant.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..analysis import (
    CATEGORY_ORDER,
    category_composition,
    composition_matrix,
    world_composition,
)
from ..datamodel import (
    DAIRY_FORWARD_CODES,
    MOST_USED_WORLD_CATEGORIES,
    SPICE_FORWARD_CODES,
    Category,
)
from ..reporting.tables import render_heatmap
from .workspace import ExperimentWorkspace


@dataclasses.dataclass(frozen=True)
class Fig2Result:
    row_labels: tuple[str, ...]
    column_labels: tuple[str, ...]
    shares: np.ndarray  # regions (+WORLD) x categories
    world_top_categories: tuple[str, ...]
    dairy_forward_ok: dict[str, bool]
    spice_forward_ok: dict[str, bool]

    @property
    def world_leaders_match(self) -> bool:
        """Whether the paper's seven most-used WORLD categories are our
        top seven (as a set; the exact order within is data-dependent)."""
        expected = {category.value for category in MOST_USED_WORLD_CATEGORIES}
        return set(self.world_top_categories[: len(expected)]) == expected

    @property
    def all_regional_claims_hold(self) -> bool:
        return all(self.dairy_forward_ok.values()) and all(
            self.spice_forward_ok.values()
        )

    def render(self) -> str:
        heatmap = render_heatmap(
            self.row_labels, self.column_labels, self.shares
        )
        lines = [
            heatmap,
            "",
            "WORLD top categories: " + ", ".join(self.world_top_categories[:7]),
            f"dairy-forward (FRA/BRI/SCND dairy > vegetable): {self.dairy_forward_ok}",
            f"spice-forward (INSC/AFR/ME/CBN spice is top): {self.spice_forward_ok}",
        ]
        return "\n".join(lines)


def run_fig2(workspace: ExperimentWorkspace) -> Fig2Result:
    """Compute the Fig 2 heat-map and the paper's qualitative checks."""
    cuisines = workspace.regional_cuisines()
    catalog = workspace.catalog
    rows, shares = composition_matrix(cuisines, catalog)

    world = world_composition(cuisines, catalog)
    world_ranked = tuple(
        category.value for category, _share in world.ranked()
    )

    dairy_ok: dict[str, bool] = {}
    for code in sorted(DAIRY_FORWARD_CODES):
        composition = category_composition(cuisines[code], catalog)
        dairy_ok[code] = composition.share(
            Category.DAIRY
        ) > composition.share(Category.VEGETABLE)

    spice_ok: dict[str, bool] = {}
    for code in sorted(SPICE_FORWARD_CODES):
        composition = category_composition(cuisines[code], catalog)
        top_category = composition.ranked()[0][0]
        spice_ok[code] = top_category is Category.SPICE

    return Fig2Result(
        row_labels=tuple(rows),
        column_labels=tuple(category.value for category in CATEGORY_ORDER),
        shares=shares,
        world_top_categories=world_ranked,
        dairy_forward_ok=dairy_ok,
        spice_forward_ok=spice_ok,
    )
