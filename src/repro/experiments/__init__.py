"""Experiment harness: one runner per paper table/figure.

The registry in :data:`EXPERIMENTS` maps experiment ids to their runners;
``python -m repro run <id>`` executes one and prints its rendering.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from .fig2 import Fig2Result, run_fig2
from .fig3 import Fig3aResult, Fig3bResult, run_fig3a, run_fig3b
from .fig4 import Fig4Result, Fig4Row, run_fig4
from .fig5 import Fig5Result, Fig5Row, run_fig5
from .table1 import Table1Result, Table1Row, run_table1
from .workspace import (
    ExperimentWorkspace,
    build_workspace,
    clear_workspace_cache,
    workspace_for,
)

#: Experiment id -> (runner, description). Runners take a workspace and
#: return a result object with a ``render()`` method.
EXPERIMENTS: dict[str, tuple[Callable[..., Any], str]] = {
    "table1": (run_table1, "Recipes and unique ingredients per region"),
    "fig2": (run_fig2, "Category-composition heat-map"),
    "fig3a": (run_fig3a, "Recipe size distribution"),
    "fig3b": (run_fig3b, "Ingredient popularity scaling"),
    "fig4": (run_fig4, "Food-pairing Z-scores vs four null models"),
    "fig5": (run_fig5, "Top contributing ingredients per cuisine"),
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentWorkspace",
    "build_workspace",
    "clear_workspace_cache",
    "workspace_for",
    "Fig2Result",
    "Fig3aResult",
    "Fig3bResult",
    "Fig4Result",
    "Fig4Row",
    "Fig5Result",
    "Fig5Row",
    "Table1Result",
    "Table1Row",
    "run_fig2",
    "run_fig3a",
    "run_fig3b",
    "run_fig4",
    "run_fig5",
    "run_table1",
]
