"""Experiment ``table1``: recipes & unique ingredients per region.

Regenerates Table 1 of the paper from the synthetic corpus. At full scale
the generated counts are calibrated to match the published numbers
exactly; the result records, per region, the generated and published
values and whether they agree.
"""

from __future__ import annotations

import dataclasses

from ..datamodel import REGIONS, TOTAL_RECIPES
from ..reporting.tables import render_table
from .workspace import ExperimentWorkspace


@dataclasses.dataclass(frozen=True, slots=True)
class Table1Row:
    code: str
    name: str
    recipes: int
    ingredients: int
    published_recipes: int
    published_ingredients: int

    @property
    def matches_published(self) -> bool:
        return (
            self.recipes == self.published_recipes
            and self.ingredients == self.published_ingredients
        )


@dataclasses.dataclass(frozen=True)
class Table1Result:
    rows: tuple[Table1Row, ...]
    total_recipes: int
    published_total: int

    @property
    def all_match(self) -> bool:
        return all(row.matches_published for row in self.rows) and (
            self.total_recipes == self.published_total
        )

    def render(self) -> str:
        body = [
            [
                row.name,
                row.code,
                row.recipes,
                row.published_recipes,
                row.ingredients,
                row.published_ingredients,
                row.matches_published,
            ]
            for row in self.rows
        ]
        table = render_table(
            [
                "Region", "Code", "Recipes", "Paper", "Ingredients",
                "Paper", "Match",
            ],
            body,
        )
        return (
            f"{table}\n\nTotal recipes: {self.total_recipes} "
            f"(paper: {self.published_total})"
        )


def run_table1(workspace: ExperimentWorkspace) -> Table1Result:
    """Compute Table 1 from the workspace's resolved cuisines."""
    cuisines = workspace.regional_cuisines()
    rows = []
    for region in REGIONS:
        cuisine = cuisines[region.code]
        rows.append(
            Table1Row(
                code=region.code,
                name=region.name,
                recipes=len(cuisine),
                ingredients=len(cuisine.ingredient_ids),
                published_recipes=region.recipe_count,
                published_ingredients=region.ingredient_count,
            )
        )
    total = sum(len(cuisine) for cuisine in workspace.cuisines.values())
    return Table1Result(
        rows=tuple(rows),
        total_recipes=total,
        published_total=TOTAL_RECIPES,
    )
