"""Experiment ``fig5``: top contributing ingredients per cuisine.

Regenerates Fig 5: for every cuisine, the three ingredients contributing
the most to its observed food-pairing character, measured as the
percentage change of the cuisine's mean pairing score when the ingredient
is removed (Section IV.C). For uniform cuisines the top contributors are
those whose removal lowers the score most; for contrasting cuisines,
those whose removal raises it most.
"""

from __future__ import annotations

import dataclasses

from typing import TYPE_CHECKING

from ..datamodel import REGIONS, PairingKind
from ..pairing import IngredientContribution, top_contributors
from ..reporting.tables import render_table
from .workspace import ExperimentWorkspace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..parallel import ParallelConfig


@dataclasses.dataclass(frozen=True)
class Fig5Row:
    code: str
    pairing: PairingKind
    top: tuple[IngredientContribution, ...]

    @property
    def contributions_have_expected_sign(self) -> bool:
        """Uniform cuisines: removal of top contributors lowers the score
        (chi < 0); contrasting cuisines: raises it (chi > 0)."""
        if self.pairing is PairingKind.UNIFORM:
            return all(item.chi_percent < 0 for item in self.top)
        return all(item.chi_percent > 0 for item in self.top)


@dataclasses.dataclass(frozen=True)
class Fig5Result:
    rows: tuple[Fig5Row, ...]

    def positive_rows(self) -> tuple[Fig5Row, ...]:
        return tuple(
            row for row in self.rows if row.pairing is PairingKind.UNIFORM
        )

    def negative_rows(self) -> tuple[Fig5Row, ...]:
        return tuple(
            row
            for row in self.rows
            if row.pairing is PairingKind.CONTRASTING
        )

    @property
    def all_signs_consistent(self) -> bool:
        return all(row.contributions_have_expected_sign for row in self.rows)

    def render(self) -> str:
        body = []
        for row in self.rows:
            names = ", ".join(
                f"{item.ingredient_name} ({item.chi_percent:+.1f}%)"
                for item in row.top
            )
            body.append([row.code, row.pairing.value, names])
        return render_table(["Region", "Pairing", "Top 3 contributors"], body)


def run_fig5(
    workspace: ExperimentWorkspace,
    top: int = 3,
    parallel: "ParallelConfig | None" = None,
) -> Fig5Result:
    """Top contributing ingredients for every region.

    With ``parallel`` set, each region's leave-one-out chi sweep runs as
    one worker task over the shared-memory view; the computation is exact,
    so results are identical to the serial path.
    """
    views = workspace.views()  # the engine's pairing_views artifact
    chi_map = None
    if parallel is not None:
        from ..parallel import sweep_contributions

        chi_map = sweep_contributions(views, parallel)
    rows: list[Fig5Row] = []
    for region in REGIONS:
        view = views[region.code]
        contributions = None
        if chi_map is not None:
            from ..pairing import contributions_from_chi

            contributions = contributions_from_chi(
                view, chi_map[region.code]
            )
        contributors = top_contributors(
            view,
            count=top,
            positive_pairing=region.pairing is PairingKind.UNIFORM,
            contributions=contributions,
        )
        rows.append(
            Fig5Row(
                code=region.code,
                pairing=region.pairing,
                top=tuple(contributors),
            )
        )
    return Fig5Result(rows=tuple(rows))
