"""Experiments ``fig3a`` and ``fig3b``: recipe sizes and popularity.

Fig 3a: recipe size distributions per region with cumulative inset — the
paper reports a bounded thin-tailed distribution with a mean of about nine
ingredients.

Fig 3b: ingredient popularity (normalised by the most popular ingredient)
against rank — an "exceptionally consistent scaling phenomenon" across all
cuisines, with a cumulative-share inset.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..analysis import (
    PopularityCurve,
    SizeDistribution,
    pooled_size_distribution,
    popularity_curve,
    scaling_collapse_error,
    size_distribution,
)
from ..reporting.tables import render_table
from .workspace import ExperimentWorkspace

#: The paper reports "an average of nine ingredients per recipe".
PAPER_MEAN_RECIPE_SIZE = 9.0
MEAN_SIZE_TOLERANCE = 1.0


@dataclasses.dataclass(frozen=True)
class Fig3aResult:
    distributions: dict[str, SizeDistribution]
    world: SizeDistribution

    @property
    def world_mean(self) -> float:
        return self.world.mean

    @property
    def mean_close_to_paper(self) -> bool:
        return (
            abs(self.world_mean - PAPER_MEAN_RECIPE_SIZE)
            <= MEAN_SIZE_TOLERANCE
        )

    @property
    def bounded_thin_tail(self) -> bool:
        """No recipe beyond the size cutoff and P(size > 20) is tiny."""
        tail = float(
            self.world.probability[self.world.sizes > 20].sum()
        )
        return bool(self.world.sizes.max() <= 30 and tail < 0.02)

    def render(self) -> str:
        rows = [
            [code, dist.mean, dist.std, int(dist.sizes.max())]
            for code, dist in sorted(self.distributions.items())
        ]
        rows.append(
            ["WORLD", self.world.mean, self.world.std, int(self.world.sizes.max())]
        )
        return render_table(["Region", "Mean size", "Std", "Max"], rows)


@dataclasses.dataclass(frozen=True)
class Fig3bResult:
    curves: dict[str, PopularityCurve]
    collapse_error: float

    @property
    def scaling_is_consistent(self) -> bool:
        """The normalised curves collapse within a tight band."""
        return self.collapse_error < 0.05

    def top_share(self, code: str, top: int = 20) -> float:
        """Share of all mentions captured by the top ``top`` ingredients."""
        curve = self.curves[code]
        index = min(top, len(curve.cumulative_share)) - 1
        return float(curve.cumulative_share[index])

    def render(self) -> str:
        rows = []
        for code, curve in sorted(self.curves.items()):
            rows.append(
                [
                    code,
                    curve.names[0],
                    int(curve.counts[0]),
                    self.top_share(code, 20),
                ]
            )
        table = render_table(
            ["Region", "Top ingredient", "Uses", "Top-20 share"], rows
        )
        return f"{table}\n\ncollapse error: {self.collapse_error:.4f}"


def run_fig3a(workspace: ExperimentWorkspace) -> Fig3aResult:
    """Recipe-size distributions for all regions plus the WORLD pool."""
    cuisines = workspace.regional_cuisines()
    distributions = {
        code: size_distribution(cuisine)
        for code, cuisine in cuisines.items()
    }
    world = pooled_size_distribution(workspace.cuisines)
    return Fig3aResult(distributions=distributions, world=world)


def run_fig3b(workspace: ExperimentWorkspace) -> Fig3bResult:
    """Popularity rank curves for all regions."""
    cuisines = workspace.regional_cuisines()
    curves = {
        code: popularity_curve(cuisine, workspace.catalog)
        for code, cuisine in cuisines.items()
    }
    return Fig3bResult(
        curves=curves,
        collapse_error=scaling_collapse_error(list(curves.values())),
    )
