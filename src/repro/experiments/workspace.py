"""Shared experiment workspace: a façade over the staged artifact engine.

Every experiment consumes the same pipeline output (generated raw corpus,
aliased recipes, cuisines grouped by region, numeric pairing views).
Those are no longer built monolithically: :mod:`repro.engine` resolves
them as five content-addressed stage artifacts (``corpus → aliasing →
cuisines → pairing_views → retrieval_index``), each cached in a shared
in-memory LRU and —
when the :class:`~repro.engine.RunConfig` enables it — a checksummed
disk store, so a second process warm-loads in seconds.

:class:`ExperimentWorkspace` remains the object every call site holds: a
thin immutable bundle assembled from the stage artifacts. Assembled
workspaces are additionally cached per ``(seed, recipe_scale,
include_world_only)`` with the same bounded-LRU, build-once-per-key
semantics the serving layer has always relied on.
"""

from __future__ import annotations

import dataclasses
import time
from collections import OrderedDict

import threading

import numpy as np

from ..aliasing import MatchReport
from ..corpus import DEFAULT_SEED, GeneratedCorpus
from ..datamodel import Cuisine, Recipe, region_codes
from ..engine import Engine, KeyedLocks, RunConfig
from ..flavordb import IngredientCatalog, default_catalog
from ..obs import get_logger, span
from ..pairing.views import CuisineView
from ..retrieval.index import RetrievalIndex

_LOG = get_logger("repro.workspace")


@dataclasses.dataclass(frozen=True)
class ExperimentWorkspace:
    """Everything the experiments need, assembled from stage artifacts.

    Attributes:
        corpus: the generated raw corpus.
        recipes: aliased (resolved) recipes.
        report: the aliasing curation report.
        cuisines: region code -> cuisine (includes WORLD-only mini-regions
            when generated).
        catalog: the ingredient catalog used throughout.
        seed: generation seed.
        recipe_scale: recipe-count scale factor used.
        pairing_views: numeric pairing views for the 22 Table 1 regions
            (the ``pairing_views`` stage artifact); built lazily when a
            workspace is constructed by hand.
        retrieval_index: the top-k retrieval index (the
            ``retrieval_index`` stage artifact); built lazily when a
            workspace is constructed by hand.
    """

    corpus: GeneratedCorpus
    recipes: tuple[Recipe, ...]
    report: MatchReport
    cuisines: dict[str, Cuisine]
    catalog: IngredientCatalog
    seed: int
    recipe_scale: float
    pairing_views: dict[str, CuisineView] | None = dataclasses.field(
        default=None, repr=False, compare=False
    )
    retrieval_index: RetrievalIndex | None = dataclasses.field(
        default=None, repr=False, compare=False
    )
    _similarity: tuple[list[str], np.ndarray] | None = dataclasses.field(
        default=None, init=False, repr=False, compare=False
    )

    def regional_cuisines(self) -> dict[str, Cuisine]:
        """Only the 22 Table 1 regions (no WORLD-only mini-regions)."""
        codes = set(region_codes())
        return {
            code: cuisine
            for code, cuisine in self.cuisines.items()
            if code in codes
        }

    def views(self) -> dict[str, CuisineView]:
        """Region code -> numeric pairing view (22 Table 1 regions).

        Engine-built workspaces carry the ``pairing_views`` stage
        artifact; hand-assembled ones (tests, ad-hoc scripts) build the
        views on first call and memoise them.
        """
        if self.pairing_views is None:
            from ..pairing import build_cuisine_view

            views = {
                code: build_cuisine_view(cuisine, self.catalog)
                for code, cuisine in self.regional_cuisines().items()
            }
            object.__setattr__(self, "pairing_views", views)
        assert self.pairing_views is not None
        return self.pairing_views

    def retrieval(self) -> RetrievalIndex:
        """The top-k retrieval index over the molecule universe.

        Engine-built workspaces carry the ``retrieval_index`` stage
        artifact; hand-assembled ones build it on first call and
        memoise it.
        """
        if self.retrieval_index is None:
            from ..retrieval import build_retrieval_index

            index = build_retrieval_index(
                self.catalog, self.regional_cuisines()
            )
            object.__setattr__(self, "retrieval_index", index)
        assert self.retrieval_index is not None
        return self.retrieval_index

    def similarity(self) -> tuple[list[str], np.ndarray]:
        """Cached ``(codes, matrix)`` cuisine-similarity pair.

        :func:`repro.analysis.authenticity.similarity_matrix` is O(n²)
        pairwise prevalence cosines; callers used to recompute it per
        call. The workspace computes it once and every consumer —
        including the ``nearest_cuisines`` reference path — shares the
        result.
        """
        if self._similarity is None:
            from ..analysis.authenticity import similarity_matrix

            object.__setattr__(
                self,
                "_similarity",
                similarity_matrix(self.regional_cuisines()),
            )
        assert self._similarity is not None
        return self._similarity


#: Workspaces retained in the LRU cache. Each full-scale workspace holds
#: tens of thousands of recipe objects, so the bound is deliberately small.
MAX_CACHED_WORKSPACES = 4

_CacheKey = tuple[int, float, bool]

_CACHE: OrderedDict[_CacheKey, ExperimentWorkspace] = OrderedDict()
_CACHE_LOCK = threading.Lock()
#: Per-key build dedup: concurrent callers asking for the same workspace
#: (e.g. service threads on a cold start) build it once, not N times.
#: KeyedLocks entries free themselves when the last waiter leaves, so
#: the table no longer grows with every distinct key ever requested.
_BUILD_LOCKS = KeyedLocks()


def _cache_get(key: _CacheKey) -> ExperimentWorkspace | None:
    with _CACHE_LOCK:
        workspace = _CACHE.get(key)
        if workspace is not None:
            _CACHE.move_to_end(key)
        return workspace


def _cache_put(key: _CacheKey, workspace: ExperimentWorkspace) -> None:
    with _CACHE_LOCK:
        _CACHE[key] = workspace
        _CACHE.move_to_end(key)
        while len(_CACHE) > MAX_CACHED_WORKSPACES:
            _CACHE.popitem(last=False)


def workspace_for(
    config: RunConfig, use_cache: bool = True
) -> ExperimentWorkspace:
    """Build (or fetch) the workspace one :class:`RunConfig` describes.

    This is the single parameter path: argparse, the HTTP service and
    the full-experiment script all construct a RunConfig and call here.
    The assembled-workspace cache is thread-safe and bounded (at most
    :data:`MAX_CACHED_WORKSPACES` entries, LRU) and concurrent requests
    for the same key build exactly once.
    """
    key = config.workspace_key()
    if not use_cache:
        return _build(config)
    workspace = _cache_get(key)
    if workspace is not None:
        return workspace
    with _BUILD_LOCKS.holding(key):
        workspace = _cache_get(key)  # built while we waited?
        if workspace is None:
            workspace = _build(config)
            _cache_put(key, workspace)
        return workspace


def build_workspace(
    seed: int = DEFAULT_SEED,
    recipe_scale: float = 1.0,
    include_world_only: bool = True,
    use_cache: bool = True,
) -> ExperimentWorkspace:
    """Legacy keyword entry point; delegates to :func:`workspace_for`.

    Direct callers (tests, examples) get the in-memory tiers only; disk
    caching is opted into through a RunConfig (``--cache-dir`` or
    ``$REPRO_CACHE_DIR``).
    """
    config = RunConfig(
        seed=seed,
        recipe_scale=recipe_scale,
        include_world_only=include_world_only,
    )
    return workspace_for(config, use_cache=use_cache)


def _build(config: RunConfig) -> ExperimentWorkspace:
    """Assemble a workspace from the engine's stage artifacts."""
    engine = Engine(config)
    with span(
        "workspace.build",
        seed=config.corpus_seed,
        recipe_scale=config.recipe_scale,
    ) as trace:
        started = time.perf_counter()
        corpus = engine.artifact("corpus")
        aliasing = engine.artifact("aliasing")
        cuisines = engine.artifact("cuisines")
        views = engine.artifact("pairing_views")
        retrieval = engine.artifact("retrieval_index")
        trace.incr("recipes", len(aliasing.recipes))
        trace.incr("cuisines", len(cuisines))
        _LOG.info(
            "workspace.built",
            seed=config.corpus_seed,
            recipe_scale=config.recipe_scale,
            recipes=len(aliasing.recipes),
            cuisines=len(cuisines),
            exact_rate=round(aliasing.report.exact_rate(), 4),
            seconds=round(time.perf_counter() - started, 3),
        )
        return ExperimentWorkspace(
            corpus=corpus,
            recipes=aliasing.recipes,
            report=aliasing.report,
            cuisines=cuisines,
            catalog=default_catalog(),
            seed=config.corpus_seed,
            recipe_scale=config.recipe_scale,
            pairing_views=views,
            retrieval_index=retrieval,
        )


def clear_workspace_cache() -> None:
    """Drop all cached workspaces and in-memory stage artifacts.

    Tests use this to bound memory; it also clears the engine's shared
    in-memory artifact tier so the drop actually releases the data.
    """
    from ..engine import clear_memory_tier

    with _CACHE_LOCK:
        _CACHE.clear()
    _BUILD_LOCKS.clear()
    clear_memory_tier()
