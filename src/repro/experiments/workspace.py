"""Shared experiment workspace: corpus -> aliasing -> cuisines, built once.

Every experiment consumes the same pipeline output (generated raw corpus,
aliased recipes, cuisines grouped by region). Building the full 45k-recipe
corpus takes on the order of a minute, so workspaces are cached per
``(seed, recipe_scale, include_world_only)``.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict

from ..aliasing import AliasingPipeline, MatchReport
from ..corpus import DEFAULT_SEED, CorpusGenerator, GeneratedCorpus
from ..datamodel import Cuisine, Recipe, build_cuisines, region_codes
from ..flavordb import IngredientCatalog
from ..obs import get_logger, span

_LOG = get_logger("repro.workspace")


@dataclasses.dataclass(frozen=True)
class ExperimentWorkspace:
    """Everything the experiments need, computed once.

    Attributes:
        corpus: the generated raw corpus.
        recipes: aliased (resolved) recipes.
        report: the aliasing curation report.
        cuisines: region code -> cuisine (includes WORLD-only mini-regions
            when generated).
        catalog: the ingredient catalog used throughout.
        seed: generation seed.
        recipe_scale: recipe-count scale factor used.
    """

    corpus: GeneratedCorpus
    recipes: tuple[Recipe, ...]
    report: MatchReport
    cuisines: dict[str, Cuisine]
    catalog: IngredientCatalog
    seed: int
    recipe_scale: float

    def regional_cuisines(self) -> dict[str, Cuisine]:
        """Only the 22 Table 1 regions (no WORLD-only mini-regions)."""
        codes = set(region_codes())
        return {
            code: cuisine
            for code, cuisine in self.cuisines.items()
            if code in codes
        }


#: Workspaces retained in the LRU cache. Each full-scale workspace holds
#: tens of thousands of recipe objects, so the bound is deliberately small.
MAX_CACHED_WORKSPACES = 4

_CacheKey = tuple[int, float, bool]

_CACHE: OrderedDict[_CacheKey, ExperimentWorkspace] = OrderedDict()
_CACHE_LOCK = threading.Lock()
#: Per-key build locks: concurrent callers asking for the same workspace
#: (e.g. service threads on a cold start) build it once, not N times.
_BUILD_LOCKS: dict[_CacheKey, threading.Lock] = {}


def _cache_get(key: _CacheKey) -> ExperimentWorkspace | None:
    with _CACHE_LOCK:
        workspace = _CACHE.get(key)
        if workspace is not None:
            _CACHE.move_to_end(key)
        return workspace


def _cache_put(key: _CacheKey, workspace: ExperimentWorkspace) -> None:
    with _CACHE_LOCK:
        _CACHE[key] = workspace
        _CACHE.move_to_end(key)
        while len(_CACHE) > MAX_CACHED_WORKSPACES:
            _CACHE.popitem(last=False)


def _build_lock(key: _CacheKey) -> threading.Lock:
    with _CACHE_LOCK:
        lock = _BUILD_LOCKS.get(key)
        if lock is None:
            lock = _BUILD_LOCKS[key] = threading.Lock()
        return lock


def build_workspace(
    seed: int = DEFAULT_SEED,
    recipe_scale: float = 1.0,
    include_world_only: bool = True,
    use_cache: bool = True,
) -> ExperimentWorkspace:
    """Build (or fetch from cache) the experiment workspace.

    The cache is thread-safe and bounded: at most
    :data:`MAX_CACHED_WORKSPACES` workspaces are retained (LRU), and
    concurrent requests for the same key build the workspace exactly once.
    """
    key = (seed, recipe_scale, include_world_only)
    if not use_cache:
        return _build(seed, recipe_scale, include_world_only)
    workspace = _cache_get(key)
    if workspace is not None:
        return workspace
    with _build_lock(key):
        workspace = _cache_get(key)  # built while we waited?
        if workspace is None:
            workspace = _build(seed, recipe_scale, include_world_only)
            _cache_put(key, workspace)
        return workspace


def _build(
    seed: int, recipe_scale: float, include_world_only: bool
) -> ExperimentWorkspace:
    with span(
        "workspace.build", seed=seed, recipe_scale=recipe_scale
    ) as trace:
        started = time.perf_counter()
        generator = CorpusGenerator(
            seed=seed,
            recipe_scale=recipe_scale,
            include_world_only=include_world_only,
        )
        corpus = generator.generate()
        pipeline = AliasingPipeline(generator.catalog)
        result = pipeline.resolve_corpus(corpus.raw_recipes)
        with span("workspace.cuisines"):
            cuisines = build_cuisines(result.recipes)
        trace.incr("recipes", len(result.recipes))
        trace.incr("cuisines", len(cuisines))
        _LOG.info(
            "workspace.built",
            seed=seed,
            recipe_scale=recipe_scale,
            recipes=len(result.recipes),
            cuisines=len(cuisines),
            exact_rate=round(result.report.exact_rate(), 4),
            seconds=round(time.perf_counter() - started, 3),
        )
        return ExperimentWorkspace(
            corpus=corpus,
            recipes=result.recipes,
            report=result.report,
            cuisines=cuisines,
            catalog=generator.catalog,
            seed=seed,
            recipe_scale=recipe_scale,
        )


def clear_workspace_cache() -> None:
    """Drop all cached workspaces (tests use this to bound memory)."""
    with _CACHE_LOCK:
        _CACHE.clear()
        _BUILD_LOCKS.clear()
