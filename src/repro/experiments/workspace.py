"""Shared experiment workspace: corpus -> aliasing -> cuisines, built once.

Every experiment consumes the same pipeline output (generated raw corpus,
aliased recipes, cuisines grouped by region). Building the full 45k-recipe
corpus takes on the order of a minute, so workspaces are cached per
``(seed, recipe_scale, include_world_only)``.
"""

from __future__ import annotations

import dataclasses

from ..aliasing import AliasingPipeline, MatchReport
from ..corpus import DEFAULT_SEED, CorpusGenerator, GeneratedCorpus
from ..datamodel import Cuisine, Recipe, build_cuisines, region_codes
from ..flavordb import IngredientCatalog


@dataclasses.dataclass(frozen=True)
class ExperimentWorkspace:
    """Everything the experiments need, computed once.

    Attributes:
        corpus: the generated raw corpus.
        recipes: aliased (resolved) recipes.
        report: the aliasing curation report.
        cuisines: region code -> cuisine (includes WORLD-only mini-regions
            when generated).
        catalog: the ingredient catalog used throughout.
        seed: generation seed.
        recipe_scale: recipe-count scale factor used.
    """

    corpus: GeneratedCorpus
    recipes: tuple[Recipe, ...]
    report: MatchReport
    cuisines: dict[str, Cuisine]
    catalog: IngredientCatalog
    seed: int
    recipe_scale: float

    def regional_cuisines(self) -> dict[str, Cuisine]:
        """Only the 22 Table 1 regions (no WORLD-only mini-regions)."""
        codes = set(region_codes())
        return {
            code: cuisine
            for code, cuisine in self.cuisines.items()
            if code in codes
        }


_CACHE: dict[tuple[int, float, bool], ExperimentWorkspace] = {}


def build_workspace(
    seed: int = DEFAULT_SEED,
    recipe_scale: float = 1.0,
    include_world_only: bool = True,
    use_cache: bool = True,
) -> ExperimentWorkspace:
    """Build (or fetch from cache) the experiment workspace."""
    key = (seed, recipe_scale, include_world_only)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    generator = CorpusGenerator(
        seed=seed,
        recipe_scale=recipe_scale,
        include_world_only=include_world_only,
    )
    corpus = generator.generate()
    pipeline = AliasingPipeline(generator.catalog)
    result = pipeline.resolve_corpus(corpus.raw_recipes)
    workspace = ExperimentWorkspace(
        corpus=corpus,
        recipes=result.recipes,
        report=result.report,
        cuisines=build_cuisines(result.recipes),
        catalog=generator.catalog,
        seed=seed,
        recipe_scale=recipe_scale,
    )
    if use_cache:
        _CACHE[key] = workspace
    return workspace


def clear_workspace_cache() -> None:
    """Drop all cached workspaces (tests use this to bound memory)."""
    _CACHE.clear()
