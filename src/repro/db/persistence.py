"""Save/load a :class:`~repro.db.database.Database` to a directory.

Layout::

    <directory>/
      _catalog.json      # table names in creation order + schemas
      <table>.csv        # one CSV per table, header = column names

CSV cells are rendered through a type-aware codec so a round trip restores
the exact Python values: INT/FLOAT/BOOL columns parse back from their
canonical spellings, TEXT passes through, JSON columns hold a JSON document,
and NULL is encoded as the empty cell with a sentinel escape for genuinely
empty strings.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from .database import Database
from .errors import SchemaError
from .schema import Column, ColumnType, ForeignKey, Schema

_CATALOG_FILE = "_catalog.json"
#: Sentinel distinguishing an empty TEXT cell from NULL in CSV.
_EMPTY_TEXT = "\\empty"
_NULL = ""


def _encode_cell(value: Any, column: Column) -> str:
    if value is None:
        return _NULL
    if column.type is ColumnType.JSON:
        return json.dumps(value, sort_keys=True)
    if column.type is ColumnType.BOOL:
        return "true" if value else "false"
    if column.type is ColumnType.TEXT:
        if value == "":
            return _EMPTY_TEXT
        if value in (_NULL,) or value.startswith("\\"):
            return "\\" + value
        return value
    return repr(value)


def _decode_cell(cell: str, column: Column) -> Any:
    if cell == _NULL:
        if column.nullable:
            return None
        if column.type is ColumnType.TEXT:
            # A non-nullable TEXT column can't hold NULL; an unescaped empty
            # cell written by external tooling means the empty string.
            return ""
        raise SchemaError(
            f"NULL cell for non-nullable column {column.name!r}"
        )
    if column.type is ColumnType.TEXT:
        if cell == _EMPTY_TEXT:
            return ""
        if cell.startswith("\\"):
            return cell[1:]
        return cell
    if column.type is ColumnType.INT:
        return int(cell)
    if column.type is ColumnType.FLOAT:
        return float(cell)
    if column.type is ColumnType.BOOL:
        if cell not in ("true", "false"):
            raise SchemaError(f"bad bool cell {cell!r} for {column.name!r}")
        return cell == "true"
    return json.loads(cell)


def _schema_to_json(schema: Schema) -> list[dict[str, Any]]:
    out = []
    for column in schema:
        entry: dict[str, Any] = {
            "name": column.name,
            "type": column.type.value,
            "nullable": column.nullable,
            "primary_key": column.primary_key,
            "unique": column.unique,
            "indexed": column.indexed,
        }
        if column.foreign_key is not None:
            entry["foreign_key"] = {
                "table": column.foreign_key.table,
                "column": column.foreign_key.column,
            }
        out.append(entry)
    return out


def _schema_from_json(entries: list[dict[str, Any]]) -> Schema:
    columns = []
    for entry in entries:
        foreign_key = None
        if "foreign_key" in entry:
            foreign_key = ForeignKey(
                entry["foreign_key"]["table"], entry["foreign_key"]["column"]
            )
        columns.append(
            Column(
                name=entry["name"],
                type=ColumnType(entry["type"]),
                nullable=entry.get("nullable", False),
                primary_key=entry.get("primary_key", False),
                unique=entry.get("unique", False),
                indexed=entry.get("indexed", False),
                foreign_key=foreign_key,
            )
        )
    return Schema(columns)


def save_database(database: Database, directory: str | Path) -> None:
    """Write ``database`` to ``directory`` (created if missing)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    catalog = {
        "name": database.name,
        "tables": [
            {
                "name": table.name,
                "schema": _schema_to_json(table.schema),
            }
            for table in database
        ],
    }
    with open(path / _CATALOG_FILE, "w", encoding="utf-8") as handle:
        json.dump(catalog, handle, indent=2, sort_keys=True)
    for table in database:
        names = table.schema.column_names
        columns = [table.schema.column(name) for name in names]
        with open(
            path / f"{table.name}.csv", "w", encoding="utf-8", newline=""
        ) as handle:
            writer = csv.writer(handle)
            writer.writerow(names)
            for row in table.rows():
                writer.writerow(
                    _encode_cell(row[name], column)
                    for name, column in zip(names, columns)
                )


def load_database(directory: str | Path) -> Database:
    """Load a database previously written by :func:`save_database`.

    Tables are recreated in their saved order so foreign keys resolve.

    Raises:
        SchemaError: on a missing catalog, missing table file, or a CSV
            header that disagrees with the catalog schema.
    """
    path = Path(directory)
    catalog_path = path / _CATALOG_FILE
    if not catalog_path.exists():
        raise SchemaError(f"no database catalog at {catalog_path}")
    with open(catalog_path, encoding="utf-8") as handle:
        catalog = json.load(handle)
    database = Database(catalog.get("name", "db"))
    for table_entry in catalog["tables"]:
        schema = _schema_from_json(table_entry["schema"])
        table = database.create_table(table_entry["name"], schema)
        csv_path = path / f"{table.name}.csv"
        if not csv_path.exists():
            raise SchemaError(f"missing table file {csv_path}")
        names = schema.column_names
        columns = [schema.column(name) for name in names]
        with open(csv_path, encoding="utf-8", newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                continue  # empty file: zero rows
            if tuple(header) != names:
                raise SchemaError(
                    f"header mismatch in {csv_path}: {header} != {list(names)}"
                )
            for cells in reader:
                if len(cells) != len(names):
                    raise SchemaError(
                        f"row width mismatch in {csv_path}: {cells!r}"
                    )
                table.insert(
                    {
                        name: _decode_cell(cell, column)
                        for name, column, cell in zip(names, columns, cells)
                    }
                )
    return database
