"""Embedded relational storage engine.

A small, dependency-free database: typed schemas, column-oriented tables
with primary-key/unique/secondary hash indexes and foreign keys, a fluent
query builder with hash joins and grouping, a SQL SELECT dialect, and
CSV+JSON persistence. It hosts the reproduction's CulinaryDB
(:mod:`repro.culinarydb`) and is usable on its own.
"""

from .aggregates import (
    Aggregate,
    avg,
    collect,
    count,
    count_distinct,
    max_,
    min_,
    stddev,
    sum_,
    variance,
)
from .database import Database
from .errors import (
    ConstraintViolation,
    DatabaseError,
    QueryError,
    SchemaError,
    SqlSyntaxError,
)
from .expressions import Expression, col, lit
from .persistence import load_database, save_database
from .query import Query
from .schema import Column, ColumnType, ForeignKey, Schema
from .table import Table
from .transactions import TransactionError, transaction

__all__ = [
    "Aggregate",
    "avg",
    "collect",
    "count",
    "count_distinct",
    "max_",
    "min_",
    "stddev",
    "sum_",
    "variance",
    "Database",
    "ConstraintViolation",
    "DatabaseError",
    "QueryError",
    "SchemaError",
    "SqlSyntaxError",
    "Expression",
    "col",
    "lit",
    "load_database",
    "save_database",
    "Query",
    "Column",
    "ColumnType",
    "ForeignKey",
    "Schema",
    "Table",
    "TransactionError",
    "transaction",
]
