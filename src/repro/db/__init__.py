"""Embedded relational storage engine.

A small database: typed schemas, column-oriented tables with
primary-key/unique/secondary hash indexes and foreign keys, a fluent
query builder with hash joins and grouping, a SQL dialect with prepared
statements and a per-database plan cache, and CSV+JSON persistence.
Supported queries run on a vectorised columnar executor
(:mod:`repro.db.columnar`, numpy-backed) with the row-at-a-time
reference executor retained behind ``Query.reference()`` /
``sql(..., reference=True)``; without numpy the engine falls back to the
row path everywhere. It hosts the reproduction's CulinaryDB
(:mod:`repro.culinarydb`) and is usable on its own.
"""

from .aggregates import (
    Aggregate,
    avg,
    collect,
    count,
    count_distinct,
    max_,
    min_,
    stddev,
    sum_,
    variance,
)
from .database import Database
from .errors import (
    ConstraintViolation,
    DatabaseError,
    QueryError,
    SchemaError,
    SqlSyntaxError,
)
from .expressions import Expression, Parameter, col, fold_constants, lit, transform
from .persistence import load_database, save_database
from .query import Query
from .schema import Column, ColumnType, ForeignKey, Schema
from .table import Table
from .transactions import TransactionError, transaction

__all__ = [
    "Aggregate",
    "avg",
    "collect",
    "count",
    "count_distinct",
    "max_",
    "min_",
    "stddev",
    "sum_",
    "variance",
    "Database",
    "ConstraintViolation",
    "DatabaseError",
    "QueryError",
    "SchemaError",
    "SqlSyntaxError",
    "Expression",
    "Parameter",
    "col",
    "fold_constants",
    "lit",
    "transform",
    "load_database",
    "save_database",
    "Query",
    "Column",
    "ColumnType",
    "ForeignKey",
    "Schema",
    "Table",
    "TransactionError",
    "transaction",
]
