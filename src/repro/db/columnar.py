"""Typed columnar blocks and vectorised query kernels.

This module is the fast half of the storage engine's two executors. A
:class:`ColumnStore` materialises a table's live rows as typed numpy
column blocks — ``int64`` / ``float64`` / ``bool`` arrays plus an
interned-string dictionary encoding for TEXT columns — and the kernels
below run filter / project / aggregate / group-by / order-by / limit as
whole-column operations:

* predicates compile to three-valued (Kleene) boolean masks — a pair of
  "definitely true" and "known" arrays — matching the row evaluator's
  NULL semantics in :mod:`repro.db.expressions` by construction;
* equality joins build sorted key runs over the right table and expand
  left/right row-index **gather arrays** (:func:`_hash_join_gather`), so
  inner and left joins — NULL keys matching nothing — run as whole-array
  searchsorted/repeat kernels over a :class:`JoinRelation` whose columns
  gather lazily from the source tables;
* group-by factorises key columns into dense codes and picks a **hash**
  strategy (direct code-grid bincount) when the key-space is small, or a
  **sort** strategy (``np.unique`` compression) otherwise, always
  emitting groups in first-seen row order like the row executor;
* aggregates use sequential in-order accumulation (``np.add.at`` /
  ``np.bincount`` / ``np.minimum.at``); float results are produced by
  the same left-to-right reduction order as the reference fold, and
  stddev/variance share one-pass count/sum/sumsq moments with the
  reference aggregates (:mod:`repro.db.aggregates`), so both executors
  agree bit-for-bit;
* the grouped tail (HAVING / projection / ORDER BY over aggregate
  output) re-enters the same mask/projection/lexsort kernels over a
  :class:`RowsRelation` built from the per-group results — no Python
  per-group-row loop;
* order-by builds ``np.lexsort`` keys with an explicit NULLs-last flag
  and stable tie-breaks, reproducing the row executor's ordering.

Every entry point returns ``None`` (or raises :class:`Unsupported`
internally) when a query shape falls outside the vectorised subset —
``collect`` aggregates, JSON columns in predicates or join keys, string
arithmetic, self-joins, potential int64 overflow — and the caller falls
back to the reference row executor, which remains the semantic ground
truth. Fallbacks are counted per reason family in the
``repro_sql_fallback_total`` metric (see :func:`fallback_family`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from .aggregates import stddev_from_moments, variance_from_moments
from .errors import QueryError
from .expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
)
from .schema import ColumnType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .query import Query
    from .table import Table

#: Int64 magnitude ceiling for vectorised arithmetic/aggregation; inputs
#: that could overflow past this fall back to the (arbitrary-precision)
#: row executor.
_INT_GUARD = 2**62

#: Aggregate kinds the vectorised executor can compute. Only collect
#: (materialising Python lists per group) stays on the reference path.
SUPPORTED_AGGREGATES = frozenset(
    {
        "count_star",
        "count",
        "count_distinct",
        "sum",
        "avg",
        "min",
        "max",
        "stddev",
        "variance",
    }
)

#: Largest integer magnitude that float64 represents exactly; mixed
#: int/float join keys beyond it could produce false equalities.
_FLOAT_EXACT_INT = 2**53

#: Counter name for reference-executor fallbacks, labelled by reason
#: family (``repro_sql_fallback_total{reason=...}``).
FALLBACK_TOTAL = "repro_sql_fallback_total"


class Unsupported(Exception):
    """Internal signal: this query shape needs the reference executor."""


#: Ordered ``(substring, family)`` probes classifying Unsupported
#: messages into the low-cardinality ``reason`` label of
#: :data:`FALLBACK_TOTAL`. First match wins, so specific probes
#: (``int64``, ``json``) come before generic ones (``column``).
_FALLBACK_FAMILIES = (
    ("join", "join"),
    ("aggregat", "aggregate"),
    ("int64", "int64_range"),
    ("json", "json"),
    ("object", "json"),
    ("column", "unknown_column"),
    ("order", "ordering"),
    ("resolve", "unknown_column"),
    ("group", "grouping"),
    ("constant", "constant"),
)


def fallback_family(message: str) -> str:
    """Slug family for one :class:`Unsupported` message (metric label)."""
    lowered = message.lower()
    for probe, family in _FALLBACK_FAMILIES:
        if probe in lowered:
            return family
    return "other"


def _count_fallback(family: str) -> None:
    try:
        from ..obs import get_registry

        get_registry().counter(FALLBACK_TOTAL, reason=family).incr()
    except Exception:  # pragma: no cover - metrics must never break queries
        pass


# ----------------------------------------------------------------------
# column blocks
# ----------------------------------------------------------------------
class ColumnBlock:
    """One typed column: value array + validity mask (+ dictionary).

    Attributes:
        kind: ``"int"``, ``"float"``, ``"bool"``, ``"text"`` or
            ``"object"`` (JSON passthrough).
        values: ``int64`` / ``float64`` / ``bool`` array; for text, an
            ``int64`` code array (``-1`` for NULL); for object, the raw
            Python list.
        valid: boolean array, ``False`` where the value is NULL.
        dictionary: interned TEXT values in first-appearance order.
    """

    __slots__ = ("kind", "values", "valid", "dictionary", "_order")

    def __init__(self, kind, values, valid, dictionary=None):
        self.kind = kind
        self.values = values
        self.valid = valid
        self.dictionary = dictionary
        self._order = None

    def order_keys(self):
        """``(sorted_values, ranks)`` for dictionary-order comparisons.

        ``ranks[code]`` is the position of that code's string in sorted
        order; ``sorted_values`` is a numpy unicode array usable with
        ``np.searchsorted``.
        """
        if self._order is None:
            words = np.array(self.dictionary if self.dictionary else [""])
            order = np.argsort(words, kind="stable")
            ranks = np.empty(len(words), dtype=np.int64)
            ranks[order] = np.arange(len(words), dtype=np.int64)
            self._order = (words[order], ranks)
        return self._order

    def code_of(self, value: str) -> int:
        """Dictionary code for ``value`` (``-1`` when not interned)."""
        if self.dictionary is None:
            return -1
        try:
            return self.dictionary.index(value)
        except ValueError:
            return -1


def _build_block(column_type: ColumnType, raw: list[Any]) -> ColumnBlock:
    n = len(raw)
    valid = np.fromiter(
        (value is not None for value in raw), dtype=bool, count=n
    )
    if column_type is ColumnType.JSON:
        return ColumnBlock("object", raw, valid)
    if column_type is ColumnType.TEXT:
        codes = np.empty(n, dtype=np.int64)
        interned: dict[str, int] = {}
        for index, value in enumerate(raw):
            if value is None:
                codes[index] = -1
            else:
                code = interned.get(value)
                if code is None:
                    code = interned.setdefault(value, len(interned))
                codes[index] = code
        return ColumnBlock("text", codes, valid, tuple(interned))
    if column_type is ColumnType.BOOL:
        values = np.fromiter(
            (False if value is None else value for value in raw),
            dtype=bool,
            count=n,
        )
        return ColumnBlock("bool", values, valid)
    dtype = np.int64 if column_type is ColumnType.INT else np.float64
    fill = 0 if column_type is ColumnType.INT else 0.0
    try:
        values = np.fromiter(
            (fill if value is None else value for value in raw),
            dtype=dtype,
            count=n,
        )
    except OverflowError as exc:  # Python ints beyond int64: row path only
        raise Unsupported("column value outside int64 range") from exc
    kind = "int" if column_type is ColumnType.INT else "float"
    return ColumnBlock(kind, values, valid)


class ColumnStore:
    """Lazily-built columnar image of one table's live rows.

    Blocks are built per column on first touch (projection push-down:
    untouched columns are never materialised) and cached on the owning
    table until its row data changes (tracked by ``Table.version``).
    """

    def __init__(self, table: "Table") -> None:
        self._table = table
        self.version = table.version
        self.row_count = len(table)
        self._blocks: dict[str, ColumnBlock] = {}

    def block(self, name: str) -> ColumnBlock:
        block = self._blocks.get(name)
        if block is None:
            column = self._table.schema.column(name)
            block = _build_block(
                column.type, self._table.column_values(name)
            )
            self._blocks[name] = block
        return block

    def resolve(self, name: str) -> ColumnBlock:
        """Resolve a possibly-qualified column reference to a block."""
        schema = self._table.schema
        if name in schema:
            return self.block(name)
        if "." in name:
            bare = name.rsplit(".", 1)[-1]
            if bare in schema:
                return self.block(bare)
        raise Unsupported(f"unknown column {name!r}")

    @property
    def output_names(self) -> list[str]:
        return list(self._table.schema.column_names)


# ----------------------------------------------------------------------
# join and grouped relations
# ----------------------------------------------------------------------
def _resolve_output_name(name: str, names) -> str:
    """:class:`ColumnRef` resolution over merged-row output names.

    Mirrors ``ColumnRef.evaluate`` over a dict row: exact key first,
    unqualified names by unique ``.suffix`` match, qualified names by
    bare-suffix fallback. Ambiguous/unknown names raise
    :class:`Unsupported`, routing the query to the reference executor,
    which raises the user-facing :class:`QueryError` with row context.
    """
    if name in names:
        return name
    if "." not in name:
        suffix = "." + name
        matches = [key for key in names if key.endswith(suffix)]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise Unsupported(f"ambiguous column {name!r}")
    else:
        bare = name.rsplit(".", 1)[1]
        if bare in names:
            return bare
    raise Unsupported(f"unknown column {name!r}")


def _gather_block(block: ColumnBlock, gather: np.ndarray) -> ColumnBlock:
    """Pick ``gather`` rows from ``block``; ``-1`` entries produce NULL."""
    n = len(gather)
    if len(block.valid) == 0:
        # Empty source table (every slot is a LEFT JOIN null pad).
        if block.kind == "object":
            return ColumnBlock("object", [None] * n, np.zeros(n, dtype=bool))
        if block.kind == "text":
            return ColumnBlock(
                "text",
                np.full(n, -1, dtype=np.int64),
                np.zeros(n, dtype=bool),
                block.dictionary,
            )
        dtype = {"int": np.int64, "float": np.float64, "bool": bool}[
            block.kind
        ]
        return ColumnBlock(
            block.kind, np.zeros(n, dtype=dtype), np.zeros(n, dtype=bool)
        )
    padded = gather < 0
    safe = np.where(padded, 0, gather)
    valid = block.valid[safe] & ~padded
    if block.kind == "object":
        source = block.values
        values = [
            None if position < 0 else source[position]
            for position in gather.tolist()
        ]
        return ColumnBlock("object", values, valid)
    values = block.values[safe]
    if bool(padded.any()):
        # to_pylist keys text NULLs off code -1, so pads must not alias
        # a real dictionary code; numeric/bool fills are masked anyway.
        values[padded] = -1 if block.kind == "text" else 0
    return ColumnBlock(block.kind, values, valid, block.dictionary)


class JoinRelation:
    """Gather-composed columnar image of a joined row set.

    Each source table contributes its :class:`ColumnStore` plus a
    row-index gather array aligned with the join output (``None`` means
    identity; ``-1`` marks the null-padded side of an unmatched LEFT
    JOIN row). Output column names mirror the reference executor's
    ``_merge_rows``: base-table names stay bare, joined columns keep
    their bare name unless it collides, in which case they become
    ``"table.column"``. Blocks gather lazily per column and are cached,
    so projection push-down still holds across joins.
    """

    def __init__(self, row_count, sources, columns) -> None:
        self.row_count = row_count
        #: list of ``(ColumnStore, gather array | None)`` per source.
        self.sources = sources
        #: output name -> ``(source index, source column name)``.
        self.columns = columns
        self._cache: dict[str, ColumnBlock] = {}

    @property
    def output_names(self) -> list[str]:
        return list(self.columns)

    def block(self, name: str) -> ColumnBlock:
        block = self._cache.get(name)
        if block is None:
            source_index, column = self.columns[name]
            store, gather = self.sources[source_index]
            block = store.block(column)
            if gather is not None:
                block = _gather_block(block, gather)
            self._cache[name] = block
        return block

    def resolve(self, name: str) -> ColumnBlock:
        return self.block(_resolve_output_name(name, self.columns))


class RowsRelation:
    """Columnar view over already-materialised grouped output columns."""

    def __init__(self, names, blocks, row_count) -> None:
        self.output_names = list(names)
        self._blocks = blocks
        self.row_count = row_count

    def resolve(self, name: str) -> ColumnBlock:
        return self._blocks[_resolve_output_name(name, self._blocks)]


def _block_from_pylist(values: list[Any]) -> ColumnBlock:
    """Typed block from per-group Python values (grouped tail input)."""
    n = len(values)
    valid = np.fromiter(
        (value is not None for value in values), dtype=bool, count=n
    )
    present = [value for value in values if value is not None]
    if not present:
        return ColumnBlock("float", np.zeros(n, dtype=np.float64), valid)
    if all(isinstance(value, bool) for value in present):
        data = np.fromiter(
            (bool(value) for value in values), dtype=bool, count=n
        )
        return ColumnBlock("bool", data, valid)
    if all(
        isinstance(value, int) and not isinstance(value, bool)
        for value in present
    ):
        if any(abs(value) >= 2**63 for value in present):
            raise Unsupported("grouped value outside int64 range")
        data = np.fromiter(
            (0 if value is None else value for value in values),
            dtype=np.int64,
            count=n,
        )
        return ColumnBlock("int", data, valid)
    if all(isinstance(value, float) for value in present):
        data = np.fromiter(
            (0.0 if value is None else value for value in values),
            dtype=np.float64,
            count=n,
        )
        return ColumnBlock("float", data, valid)
    if all(isinstance(value, str) for value in present):
        codes = np.empty(n, dtype=np.int64)
        interned: dict[str, int] = {}
        for index, value in enumerate(values):
            if value is None:
                codes[index] = -1
            else:
                code = interned.get(value)
                if code is None:
                    code = interned.setdefault(value, len(interned))
                codes[index] = code
        return ColumnBlock("text", codes, valid, tuple(interned))
    raise Unsupported("mixed-type grouped values")


def _vocab_codes(block: ColumnBlock, vocab: np.ndarray) -> np.ndarray:
    """Per-row ranks of a text block's values under a merged vocabulary."""
    words = np.array(list(block.dictionary or ("",)))
    ranks = np.searchsorted(vocab, words)
    return ranks[np.clip(block.values, 0, None)]


def _join_codes(
    left: ColumnBlock, right: ColumnBlock
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Common-domain comparable key arrays for one equality join.

    Returns ``(left_codes, left_valid, right_codes, right_valid)``. Text
    keys are ranked under a merged vocabulary; numeric keys share int64,
    or float64 when either side is float (guarded so no exactness is
    lost). Text-vs-numeric keys can never compare equal — the reference
    bucket probe misses on type mismatch — so the right side collapses
    to an empty domain and every left row is unmatched.
    """
    for block in (left, right):
        if block.kind == "object":
            raise Unsupported("join key over JSON column")
    if left.kind == "text" or right.kind == "text":
        if left.kind != right.kind:
            return (
                np.zeros(len(left.valid), dtype=np.int64),
                left.valid,
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=bool),
            )
        vocab = np.array(
            sorted(set(left.dictionary or ()) | set(right.dictionary or ()))
            or [""]
        )
        return (
            _vocab_codes(left, vocab),
            left.valid,
            _vocab_codes(right, vocab),
            right.valid,
        )
    left_values = (
        left.values.astype(np.int64) if left.kind == "bool" else left.values
    )
    right_values = (
        right.values.astype(np.int64)
        if right.kind == "bool"
        else right.values
    )
    if left.kind == "float" or right.kind == "float":
        for block, values in ((left, left_values), (right, right_values)):
            picked = values[block.valid]
            if picked.size == 0:
                continue
            if picked.dtype == np.int64:
                if (
                    int(picked.max()) >= _FLOAT_EXACT_INT
                    or int(picked.min()) <= -_FLOAT_EXACT_INT
                ):
                    raise Unsupported("join key outside exact float range")
            elif bool(np.isnan(picked).any()):
                # NaN never equals itself, and its sort position would
                # corrupt the searchsorted runs; the reference executor
                # owns this (pathological) shape.
                raise Unsupported("NaN join key")
        left_values = left_values.astype(np.float64)
        right_values = right_values.astype(np.float64)
    return left_values, left.valid, right_values, right.valid


def _hash_join_gather(
    left_codes: np.ndarray,
    left_valid: np.ndarray,
    right_codes: np.ndarray,
    right_valid: np.ndarray,
    how: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised equality-join row gather.

    Returns ``(left_take, right_take)`` output row-index arrays over the
    left relation and the right table; ``right_take`` is ``-1`` on the
    null-padded side of unmatched LEFT JOIN rows. NULL keys (invalid on
    either side) match nothing. Output order matches the reference
    executor — left rows in order, each left row's right matches in
    right-table row order — because the argsort below is stable, so
    rows sharing a key keep their original relative order.
    """
    n = len(left_codes)
    candidates = np.flatnonzero(right_valid)
    order = candidates[
        np.argsort(right_codes[candidates], kind="stable")
    ]
    sorted_codes = right_codes[order]
    starts = np.searchsorted(sorted_codes, left_codes, side="left")
    ends = np.searchsorted(sorted_codes, left_codes, side="right")
    counts = np.where(left_valid, ends - starts, 0)
    if how == "inner":
        out_counts = counts
    else:
        out_counts = np.maximum(counts, 1)
    total = int(out_counts.sum())
    left_take = np.repeat(np.arange(n, dtype=np.int64), out_counts)
    bases = np.repeat(np.cumsum(out_counts) - out_counts, out_counts)
    within = np.arange(total, dtype=np.int64) - bases
    slots = np.repeat(starts, out_counts) + within
    if how == "inner":
        return left_take, order[slots]
    matched = counts[left_take] > 0
    right_take = np.full(total, -1, dtype=np.int64)
    if order.size:
        right_take[matched] = order[slots[matched]]
    return left_take, right_take


def _apply_columnar_join(database, relation: JoinRelation, join):
    right_table = database.table(join.table_name)
    right_store = right_table.columnar()
    if join.right_column not in right_table.schema:
        # The reference bucket build raises KeyError for this shape.
        raise Unsupported(f"unknown join column {join.right_column!r}")
    left_block = relation.resolve(join.left_column)
    right_block = right_store.block(join.right_column)
    left_take, right_take = _hash_join_gather(
        *_join_codes(left_block, right_block), join.how
    )
    sources = [
        (store, gather[left_take] if gather is not None else left_take)
        for store, gather in relation.sources
    ]
    sources.append((right_store, right_take))
    columns = dict(relation.columns)
    right_index = len(sources) - 1
    for name in right_table.schema.column_names:
        key = name if name not in columns else f"{join.table_name}.{name}"
        columns[key] = (right_index, name)
    return JoinRelation(len(left_take), sources, columns)


def _build_join_relation(query: "Query") -> JoinRelation:
    """Lower ``query``'s join chain into one gather-composed relation."""
    database = query._database
    seen = {query._table_name}
    for join in query._joins:
        if join.table_name in seen:
            raise Unsupported("self-join or repeated join table")
        seen.add(join.table_name)
    base = database.table(query._table_name)
    store = base.columnar()
    relation = JoinRelation(
        store.row_count,
        [(store, None)],
        {name: (0, name) for name in base.schema.column_names},
    )
    for join in query._joins:
        relation = _apply_columnar_join(database, relation, join)
    return relation


# ----------------------------------------------------------------------
# vectorised expression values
# ----------------------------------------------------------------------
class Vec:
    """A vectorised expression result.

    Either a scalar (``values`` holds the Python value, ``valid`` is
    ``None``) or an array of ``kind`` with a validity mask. Predicate
    results are ``kind="bool"`` tri-states: ``values & valid`` is
    "definitely true", ``valid & ~values`` "definitely false", and
    ``~valid`` "unknown" (NULL).
    """

    __slots__ = ("kind", "values", "valid", "dictionary")

    def __init__(self, kind, values, valid, dictionary=None):
        self.kind = kind
        self.values = values
        self.valid = valid
        self.dictionary = dictionary

    @property
    def is_scalar(self) -> bool:
        return self.valid is None

    def take(self, indices) -> "Vec":
        if self.is_scalar:
            return self
        if self.kind == "object":
            picked = [self.values[int(i)] for i in indices]
            return Vec("object", picked, self.valid[indices])
        return Vec(
            self.kind,
            self.values[indices],
            self.valid[indices],
            self.dictionary,
        )

    def to_pylist(self) -> list[Any]:
        """Materialise as Python scalars with ``None`` for NULLs."""
        if self.is_scalar:
            raise Unsupported("scalar vec has no length")
        if self.kind == "object":
            return [
                value if ok else None
                for value, ok in zip(self.values, self.valid.tolist())
            ]
        if self.kind == "text":
            dictionary = self.dictionary or ()
            return [
                dictionary[code] if code >= 0 else None
                for code in self.values.tolist()
            ]
        out = self.values.tolist()
        if not bool(self.valid.all()):
            flags = self.valid.tolist()
            out = [
                value if ok else None for value, ok in zip(out, flags)
            ]
        return out


def _safe_eval(expr: Expression) -> Any:
    """Evaluate a constant expression; fallback instead of raising.

    The reference executor raises per-row errors only when rows exist, so
    a constant subtree that would error must not fail at plan time — it
    routes the whole query to the reference path instead.
    """
    try:
        return expr.evaluate({})
    except (QueryError, TypeError) as exc:
        raise Unsupported(f"constant subtree errors at runtime: {exc}") from exc


def _scalar_vec(value: Any) -> Vec:
    if value is None:
        kind = "null"
    elif isinstance(value, bool):
        kind = "bool"
    elif isinstance(value, int):
        kind = "int"
    elif isinstance(value, float):
        kind = "float"
    elif isinstance(value, str):
        kind = "text"
    else:
        kind = "object"
    return Vec(kind, value, None)


def _broadcast_bool(value: bool | None, n: int) -> Vec:
    if value is None:
        return Vec("bool", np.zeros(n, dtype=bool), np.zeros(n, dtype=bool))
    values = (
        np.ones(n, dtype=bool) if value else np.zeros(n, dtype=bool)
    )
    return Vec("bool", values, np.ones(n, dtype=bool))


_NUMERIC = ("int", "float", "bool")


class Compiler:
    """Compile expression trees into :class:`Vec` columns over a relation.

    The relation is any column provider with ``row_count`` and
    ``resolve(name) -> ColumnBlock``: a table's :class:`ColumnStore`, a
    :class:`JoinRelation` over gathered blocks, or the grouped tail's
    :class:`RowsRelation`.
    """

    def __init__(self, store) -> None:
        self._store = store
        self.n = store.row_count
        self.touched: set[str] = set()

    # -- entry points ---------------------------------------------------
    def value(self, expr: Expression) -> Vec:
        if isinstance(expr, Literal):
            return _scalar_vec(expr.value)
        if isinstance(expr, ColumnRef):
            self.touched.add(expr.name)
            block = self._store.resolve(expr.name)
            return Vec(
                block.kind, block.values, block.valid, block.dictionary
            )
        if isinstance(expr, Arithmetic):
            return self._arithmetic(expr)
        if isinstance(
            expr, (Comparison, BooleanOp, Not, InList, IsNull, Like)
        ):
            return self.predicate(expr)
        raise Unsupported(f"cannot vectorise {type(expr).__name__}")

    def predicate(self, expr: Expression) -> Vec:
        """Compile a predicate into a tri-state boolean Vec."""
        if isinstance(expr, Comparison):
            return self._compare(expr)
        if isinstance(expr, BooleanOp):
            return self._boolean(expr)
        if isinstance(expr, Not):
            inner = self._as_tristate(self.predicate(expr.inner))
            return Vec("bool", inner.valid & ~inner.values, inner.valid)
        if isinstance(expr, IsNull):
            return self._is_null(expr)
        if isinstance(expr, InList):
            return self._in_list(expr)
        if isinstance(expr, Like):
            return self._like(expr)
        if isinstance(expr, Literal):
            return _scalar_vec(expr.value)
        if isinstance(expr, ColumnRef):
            # Bare column in boolean position: truthiness of the value.
            vec = self.value(expr)
            return self._truthy(vec)
        raise Unsupported(f"cannot vectorise predicate {type(expr).__name__}")

    def mask(self, expr: Expression | None) -> np.ndarray:
        """Filter mask: rows where the predicate is definitely true."""
        if expr is None:
            return np.ones(self.n, dtype=bool)
        tri = self._as_tristate(self.predicate(expr))
        return tri.values & tri.valid

    # -- helpers --------------------------------------------------------
    def _as_tristate(self, vec: Vec) -> Vec:
        if vec.is_scalar:
            value = vec.values
            truth = None if value is None else bool(value)
            return _broadcast_bool(truth, self.n)
        if vec.kind == "bool":
            return vec
        return self._truthy(vec)

    def _truthy(self, vec: Vec) -> Vec:
        if vec.kind in ("int", "float"):
            return Vec("bool", vec.values != 0, vec.valid)
        if vec.kind == "bool":
            return vec
        if vec.kind == "text":
            # Non-empty string is truthy; code of "" (if interned) falsy.
            empty = vec.dictionary.index("") if (
                vec.dictionary and "" in vec.dictionary
            ) else -2
            return Vec("bool", vec.values != empty, vec.valid)
        raise Unsupported("truthiness of object column")

    # -- comparison -----------------------------------------------------
    def _compare(self, expr: Comparison) -> Vec:
        left = self.value(expr.left)
        right = self.value(expr.right)
        if left.is_scalar and right.is_scalar:
            return _broadcast_bool(_safe_eval(expr), self.n)
        if left.is_scalar:
            return self._compare_vec(
                _FLIPPED[expr.op], right, left
            )
        return self._compare_vec(expr.op, left, right)

    def _compare_vec(self, op: str, vec: Vec, other: Vec) -> Vec:
        if other.is_scalar and other.values is None:
            return _broadcast_bool(None, self.n)
        if vec.kind == "object" or other.kind == "object":
            raise Unsupported("comparison over JSON column")
        if vec.kind == "text" or other.kind == "text":
            return self._compare_text(op, vec, other)
        # numeric vs numeric (bool participates via numpy upcast)
        if other.is_scalar:
            rhs: Any = other.values
            if (
                isinstance(rhs, int)
                and not isinstance(rhs, bool)
                and abs(rhs) >= 2**63
            ):
                raise Unsupported("comparison literal outside int64 range")
            both_valid = vec.valid
        else:
            rhs = other.values
            both_valid = vec.valid & other.valid
        with np.errstate(invalid="ignore"):
            result = _NUMPY_COMPARATORS[op](vec.values, rhs)
        return Vec("bool", np.asarray(result, dtype=bool), both_valid)

    def _compare_text(self, op: str, vec: Vec, other: Vec) -> Vec:
        n = self.n
        if vec.kind != "text":
            # numeric column vs text operand
            if op == "=":
                return Vec("bool", np.zeros(n, dtype=bool), vec.valid)
            if op == "!=":
                valid = (
                    vec.valid
                    if other.is_scalar
                    else vec.valid & other.valid
                )
                return Vec("bool", np.ones(n, dtype=bool), valid)
            raise Unsupported("ordering comparison across types")
        if other.is_scalar:
            literal = other.values
            if not isinstance(literal, str):
                if op == "=":
                    return Vec("bool", np.zeros(n, dtype=bool), vec.valid)
                if op == "!=":
                    return Vec("bool", np.ones(n, dtype=bool), vec.valid)
                raise Unsupported("ordering comparison across types")
            if op in ("=", "!="):
                code = (
                    vec.dictionary.index(literal)
                    if vec.dictionary and literal in vec.dictionary
                    else -2
                )
                hits = vec.values == code
                values = hits if op == "=" else ~hits
                return Vec("bool", values, vec.valid)
            block = ColumnBlock("text", vec.values, vec.valid, vec.dictionary)
            sorted_values, ranks = block.order_keys()
            row_ranks = ranks[np.clip(vec.values, 0, None)]
            low = int(np.searchsorted(sorted_values, literal, side="left"))
            high = int(np.searchsorted(sorted_values, literal, side="right"))
            if op == "<":
                values = row_ranks < low
            elif op == "<=":
                values = row_ranks < high
            elif op == ">":
                values = row_ranks >= high
            else:  # >=
                values = row_ranks >= low
            return Vec("bool", values, vec.valid)
        if other.kind != "text":
            if op == "=":
                return Vec(
                    "bool", np.zeros(n, dtype=bool), vec.valid & other.valid
                )
            if op == "!=":
                return Vec(
                    "bool", np.ones(n, dtype=bool), vec.valid & other.valid
                )
            raise Unsupported("ordering comparison across types")
        # text vs text: compare ranks under a merged vocabulary.
        vocab = sorted(
            set(vec.dictionary or ()) | set(other.dictionary or ())
        )
        vocab_arr = np.array(vocab if vocab else [""])
        left_ranks = self._vocab_ranks(vec, vocab_arr)
        right_ranks = self._vocab_ranks(other, vocab_arr)
        values = _NUMPY_COMPARATORS[op](left_ranks, right_ranks)
        return Vec(
            "bool", np.asarray(values, dtype=bool), vec.valid & other.valid
        )

    @staticmethod
    def _vocab_ranks(vec: Vec, vocab: np.ndarray) -> np.ndarray:
        words = np.array(list(vec.dictionary or ("",)))
        code_rank = np.searchsorted(vocab, words)
        return code_rank[np.clip(vec.values, 0, None)]

    # -- boolean connectives --------------------------------------------
    def _boolean(self, expr: BooleanOp) -> Vec:
        parts = [
            self._as_tristate(self.predicate(part)) for part in expr.parts
        ]
        true = parts[0].values & parts[0].valid
        false = parts[0].valid & ~parts[0].values
        for part in parts[1:]:
            part_true = part.values & part.valid
            part_false = part.valid & ~part.values
            if expr.op == "and":
                true = true & part_true
                false = false | part_false
            else:
                true = true | part_true
                false = false & part_false
        return Vec("bool", true, true | false)

    def _is_null(self, expr: IsNull) -> Vec:
        vec = self.value(expr.inner)
        if vec.is_scalar:
            return _broadcast_bool(_safe_eval(expr), self.n)
        nulls = ~vec.valid
        values = ~nulls if expr.negate else nulls
        return Vec("bool", values, np.ones(self.n, dtype=bool))

    def _in_list(self, expr: InList) -> Vec:
        vec = self.value(expr.inner)
        if vec.is_scalar:
            return _broadcast_bool(_safe_eval(expr), self.n)
        if any(isinstance(value, Expression) for value in expr.values):
            raise Unsupported("IN list with unbound expressions")
        has_null = any(value is None for value in expr.values)
        if vec.kind == "text":
            wanted = [
                vec.dictionary.index(value)
                for value in expr.values
                if isinstance(value, str)
                and vec.dictionary
                and value in vec.dictionary
            ]
            hits = (
                np.isin(vec.values, np.array(wanted, dtype=np.int64))
                if wanted
                else np.zeros(self.n, dtype=bool)
            )
        elif vec.kind in _NUMERIC:
            wanted_values = [
                value
                for value in expr.values
                if isinstance(value, (bool, int, float))
            ]
            if wanted_values:
                try:
                    if all(
                        isinstance(value, (bool, int))
                        for value in wanted_values
                    ) and vec.kind != "float":
                        probe = np.array(
                            [int(value) for value in wanted_values],
                            dtype=np.int64,
                        )
                    else:
                        probe = np.array(
                            [float(value) for value in wanted_values],
                            dtype=np.float64,
                        )
                except OverflowError as exc:
                    raise Unsupported(
                        "IN literal outside int64 range"
                    ) from exc
                hits = np.isin(vec.values, probe)
            else:
                hits = np.zeros(self.n, dtype=bool)
        else:
            raise Unsupported("IN over JSON column")
        true = hits & vec.valid
        if has_null:
            valid = true  # misses are unknown when the list holds NULL
        else:
            valid = vec.valid
        return Vec("bool", true, valid)

    def _like(self, expr: Like) -> Vec:
        vec = self.value(expr.inner)
        if vec.is_scalar:
            return _broadcast_bool(_safe_eval(expr), self.n)
        if vec.kind == "text":
            matched = np.fromiter(
                (
                    expr._regex.match(word) is not None
                    for word in (vec.dictionary or ())
                ),
                dtype=bool,
                count=len(vec.dictionary or ()),
            )
            if matched.size == 0:
                values = np.zeros(self.n, dtype=bool)
            else:
                values = matched[np.clip(vec.values, 0, None)]
            return Vec("bool", values & vec.valid, vec.valid)
        if vec.kind in _NUMERIC:
            # Non-string values never match LIKE; NULLs stay unknown.
            return Vec("bool", np.zeros(self.n, dtype=bool), vec.valid)
        raise Unsupported("LIKE over JSON column")

    # -- arithmetic -----------------------------------------------------
    def _arithmetic(self, expr: Arithmetic) -> Vec:
        left = self.value(expr.left)
        right = self.value(expr.right)
        if left.is_scalar and right.is_scalar:
            return _scalar_vec(_safe_eval(expr))
        for operand in (left, right):
            if operand.is_scalar:
                if operand.values is None:
                    n = self.n
                    return Vec(
                        "float",
                        np.zeros(n, dtype=np.float64),
                        np.zeros(n, dtype=bool),
                    )
                if not isinstance(operand.values, (bool, int, float)):
                    raise Unsupported("non-numeric arithmetic operand")
            elif operand.kind not in _NUMERIC:
                raise Unsupported("non-numeric arithmetic operand")

        def numeric(operand: Vec) -> tuple[Any, bool]:
            """(array-or-scalar, is_float)."""
            if operand.is_scalar:
                value = operand.values
                if isinstance(value, bool):
                    return int(value), False
                return value, isinstance(value, float)
            if operand.kind == "bool":
                return operand.values.astype(np.int64), False
            return operand.values, operand.kind == "float"

        lhs, lfloat = numeric(left)
        rhs, rfloat = numeric(right)
        valid = _joint_valid(left, right, self.n)
        as_float = lfloat or rfloat or expr.op == "/"
        if not as_float:
            self._guard_int_range(lhs, rhs, expr.op)
        if expr.op == "/":
            divisor = np.asarray(rhs, dtype=np.float64)
            dividend = np.asarray(lhs, dtype=np.float64)
            if divisor.ndim == 0:
                divisor = np.broadcast_to(divisor, (self.n,))
            nonzero = divisor != 0.0
            out = np.zeros(self.n, dtype=np.float64)
            np.divide(dividend, divisor, out=out, where=nonzero)
            return Vec("float", out, valid & nonzero)
        op = _NUMPY_ARITHMETIC[expr.op]
        if as_float:
            result = op(
                np.asarray(lhs, dtype=np.float64),
                np.asarray(rhs, dtype=np.float64),
            )
            return Vec("float", np.asarray(result, dtype=np.float64), valid)
        result = op(lhs, rhs)
        return Vec("int", np.asarray(result, dtype=np.int64), valid)

    def _guard_int_range(self, lhs: Any, rhs: Any, op: str) -> None:
        def magnitude(value: Any) -> int:
            if isinstance(value, np.ndarray):
                if value.size == 0:
                    return 0
                return int(np.max(np.abs(value)))
            return abs(int(value))

        left_mag, right_mag = magnitude(lhs), magnitude(rhs)
        if op == "*":
            if left_mag * right_mag >= _INT_GUARD:
                raise Unsupported("int64 overflow risk in multiplication")
        elif left_mag + right_mag >= _INT_GUARD:
            raise Unsupported("int64 overflow risk in addition")


def _joint_valid(left: Vec, right: Vec, n: int) -> np.ndarray:
    if left.is_scalar and right.is_scalar:
        return np.ones(n, dtype=bool)
    if left.is_scalar:
        return right.valid.copy()
    if right.is_scalar:
        return left.valid.copy()
    return left.valid & right.valid


_FLIPPED = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

_NUMPY_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_NUMPY_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}


# ----------------------------------------------------------------------
# group-by factorisation
# ----------------------------------------------------------------------
#: Dense code-grid ("hash") group-by is used while the key-space stays
#: below this multiple of the row count (with a small absolute floor).
_HASH_GRID_FACTOR = 4
_HASH_GRID_FLOOR = 1024


def _factorize(vec: Vec, n: int) -> tuple[np.ndarray, int, list[Any]]:
    """Dense codes for one key column: ``(codes, cardinality, decode)``.

    NULL gets its own trailing code so it groups like any other value;
    ``decode[code]`` recovers the Python key value (``None`` for NULL).
    """
    if vec.is_scalar:
        raise Unsupported("grouping by a constant")
    if vec.kind == "text":
        decode = list(vec.dictionary or ())
        codes = np.where(vec.valid, vec.values, len(decode))
        return codes.astype(np.int64), len(decode) + 1, decode + [None]
    if vec.kind == "bool":
        codes = np.where(vec.valid, vec.values.astype(np.int64), 2)
        return codes, 3, [False, True, None]
    if vec.kind in ("int", "float"):
        present = vec.values[vec.valid]
        uniq = np.unique(present)
        codes = np.empty(n, dtype=np.int64)
        codes[vec.valid] = np.searchsorted(uniq, present)
        codes[~vec.valid] = len(uniq)
        return codes, len(uniq) + 1, uniq.tolist() + [None]
    raise Unsupported("grouping by JSON column")


def _group_rows(
    key_vecs: list[Vec], n: int
) -> tuple[np.ndarray, int, list[tuple[Any, ...]], str]:
    """Assign group ids in first-seen order.

    Returns ``(gids, group_count, group_keys, strategy)`` where
    ``group_keys[g]`` is the tuple of Python key values for group ``g``.
    """
    factorized = [_factorize(vec, n) for vec in key_vecs]
    combined = np.zeros(n, dtype=np.int64)
    total = 1
    for codes, cardinality, _decode in factorized:
        if total > _INT_GUARD // max(cardinality, 1):
            raise Unsupported("group key-space too large to combine")
        total *= cardinality
        combined = combined * cardinality + codes

    if total <= max(_HASH_GRID_FACTOR * n, _HASH_GRID_FLOOR):
        strategy = "hash"
        counts = np.bincount(combined, minlength=total)
        first = np.full(total, n, dtype=np.int64)
        np.minimum.at(first, combined, np.arange(n, dtype=np.int64))
        present = np.flatnonzero(counts)
        ordered = present[np.argsort(first[present], kind="stable")]
        gid_of_slot = np.empty(total, dtype=np.int64)
        gid_of_slot[ordered] = np.arange(len(ordered), dtype=np.int64)
        gids = gid_of_slot[combined]
        slots = ordered
    else:
        strategy = "sort"
        slots_arr, inverse = np.unique(combined, return_inverse=True)
        first = np.full(len(slots_arr), n, dtype=np.int64)
        np.minimum.at(first, inverse, np.arange(n, dtype=np.int64))
        reorder = np.argsort(first, kind="stable")
        rank = np.empty(len(slots_arr), dtype=np.int64)
        rank[reorder] = np.arange(len(slots_arr), dtype=np.int64)
        gids = rank[inverse]
        slots = slots_arr[reorder]

    group_keys: list[tuple[Any, ...]] = []
    for slot in slots.tolist():
        key: list[Any] = []
        for codes, cardinality, decode in reversed(factorized):
            key.append(decode[slot % cardinality])
            slot //= cardinality
        group_keys.append(tuple(reversed(key)))
    return gids, len(slots), group_keys, strategy


# ----------------------------------------------------------------------
# aggregate kernels
# ----------------------------------------------------------------------
def _aggregate(name: str, vec: Vec | None, gids, groups: int) -> list[Any]:
    """Per-group results for one aggregate, as Python values."""
    if name == "count_star":
        return np.bincount(gids, minlength=groups).tolist()
    assert vec is not None
    if vec.is_scalar:
        raise Unsupported("aggregating a constant")
    valid = vec.valid
    counts = np.bincount(gids[valid], minlength=groups)
    if name == "count":
        return counts.tolist()
    if name == "count_distinct":
        return _count_distinct(vec, gids, groups)

    sel = valid
    picked_gids = gids[sel]
    if vec.kind == "text":
        if name not in ("min", "max"):
            raise Unsupported(f"aggregate {name} over text column")
        block = ColumnBlock("text", vec.values, vec.valid, vec.dictionary)
        sorted_values, ranks = block.order_keys()
        row_ranks = ranks[np.clip(vec.values[sel], 0, None)]
        out = np.full(
            groups,
            len(sorted_values) if name == "min" else -1,
            dtype=np.int64,
        )
        reducer = np.minimum if name == "min" else np.maximum
        reducer.at(out, picked_gids, row_ranks)
        return [
            str(sorted_values[rank]) if count else None
            for rank, count in zip(out.tolist(), counts.tolist())
        ]
    if vec.kind == "object":
        raise Unsupported(f"aggregate {name} over JSON column")

    values = vec.values[sel]
    is_bool = vec.kind == "bool"
    if is_bool:
        values = values.astype(np.int64)
    if name in ("sum", "avg"):
        if vec.kind == "float":
            sums = np.zeros(groups, dtype=np.float64)
            np.add.at(sums, picked_gids, values)
            totals: list[Any] = sums.tolist()
        else:
            if values.size and int(
                np.max(np.abs(values))
            ) * max(int(counts.max()), 1) >= _INT_GUARD:
                raise Unsupported("int64 overflow risk in SUM")
            sums = np.zeros(groups, dtype=np.int64)
            np.add.at(sums, picked_gids, values)
            totals = [int(value) for value in sums.tolist()]
        if name == "sum":
            return [
                total if count else None
                for total, count in zip(totals, counts.tolist())
            ]
        return [
            total / count if count else None
            for total, count in zip(totals, counts.tolist())
        ]
    if name in ("variance", "stddev"):
        # One-pass count/sum/sumsq moments, finalised by the same
        # helpers as the reference fold so results match bit-for-bit:
        # np.add.at accumulates in row order (the reference's
        # left-to-right order), int sums stay exact, and the per-group
        # Python values handed to the finaliser are identical.
        if vec.kind == "float":
            sums = np.zeros(groups, dtype=np.float64)
            squares = np.zeros(groups, dtype=np.float64)
            np.add.at(sums, picked_gids, values)
            np.add.at(squares, picked_gids, values * values)
            totals = sums.tolist()
            total_squares = squares.tolist()
        else:
            if values.size:
                magnitude = max(
                    abs(int(values.max())), abs(int(values.min()))
                )
                if (
                    magnitude * magnitude * max(int(counts.max()), 1)
                    >= _INT_GUARD
                ):
                    raise Unsupported(
                        f"int64 overflow risk in {name.upper()}"
                    )
            sums = np.zeros(groups, dtype=np.int64)
            squares = np.zeros(groups, dtype=np.int64)
            np.add.at(sums, picked_gids, values)
            np.add.at(squares, picked_gids, values * values)
            totals = [int(value) for value in sums.tolist()]
            total_squares = [int(value) for value in squares.tolist()]
        finalise = (
            variance_from_moments
            if name == "variance"
            else stddev_from_moments
        )
        return [
            finalise(count, total, total_sq)
            for count, total, total_sq in zip(
                counts.tolist(), totals, total_squares
            )
        ]
    if name in ("min", "max"):
        if vec.kind == "float":
            sentinel = np.inf if name == "min" else -np.inf
            out = np.full(groups, sentinel, dtype=np.float64)
        else:
            info = np.iinfo(np.int64)
            out = np.full(
                groups,
                info.max if name == "min" else info.min,
                dtype=np.int64,
            )
        reducer = np.minimum if name == "min" else np.maximum
        reducer.at(out, picked_gids, values)
        results = out.tolist()
        converted: list[Any] = []
        for value, count in zip(results, counts.tolist()):
            if not count:
                converted.append(None)
            elif is_bool:
                converted.append(bool(value))
            else:
                converted.append(value)
        return converted
    raise Unsupported(f"unsupported aggregate {name!r}")


def _count_distinct(vec: Vec, gids, groups: int) -> list[int]:
    valid = vec.valid
    picked_gids = gids[valid]
    if vec.kind == "text":
        codes = vec.values[valid]
        cardinality = len(vec.dictionary or ()) or 1
    else:
        values = vec.values[valid]
        uniq, codes = np.unique(values, return_inverse=True)
        cardinality = max(len(uniq), 1)
    pairs = picked_gids * cardinality + codes
    unique_pairs = np.unique(pairs)
    return np.bincount(
        unique_pairs // cardinality, minlength=groups
    ).tolist()


# ----------------------------------------------------------------------
# ordering
# ----------------------------------------------------------------------
def _order_indices(
    key_specs: list[tuple[Vec, bool]], base: np.ndarray
) -> np.ndarray:
    """Stable multi-key sort of ``base`` row indices.

    Each spec is ``(vec, descending)``; vecs are already aligned with
    ``base`` (same length). NULLs sort last regardless of direction,
    ties keep the incoming order — matching the row executor.
    """
    lex_keys: list[np.ndarray] = []
    for vec, descending in reversed(key_specs):
        if vec.is_scalar:
            raise Unsupported("ordering by a constant")
        if vec.kind == "text":
            block = ColumnBlock(
                "text", vec.values, vec.valid, vec.dictionary
            )
            _sorted_values, ranks = block.order_keys()
            value_key = ranks[np.clip(vec.values, 0, None)]
        elif vec.kind == "bool":
            value_key = vec.values.astype(np.int8)
        elif vec.kind in ("int", "float"):
            value_key = vec.values
        else:
            raise Unsupported("ordering by JSON column")
        value_key = np.where(vec.valid, value_key, 0)
        if descending:
            value_key = -value_key
        null_key = (~vec.valid).astype(np.int8)
        lex_keys.append(value_key)
        lex_keys.append(null_key)
    order = np.lexsort(lex_keys)
    return base[order]


# ----------------------------------------------------------------------
# query execution
# ----------------------------------------------------------------------
def execute(query: "Query") -> list[dict[str, Any]] | None:
    """Try to run ``query`` through the vectorised kernels end to end.

    Returns the result rows when the whole pipeline — scan, joins,
    filter, group-by/aggregate, having, projection, distinct, order,
    limit — ran vectorised, or ``None`` when the query shape is
    unsupported and the caller must use the reference path. On fallback
    the :class:`Unsupported` reason is recorded on the query
    (``_fallback_reason`` / ``_fallback_family``) and counted in the
    ``repro_sql_fallback_total{reason=...}`` metric.
    """
    try:
        return _execute(query)
    except Unsupported as fallback:
        message = str(fallback)
        family = fallback_family(message)
        query._fallback_reason = message
        query._fallback_family = family
        _count_fallback(family)
        return None


def _execute(query: "Query") -> list[dict[str, Any]]:
    if query._joins:
        relation = _build_join_relation(query)
    else:
        relation = query._database.table(query._table_name).columnar()
    compiler = Compiler(relation)
    mask = compiler.mask(query._where)

    if query._group_columns or query._aggregates:
        return _execute_grouped(query, compiler, mask)
    return _finish(query, compiler, mask, relation.output_names)


def _execute_grouped(query: "Query", compiler: Compiler, mask):
    key_vecs = [
        compiler.value(ColumnRef(name)) for name in query._group_columns
    ]
    agg_specs: list[tuple[str, str, Vec | None]] = []
    for alias, aggregate in query._aggregates:
        if aggregate.name not in SUPPORTED_AGGREGATES:
            raise Unsupported(f"aggregate {aggregate.name}")
        if aggregate.expr is None:
            agg_specs.append((alias, aggregate.name, None))
        else:
            agg_specs.append(
                (alias, aggregate.name, compiler.value(aggregate.expr))
            )

    sel = np.flatnonzero(mask)
    key_vecs = [vec.take(sel) for vec in key_vecs]
    agg_specs = [
        (alias, name, vec.take(sel) if vec is not None else None)
        for alias, name, vec in agg_specs
    ]
    n = len(sel)
    if n == 0:
        return []  # the row executor emits no groups for an empty input
    if key_vecs:
        gids, groups, group_keys, _strategy = _group_rows(key_vecs, n)
    else:
        gids = np.zeros(n, dtype=np.int64)
        groups, group_keys = 1, [()]
    # Vectorised grouped tail: the per-group results become a
    # RowsRelation, and having/projection/distinct/order/limit re-enter
    # the same mask and finish kernels as ungrouped queries.
    names = list(query._group_columns) + [
        alias for alias, _name, _vec in agg_specs
    ]
    blocks: dict[str, ColumnBlock] = {}
    for position, name in enumerate(query._group_columns):
        blocks[name] = _block_from_pylist(
            [key[position] for key in group_keys]
        )
    for alias, agg_name, vec in agg_specs:
        blocks[alias] = _block_from_pylist(
            _aggregate(agg_name, vec, gids, groups)
        )
    grouped = Compiler(RowsRelation(names, blocks, groups))
    having_mask = grouped.mask(query._having)
    return _finish(query, grouped, having_mask, names)


def _finish(query: "Query", compiler: Compiler, mask, default_names):
    """Shared vectorised tail: projection/distinct/order/offset/limit."""
    if query._projections is None:
        aliases = list(default_names)
        vecs = [compiler.value(ColumnRef(name)) for name in aliases]
    else:
        aliases = [p.alias for p in query._projections]
        vecs = [compiler.value(p.expr) for p in query._projections]
        for vec in vecs:
            if vec.is_scalar and vec.kind == "object":
                raise Unsupported("object literal projection")

    sel = np.flatnonzero(mask)
    n = len(sel)
    picked = [vec.take(sel) for vec in vecs]

    if query._distinct:
        if n:
            key_vecs = [
                vec if not vec.is_scalar else _materialize(vec, n)
                for vec in picked
            ]
            _gids, groups, _keys, _strategy = _group_rows(key_vecs, n)
            # First-seen representative row per distinct group.
            first = np.full(groups, n, dtype=np.int64)
            np.minimum.at(first, _gids, np.arange(n, dtype=np.int64))
            keep = np.sort(first)
            sel = sel[keep]
            picked = [vec.take(keep) for vec in picked]
            n = len(sel)

    if query._orderings:
        key_specs = []
        for ordering in query._orderings:
            vec = _resolve_order_key(
                ordering.key, aliases, picked, compiler, sel
            )
            key_specs.append((vec, ordering.descending))
        local = _order_indices(
            key_specs, np.arange(n, dtype=np.int64)
        )
        picked = [vec.take(local) for vec in picked]

    start = query._offset
    stop = (
        None if query._limit is None else query._offset + query._limit
    )
    window = slice(start, stop)
    keep = np.arange(n, dtype=np.int64)[window]
    out_columns = []
    for vec in picked:
        if vec.is_scalar:
            out_columns.append([vec.values] * len(keep))
        else:
            out_columns.append(vec.take(keep).to_pylist())
    return [
        dict(zip(aliases, values)) for values in zip(*out_columns)
    ] if out_columns else []


def _materialize(vec: Vec, n: int) -> Vec:
    """Broadcast a scalar Vec to ``n`` rows."""
    if not vec.is_scalar:
        return vec
    value = vec.values
    if value is None:
        return Vec(
            "float",
            np.zeros(n, dtype=np.float64),
            np.zeros(n, dtype=bool),
        )
    if isinstance(value, bool):
        return Vec(
            "bool",
            np.full(n, value, dtype=bool),
            np.ones(n, dtype=bool),
        )
    if isinstance(value, int):
        return Vec(
            "int",
            np.full(n, value, dtype=np.int64),
            np.ones(n, dtype=bool),
        )
    if isinstance(value, float):
        return Vec(
            "float",
            np.full(n, value, dtype=np.float64),
            np.ones(n, dtype=bool),
        )
    if isinstance(value, str):
        return Vec(
            "text",
            np.zeros(n, dtype=np.int64),
            np.ones(n, dtype=bool),
            (value,),
        )
    raise Unsupported("cannot broadcast object scalar")


def _resolve_order_key(
    key: str,
    aliases: list[str],
    picked: list[Vec],
    compiler: Compiler,
    sel: np.ndarray,
) -> Vec:
    """Resolve an ORDER BY key against projected output columns.

    Mirrors :class:`ColumnRef` resolution over a projected row: exact
    alias, unique qualified-suffix match, or (for qualified keys) the
    bare suffix. Anything unresolvable falls back to the row executor.
    """
    by_alias = dict(zip(aliases, picked))
    if key in by_alias:
        vec = by_alias[key]
    elif "." not in key:
        matches = [
            alias for alias in aliases if alias.endswith("." + key)
        ]
        if len(matches) != 1:
            raise Unsupported(f"cannot resolve order key {key!r}")
        vec = by_alias[matches[0]]
    else:
        bare = key.rsplit(".", 1)[1]
        if bare not in by_alias:
            raise Unsupported(f"cannot resolve order key {key!r}")
        vec = by_alias[bare]
    if vec.is_scalar:
        vec = _materialize(vec, len(sel))
    return vec


# ----------------------------------------------------------------------
# plan analysis (EXPLAIN support)
# ----------------------------------------------------------------------
def analyze(query: "Query") -> dict[str, Any]:
    """Description of how ``query`` would execute.

    Compiles the query's expressions over the column kinds without
    evaluating filter or aggregate kernels, and reports which executor
    would serve the query, why a fallback would occur (message plus
    metric-label family), the joins lowered into the plan, and the
    columns the scan would touch (projection push-down set). Joined
    queries do build their gather arrays — the join shape, not just the
    column types, decides columnar eligibility — so EXPLAIN over a join
    costs one key-column pass per join.
    """
    info: dict[str, Any] = {
        "table": query._table_name,
        "executor": "columnar",
        "reason": None,
        "reason_family": None,
        "columns": [],
        "where_pushdown": query._where is not None,
        "joins": [
            {"table": join.table_name, "how": join.how}
            for join in query._joins
        ],
        "group_strategy": None,
    }
    if query._use_reference:
        info["executor"] = "reference"
        info["reason"] = "reference requested"
        info["reason_family"] = "pinned"
        return info
    compiler = None
    try:
        if query._joins:
            relation = _build_join_relation(query)
        else:
            relation = query._database.table(query._table_name).columnar()
        compiler = Compiler(relation)
        compiler.mask(query._where)
        if query._group_columns or query._aggregates:
            for name in query._group_columns:
                compiler.value(ColumnRef(name))
            for _alias, aggregate in query._aggregates:
                if aggregate.name not in SUPPORTED_AGGREGATES:
                    raise Unsupported(f"aggregate {aggregate.name}")
                if aggregate.expr is not None:
                    compiler.value(aggregate.expr)
            cardinality = _estimate_cardinality(query, compiler)
            info["group_strategy"] = (
                "hash"
                if cardinality is not None
                and cardinality
                <= max(
                    _HASH_GRID_FACTOR * compiler.n, _HASH_GRID_FLOOR
                )
                else "sort"
            )
        elif query._projections is not None:
            for projection in query._projections:
                compiler.value(projection.expr)
    except Unsupported as fallback:
        info["executor"] = "reference"
        info["reason"] = str(fallback)
        info["reason_family"] = fallback_family(str(fallback))
    if compiler is not None:
        info["columns"] = sorted(compiler.touched)
    return info


def _estimate_cardinality(
    query: "Query", compiler: Compiler
) -> int | None:
    total = 1
    for name in query._group_columns:
        vec = compiler.value(ColumnRef(name))
        if vec.kind == "text":
            total *= len(vec.dictionary or ()) + 1
        elif vec.kind == "bool":
            total *= 3
        else:
            return None  # numeric cardinality only known at run time
    return total
