"""Fluent query builder over database tables.

Example::

    from repro.db import col, count, avg

    rows = (
        db.query("recipes")
        .join("recipe_ingredients", on=("recipe_id", "recipe_id"))
        .where(col("region_code") == "ITA")
        .group_by("region_code", n=count(), mean_size=avg("size"))
        .order_by(("n", "desc"))
        .limit(10)
        .all()
    )

Execution pipeline: base scan (index-narrowed when there are no joins) →
hash joins → residual ``where`` filter → group-by folding → projection →
distinct → order-by → offset/limit. Queries are immutable: every builder
method returns a new :class:`Query`, so partially-built queries can be
shared and extended safely.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import TYPE_CHECKING, Any

from .aggregates import Aggregate
from .errors import QueryError
from .expressions import BooleanOp, ColumnRef, Expression

try:  # numpy-backed vectorised executor; the row path works without it
    from . import columnar as _columnar
except ImportError:  # pragma: no cover - numpy not installed
    _columnar = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database


@dataclasses.dataclass(frozen=True, slots=True)
class _Join:
    table_name: str
    left_column: str
    right_column: str
    how: str  # "inner" or "left"


@dataclasses.dataclass(frozen=True, slots=True)
class _Projection:
    expr: Expression
    alias: str


@dataclasses.dataclass(frozen=True, slots=True)
class _Ordering:
    key: str
    descending: bool


class Query:
    """An immutable, composable SELECT pipeline."""

    def __init__(self, database: "Database", table_name: str) -> None:
        self._database = database
        self._table_name = table_name
        self._joins: tuple[_Join, ...] = ()
        self._where: Expression | None = None
        self._group_columns: tuple[str, ...] = ()
        self._having: Expression | None = None
        self._aggregates: tuple[tuple[str, Aggregate], ...] = ()
        self._projections: tuple[_Projection, ...] | None = None
        self._orderings: tuple[_Ordering, ...] = ()
        self._distinct = False
        self._limit: int | None = None
        self._offset = 0
        self._use_reference = False
        # Executor diagnostics from the most recent execution (not
        # copied by the builder: they describe a run, not the query).
        self._last_execution: dict[str, Any] | None = None
        self._fallback_reason: str | None = None
        self._fallback_family: str | None = None

    # ------------------------------------------------------------------
    # builder methods (each returns a modified copy)
    # ------------------------------------------------------------------
    def _copy(self) -> "Query":
        clone = Query(self._database, self._table_name)
        clone._joins = self._joins
        clone._where = self._where
        clone._group_columns = self._group_columns
        clone._having = self._having
        clone._aggregates = self._aggregates
        clone._projections = self._projections
        clone._orderings = self._orderings
        clone._distinct = self._distinct
        clone._limit = self._limit
        clone._offset = self._offset
        clone._use_reference = self._use_reference
        return clone

    def join(
        self,
        table_name: str,
        on: tuple[str, str],
        how: str = "inner",
    ) -> "Query":
        """Hash-join another table.

        Args:
            table_name: the table to join.
            on: ``(left_column, right_column)`` equality pair; the left
                column is resolved against the rows built so far, the right
                column against ``table_name``.
            how: ``"inner"`` (default) or ``"left"``.
        """
        if how not in ("inner", "left"):
            raise QueryError(f"unsupported join type {how!r}")
        if not isinstance(on, tuple) or len(on) != 2:
            raise QueryError("join 'on' must be a (left_column, right_column) pair")
        clone = self._copy()
        clone._joins = self._joins + (_Join(table_name, on[0], on[1], how),)
        return clone

    def where(self, predicate: Expression) -> "Query":
        """Filter rows; successive calls AND their predicates together."""
        if not isinstance(predicate, Expression):
            raise QueryError(f"where() needs an Expression, got {predicate!r}")
        clone = self._copy()
        if self._where is None:
            clone._where = predicate
        else:
            clone._where = BooleanOp("and", (self._where, predicate))
        return clone

    def group_by(self, *columns: str, **aggregates: Aggregate) -> "Query":
        """Group rows by ``columns`` and compute named aggregates.

        Keyword names become output column names, e.g.
        ``group_by("region", n=count())`` yields rows with keys
        ``region`` and ``n``.
        """
        if not columns and not aggregates:
            raise QueryError("group_by() needs columns and/or aggregates")
        for alias, aggregate in aggregates.items():
            if not isinstance(aggregate, Aggregate):
                raise QueryError(
                    f"aggregate {alias!r} must be an Aggregate, got "
                    f"{aggregate!r}"
                )
        clone = self._copy()
        clone._group_columns = tuple(columns)
        clone._aggregates = tuple(aggregates.items())
        return clone

    def having(self, predicate: Expression) -> "Query":
        """Filter grouped rows (after aggregation, before projection)."""
        if not isinstance(predicate, Expression):
            raise QueryError(f"having() needs an Expression, got {predicate!r}")
        clone = self._copy()
        if self._having is None:
            clone._having = predicate
        else:
            clone._having = BooleanOp("and", (self._having, predicate))
        return clone

    def select(self, *columns: str | tuple[Expression, str]) -> "Query":
        """Project output columns.

        Each item is either a column name (optionally ``"name AS alias"``
        via a plain string with `` as ``), or an ``(expression, alias)``
        pair for computed columns.
        """
        projections: list[_Projection] = []
        for item in columns:
            if isinstance(item, str):
                name, alias = _split_alias(item)
                projections.append(_Projection(ColumnRef(name), alias))
            elif (
                isinstance(item, tuple)
                and len(item) == 2
                and isinstance(item[0], Expression)
                and isinstance(item[1], str)
            ):
                projections.append(_Projection(item[0], item[1]))
            else:
                raise QueryError(f"bad select item: {item!r}")
        if not projections:
            raise QueryError("select() needs at least one column")
        clone = self._copy()
        clone._projections = tuple(projections)
        return clone

    def order_by(self, *keys: str | tuple[str, str]) -> "Query":
        """Sort output rows.

        Each key is a column name (ascending) or a ``(name, "desc")`` /
        ``(name, "asc")`` pair.
        """
        orderings: list[_Ordering] = []
        for key in keys:
            if isinstance(key, str):
                orderings.append(_Ordering(key, descending=False))
            elif isinstance(key, tuple) and len(key) == 2:
                name, direction = key
                if direction.lower() not in ("asc", "desc"):
                    raise QueryError(f"bad sort direction {direction!r}")
                orderings.append(
                    _Ordering(name, descending=direction.lower() == "desc")
                )
            else:
                raise QueryError(f"bad order_by key: {key!r}")
        if not orderings:
            raise QueryError("order_by() needs at least one key")
        clone = self._copy()
        clone._orderings = tuple(orderings)
        return clone

    def distinct(self) -> "Query":
        """Drop duplicate output rows (after projection)."""
        clone = self._copy()
        clone._distinct = True
        return clone

    def limit(self, n: int, offset: int = 0) -> "Query":
        """Keep at most ``n`` rows, skipping the first ``offset``."""
        if n < 0 or offset < 0:
            raise QueryError("limit and offset must be non-negative")
        clone = self._copy()
        clone._limit = n
        clone._offset = offset
        return clone

    def reference(self, flag: bool = True) -> "Query":
        """Force the row-at-a-time reference executor.

        The vectorised columnar executor is used automatically whenever a
        query shape supports it; this switch pins the query to the row
        path for ablations, debugging, and equivalence testing.
        """
        clone = self._copy()
        clone._use_reference = flag
        return clone

    @property
    def last_execution(self) -> dict[str, Any] | None:
        """Executor diagnostics from the most recent execution.

        ``{"executor": "columnar" | "reference", "reason": ...,
        "reason_family": ...}`` — the reason is ``None`` on the fast
        path, the pin/fallback cause otherwise (the family is the
        low-cardinality slug used as the ``repro_sql_fallback_total``
        metric label). ``None`` before the first execution.
        """
        return self._last_execution

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def all(self) -> list[dict[str, Any]]:
        """Execute and return all result rows."""
        return list(self._execute())

    def first(self) -> dict[str, Any] | None:
        """Execute and return the first row, or ``None`` if empty."""
        for row in self._execute():
            return row
        return None

    def count(self) -> int:
        """Number of result rows."""
        return sum(1 for _row in self._execute())

    def column(self, name: str) -> list[Any]:
        """Execute and extract a single output column as a list."""
        return [row[name] for row in self._execute()]

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return self._execute()

    # ------------------------------------------------------------------
    # pipeline internals
    # ------------------------------------------------------------------
    def _execute(self) -> Iterator[dict[str, Any]]:
        if _columnar is not None and not self._use_reference:
            produced = _columnar.execute(self)
            if produced is not None:
                # Vectorised scan/join/filter/group/having/projection/
                # distinct/order/limit ran end to end; nothing left to
                # do row-at-a-time.
                self._last_execution = {
                    "executor": "columnar",
                    "reason": None,
                    "reason_family": None,
                }
                return iter(produced)
            self._last_execution = {
                "executor": "reference",
                "reason": self._fallback_reason,
                "reason_family": self._fallback_family,
            }
        elif self._use_reference:
            self._last_execution = {
                "executor": "reference",
                "reason": "reference requested",
                "reason_family": "pinned",
            }
        else:
            self._last_execution = {
                "executor": "reference",
                "reason": "columnar engine unavailable",
                "reason_family": "unavailable",
            }
        rows = self._scan_base()
        for join in self._joins:
            rows = self._apply_join(rows, join)
        if self._where is not None and (
            self._joins or not self._pushed_where
        ):
            predicate = self._where
            rows = (row for row in rows if bool(predicate.evaluate(row)))
        if self._group_columns or self._aggregates:
            rows = iter(self._apply_group_by(rows))
            if self._having is not None:
                having = self._having
                rows = (
                    row for row in rows if bool(having.evaluate(row))
                )
        if self._projections is not None:
            projections = self._projections
            rows = (
                {
                    projection.alias: projection.expr.evaluate(row)
                    for projection in projections
                }
                for row in rows
            )
        if self._distinct:
            rows = _unique_rows(rows)
        if self._orderings:
            rows = iter(self._apply_order(list(rows)))
        if self._limit is not None or self._offset:
            rows = _slice_rows(rows, self._offset, self._limit)
        return rows

    @property
    def _pushed_where(self) -> bool:
        """Whether the base scan already applied the full predicate."""
        return not self._joins

    def _scan_base(self) -> Iterator[dict[str, Any]]:
        table = self._database.table(self._table_name)
        if self._pushed_where:
            return table.scan(self._where)
        return table.rows()

    def _apply_join(
        self, rows: Iterable[Mapping[str, Any]], join: _Join
    ) -> Iterator[dict[str, Any]]:
        right_table = self._database.table(join.table_name)
        right_names = right_table.schema.column_names
        # Build the hash side over the right table. NULL keys never
        # enter the buckets: per SQL, NULL = NULL is unknown, so a NULL
        # join key matches nothing (LEFT JOIN emits the null-padded row).
        buckets: dict[Any, list[dict[str, Any]]] = {}
        for right_row in right_table.rows():
            key = right_row[join.right_column]
            if key is None:
                continue
            buckets.setdefault(key, []).append(right_row)
        left_ref = ColumnRef(join.left_column)
        null_right = {name: None for name in right_names}
        for left_row in rows:
            key = left_ref.evaluate(left_row)
            matches = () if key is None else buckets.get(key, ())
            if not matches:
                if join.how == "left":
                    yield _merge_rows(left_row, null_right, join.table_name)
                continue
            for right_row in matches:
                yield _merge_rows(left_row, right_row, join.table_name)

    def _apply_group_by(
        self, rows: Iterable[Mapping[str, Any]]
    ) -> list[dict[str, Any]]:
        group_refs = [ColumnRef(name) for name in self._group_columns]
        groups: dict[tuple[Any, ...], list[Any]] = {}
        order: list[tuple[Any, ...]] = []
        for row in rows:
            key = tuple(ref.evaluate(row) for ref in group_refs)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [agg.initial() for _alias, agg in self._aggregates]
                groups[key] = accumulators
                order.append(key)
            for position, (_alias, aggregate) in enumerate(self._aggregates):
                accumulators[position] = aggregate.step(
                    accumulators[position], row
                )
        results: list[dict[str, Any]] = []
        for key in order:
            out: dict[str, Any] = dict(zip(self._group_columns, key))
            for position, (alias, aggregate) in enumerate(self._aggregates):
                out[alias] = aggregate.final(groups[key][position])
            results.append(out)
        return results

    def _apply_order(
        self, rows: list[dict[str, Any]]
    ) -> list[dict[str, Any]]:
        # Stable multi-key sort: apply keys right-to-left. NULLs sort
        # last in BOTH directions (SQL "NULLS LAST"), so null rows are
        # partitioned off before each (stable, possibly reversed) pass.
        for ordering in reversed(self._orderings):
            ref = ColumnRef(ordering.key)
            non_null: list[tuple[Any, dict[str, Any]]] = []
            nulls: list[dict[str, Any]] = []
            for row in rows:
                value = ref.evaluate(row)
                if value is None:
                    nulls.append(row)
                else:
                    non_null.append((value, row))
            non_null.sort(
                key=lambda pair: pair[0], reverse=ordering.descending
            )
            rows = [row for _value, row in non_null] + nulls
        return rows


def _split_alias(item: str) -> tuple[str, str]:
    lowered = item.lower()
    if " as " in lowered:
        position = lowered.index(" as ")
        name = item[:position].strip()
        alias = item[position + 4 :].strip()
        if not name or not alias:
            raise QueryError(f"bad select alias: {item!r}")
        return name, alias
    name = item.strip()
    return name, name.rsplit(".", 1)[-1]


def _merge_rows(
    left: Mapping[str, Any], right: Mapping[str, Any], right_table: str
) -> dict[str, Any]:
    merged = dict(left)
    for name, value in right.items():
        if name in merged:
            merged[f"{right_table}.{name}"] = value
        else:
            merged[name] = value
    return merged


def _unique_rows(
    rows: Iterable[Mapping[str, Any]],
) -> Iterator[dict[str, Any]]:
    seen: set[tuple[tuple[str, Any], ...]] = set()
    for row in rows:
        try:
            key = tuple(sorted(row.items()))
        except TypeError:
            key = tuple(sorted((name, repr(value)) for name, value in row.items()))
        if key not in seen:
            seen.add(key)
            yield dict(row)


def _slice_rows(
    rows: Iterator[dict[str, Any]], offset: int, limit: int | None
) -> Iterator[dict[str, Any]]:
    produced = 0
    skipped = 0
    for row in rows:
        if skipped < offset:
            skipped += 1
            continue
        if limit is not None and produced >= limit:
            return
        produced += 1
        yield row
