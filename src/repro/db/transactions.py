"""Snapshot transactions for the embedded engine.

:func:`transaction` gives all-or-nothing semantics over any sequence of
writes against a :class:`~repro.db.database.Database`::

    with transaction(db):
        db.table("recipes").insert(...)
        db.sql("UPDATE ingredients SET ...")
        raise RuntimeError("boom")   # everything above is rolled back

Implementation: a copy-on-entry snapshot of every table's column arrays,
tombstone vector and indexes. Suitable for the engine's in-process,
single-writer use; not a concurrency mechanism (there are no concurrent
writers to isolate against).
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator
from typing import Any

from .database import Database
from .errors import DatabaseError
from .table import Table


class TransactionError(DatabaseError):
    """Misuse of the transaction API (e.g. nested transactions)."""


def _snapshot_table(table: Table) -> dict[str, Any]:
    return {
        "columns": {
            name: list(values) for name, values in table._columns.items()
        },
        "live": list(table._live),
        "live_count": table._live_count,
        "unique": {
            name: dict(index)
            for name, index in table._unique_indexes.items()
        },
        "secondary": {
            name: {value: list(rows) for value, rows in index.items()}
            for name, index in table._secondary_indexes.items()
        },
    }


def _restore_table(table: Table, snapshot: dict[str, Any]) -> None:
    table._columns = snapshot["columns"]
    table._live = snapshot["live"]
    table._live_count = snapshot["live_count"]
    table._unique_indexes = snapshot["unique"]
    table._secondary_indexes = snapshot["secondary"]
    # Rollback rewrites row data, so cached columnar blocks are stale.
    table._version += 1


_ACTIVE: set[int] = set()


@contextlib.contextmanager
def transaction(database: Database) -> Iterator[Database]:
    """All-or-nothing scope over ``database``.

    On normal exit the changes stand; on any exception every table is
    restored to its state at entry and the exception propagates.

    Raises:
        TransactionError: when nested inside another transaction on the
            same database (snapshot semantics cannot nest meaningfully).
    """
    key = id(database)
    if key in _ACTIVE:
        raise TransactionError(
            f"database {database.name!r} already has an open transaction"
        )
    _ACTIVE.add(key)
    snapshots = {table.name: _snapshot_table(table) for table in database}
    created_before = set(database.table_names())
    try:
        yield database
    except BaseException:
        # Drop tables created inside the transaction, restore the rest.
        for name in set(database.table_names()) - created_before:
            del database._tables[name]
        for table in database:
            _restore_table(table, snapshots[table.name])
        raise
    finally:
        _ACTIVE.discard(key)
