"""Typed table schemas for the embedded storage engine.

A :class:`Schema` is an ordered collection of :class:`Column` definitions.
Each column carries a :class:`ColumnType`, nullability, and optional
primary-key / unique / indexed / foreign-key markers. Schemas validate and
coerce incoming values on insert so that everything stored in a table is of
the declared Python type.
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Iterable, Iterator, Mapping
from typing import Any

from .errors import SchemaError


class ColumnType(enum.Enum):
    """Storage types supported by the engine."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"
    JSON = "json"  # arbitrary JSON-serialisable value, stored as-is

    @property
    def python_type(self) -> type | None:
        """The Python type stored for this column (``None`` for JSON)."""
        return _PYTHON_TYPES[self]


_PYTHON_TYPES: dict[ColumnType, type | None] = {
    ColumnType.INT: int,
    ColumnType.FLOAT: float,
    ColumnType.TEXT: str,
    ColumnType.BOOL: bool,
    ColumnType.JSON: None,
}


@dataclasses.dataclass(frozen=True, slots=True)
class ForeignKey:
    """Reference from a column to another table's column.

    Attributes:
        table: referenced table name.
        column: referenced column name (must be unique or primary key there).
    """

    table: str
    column: str


@dataclasses.dataclass(frozen=True, slots=True)
class Column:
    """One column definition.

    Attributes:
        name: column name; must be a valid identifier-like string.
        type: declared :class:`ColumnType`.
        nullable: whether NULL (``None``) values are allowed.
        primary_key: whether this column is the table's primary key. At most
            one column per schema may be the primary key; it is implicitly
            unique and not nullable.
        unique: whether values must be unique across rows.
        indexed: whether a secondary hash index is maintained.
        foreign_key: optional reference to another table's column.
    """

    name: str
    type: ColumnType
    nullable: bool = False
    primary_key: bool = False
    unique: bool = False
    indexed: bool = False
    foreign_key: ForeignKey | None = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")
        if self.name != self.name.lower():
            raise SchemaError(f"column names must be lower-case: {self.name!r}")
        if self.primary_key and self.nullable:
            raise SchemaError(f"primary key column {self.name!r} cannot be nullable")

    def coerce(self, value: Any) -> Any:
        """Validate/coerce ``value`` for storage in this column.

        ``None`` passes through for nullable columns. Ints are accepted for
        FLOAT columns (widened to float). Bools are *not* accepted for INT
        columns despite being an ``int`` subclass, because silently storing
        ``True`` as ``1`` loses intent.

        Raises:
            SchemaError: if the value does not fit the declared type.
        """
        if value is None:
            if self.nullable:
                return None
            raise SchemaError(f"column {self.name!r} is not nullable")
        column_type = self.type
        if column_type is ColumnType.JSON:
            return value
        if column_type is ColumnType.FLOAT and isinstance(value, int):
            if isinstance(value, bool):
                raise SchemaError(
                    f"column {self.name!r} expects float, got bool {value!r}"
                )
            return float(value)
        if column_type is ColumnType.INT and isinstance(value, bool):
            raise SchemaError(f"column {self.name!r} expects int, got bool {value!r}")
        expected = column_type.python_type
        assert expected is not None
        if not isinstance(value, expected):
            raise SchemaError(
                f"column {self.name!r} expects {column_type.value}, "
                f"got {type(value).__name__} {value!r}"
            )
        return value


class Schema:
    """An ordered, validated collection of :class:`Column` definitions."""

    def __init__(self, columns: Iterable[Column]) -> None:
        self._columns = tuple(columns)
        if not self._columns:
            raise SchemaError("a schema needs at least one column")
        names = [column.name for column in self._columns]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {duplicates}")
        primary = [column for column in self._columns if column.primary_key]
        if len(primary) > 1:
            raise SchemaError(
                "at most one primary key column is supported, got "
                + ", ".join(column.name for column in primary)
            )
        self._primary_key = primary[0] if primary else None
        self._by_name = {column.name: column for column in self._columns}

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self._columns)

    @property
    def primary_key(self) -> Column | None:
        return self._primary_key

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{column.name}:{column.type.value}" for column in self._columns
        )
        return f"Schema({parts})"

    def column(self, name: str) -> Column:
        """Return the column definition for ``name``.

        Raises:
            SchemaError: if the column does not exist.
        """
        column = self._by_name.get(name)
        if column is None:
            raise SchemaError(
                f"no such column {name!r}; have {list(self.column_names)}"
            )
        return column

    def coerce_row(self, row: Mapping[str, Any]) -> dict[str, Any]:
        """Validate a full row mapping against the schema.

        Missing nullable columns are filled with ``None``; missing
        non-nullable columns and unknown keys raise :class:`SchemaError`.
        """
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown columns in row: {sorted(unknown)}")
        coerced: dict[str, Any] = {}
        for column in self._columns:
            if column.name in row:
                coerced[column.name] = column.coerce(row[column.name])
            elif column.nullable:
                coerced[column.name] = None
            else:
                raise SchemaError(f"missing value for column {column.name!r}")
        return coerced
