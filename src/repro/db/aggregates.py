"""Aggregate functions for GROUP BY queries.

An :class:`Aggregate` is a tiny fold: ``initial() -> acc``,
``step(acc, row) -> acc``, ``final(acc) -> value``. The fluent API and the
SQL planner both instantiate these through the factory functions at the
bottom of the module (:func:`count`, :func:`sum_`, ...).

NULL handling follows SQL: NULL inputs are skipped by value aggregates;
``COUNT(*)`` counts rows, ``COUNT(col)`` counts non-NULL values; aggregates
over an empty or all-NULL group yield NULL (``None``), except ``COUNT`` which
yields 0.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any

from .errors import QueryError
from .expressions import ColumnRef, Expression


class Aggregate:
    """One aggregate computation over the rows of a group."""

    def __init__(
        self,
        name: str,
        expr: Expression | None,
        initial: Callable[[], Any],
        step: Callable[[Any, Any], Any],
        final: Callable[[Any], Any],
    ) -> None:
        self.name = name
        self.expr = expr
        self._initial = initial
        self._step = step
        self._final = final

    def initial(self) -> Any:
        return self._initial()

    def step(self, acc: Any, row: Mapping[str, Any]) -> Any:
        if self.expr is None:  # COUNT(*)
            return self._step(acc, None)
        value = self.expr.evaluate(row)
        if value is None and self.name != "count_star":
            return acc
        return self._step(acc, value)

    def final(self, acc: Any) -> Any:
        return self._final(acc)

    def __repr__(self) -> str:
        return f"Aggregate({self.name}, {self.expr!r})"


def _as_expression(column: str | Expression) -> Expression:
    if isinstance(column, Expression):
        return column
    return ColumnRef(column)


def count(column: str | Expression | None = None) -> Aggregate:
    """``COUNT(*)`` when ``column`` is None, else ``COUNT(column)``."""
    if column is None:
        return Aggregate(
            "count_star",
            None,
            initial=lambda: 0,
            step=lambda acc, _value: acc + 1,
            final=lambda acc: acc,
        )
    return Aggregate(
        "count",
        _as_expression(column),
        initial=lambda: 0,
        step=lambda acc, _value: acc + 1,
        final=lambda acc: acc,
    )


def count_distinct(column: str | Expression) -> Aggregate:
    """``COUNT(DISTINCT column)``."""
    return Aggregate(
        "count_distinct",
        _as_expression(column),
        initial=set,
        step=lambda acc, value: (acc.add(value), acc)[1],
        final=len,
    )


def sum_(column: str | Expression) -> Aggregate:
    """``SUM(column)``; NULL over an empty/all-NULL group."""
    return Aggregate(
        "sum",
        _as_expression(column),
        initial=lambda: None,
        step=lambda acc, value: value if acc is None else acc + value,
        final=lambda acc: acc,
    )


def avg(column: str | Expression) -> Aggregate:
    """``AVG(column)``; NULL over an empty/all-NULL group."""
    return Aggregate(
        "avg",
        _as_expression(column),
        initial=lambda: (0, 0),
        step=lambda acc, value: (acc[0] + value, acc[1] + 1),
        final=lambda acc: acc[0] / acc[1] if acc[1] else None,
    )


def min_(column: str | Expression) -> Aggregate:
    """``MIN(column)``; NULL over an empty/all-NULL group."""
    return Aggregate(
        "min",
        _as_expression(column),
        initial=lambda: None,
        step=lambda acc, value: value if acc is None or value < acc else acc,
        final=lambda acc: acc,
    )


def max_(column: str | Expression) -> Aggregate:
    """``MAX(column)``; NULL over an empty/all-NULL group."""
    return Aggregate(
        "max",
        _as_expression(column),
        initial=lambda: None,
        step=lambda acc, value: value if acc is None or value > acc else acc,
        final=lambda acc: acc,
    )


def _moments_step(acc: tuple, value: Any) -> tuple:
    """One ``(count, sum, sum-of-squares)`` accumulation step.

    Both executors compute variance from the same one-pass moments —
    the row fold here adds values left-to-right, the columnar kernel
    accumulates the same sums with sequential ``np.add.at`` — so their
    results agree bit-for-bit (int sums stay exact Python/int64 ints,
    float sums share the reduction order).
    """
    count, total, total_sq = acc
    return (count + 1, total + value, total_sq + value * value)


def variance_from_moments(count: int, total: Any, total_sq: Any) -> Any:
    """Population variance from one-pass moments; NULL for ``n=0``.

    The ``total_sq/n - mean**2`` form can go slightly negative from
    rounding on near-constant groups; it is clamped at zero so STDDEV
    never takes the square root of a negative.
    """
    if not count:
        return None
    mean = total / count
    value = total_sq / count - mean * mean
    return value if value > 0.0 else 0.0


def stddev_from_moments(count: int, total: Any, total_sq: Any) -> Any:
    """Population standard deviation from one-pass moments."""
    variance = variance_from_moments(count, total, total_sq)
    return None if variance is None else variance**0.5


def variance(column: str | Expression) -> Aggregate:
    """Population ``VARIANCE(column)``; NULL over empty/all-NULL groups."""
    return Aggregate(
        "variance",
        _as_expression(column),
        initial=lambda: (0, 0, 0),
        step=_moments_step,
        final=lambda acc: variance_from_moments(*acc),
    )


def stddev(column: str | Expression) -> Aggregate:
    """Population ``STDDEV(column)``; NULL over empty/all-NULL groups."""
    return Aggregate(
        "stddev",
        _as_expression(column),
        initial=lambda: (0, 0, 0),
        step=_moments_step,
        final=lambda acc: stddev_from_moments(*acc),
    )


def collect(column: str | Expression) -> Aggregate:
    """Gather the group's non-NULL values into a list (engine extension)."""
    return Aggregate(
        "collect",
        _as_expression(column),
        initial=list,
        step=lambda acc, value: (acc.append(value), acc)[1],
        final=lambda acc: acc,
    )


#: SQL function name -> factory, used by the SQL planner.
SQL_AGGREGATES: dict[str, Callable[..., Aggregate]] = {
    "count": count,
    "sum": sum_,
    "avg": avg,
    "min": min_,
    "max": max_,
    "stddev": stddev,
    "variance": variance,
}


def sql_aggregate(name: str, argument: Expression | None, distinct: bool) -> Aggregate:
    """Instantiate an aggregate from its SQL spelling.

    Raises:
        QueryError: for unknown functions or unsupported DISTINCT use.
    """
    key = name.lower()
    factory = SQL_AGGREGATES.get(key)
    if factory is None:
        raise QueryError(f"unknown aggregate function {name!r}")
    if distinct:
        if key != "count" or argument is None:
            raise QueryError("DISTINCT is only supported with COUNT(column)")
        return count_distinct(argument)
    if key == "count":
        return count(argument)
    if argument is None:
        raise QueryError(f"{name.upper()} requires a column argument")
    return factory(argument)
