"""Database catalog: named tables plus cross-table services.

A :class:`Database` owns :class:`~repro.db.table.Table` objects, resolves
foreign keys between them, hands out :class:`~repro.db.query.Query` builders,
and executes SQL SELECT statements through :mod:`repro.db.sql`.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from typing import Any

from .errors import QueryError, SchemaError
from .query import Query
from .schema import Schema
from .table import Table


class Database:
    """An in-process database: a catalog of tables."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._plan_cache: Any = None  # built lazily on first sql()

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: Schema) -> Table:
        """Create a table; raises :class:`SchemaError` if the name is taken
        or a declared foreign key references a missing table/column."""
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        if not name or name != name.lower() or not name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid table name: {name!r}")
        for column in schema:
            fk = column.foreign_key
            if fk is None:
                continue
            if fk.table not in self._tables and fk.table != name:
                raise SchemaError(
                    f"foreign key on {name}.{column.name} references "
                    f"unknown table {fk.table!r}"
                )
            target = self._tables.get(fk.table)
            if target is not None and fk.column not in target.schema:
                raise SchemaError(
                    f"foreign key on {name}.{column.name} references "
                    f"unknown column {fk.table}.{fk.column}"
                )
        table = Table(name, schema, database=self)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog.

        Raises:
            SchemaError: if the table does not exist or other tables hold
                foreign keys into it.
        """
        if name not in self._tables:
            raise SchemaError(f"no such table {name!r}")
        dependents = [
            other.name
            for other in self._tables.values()
            if other.name != name
            and any(
                column.foreign_key is not None
                and column.foreign_key.table == name
                for column in other.schema
            )
        ]
        if dependents:
            raise SchemaError(
                f"cannot drop {name!r}: referenced by {sorted(dependents)}"
            )
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Look up a table by name.

        Raises:
            QueryError: if the table does not exist.
        """
        table = self._tables.get(name)
        if table is None:
            raise QueryError(
                f"no such table {name!r}; have {sorted(self._tables)}"
            )
        return table

    def table_names(self) -> tuple[str, ...]:
        """All table names, sorted."""
        return tuple(sorted(self._tables))

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __repr__(self) -> str:
        summary = ", ".join(
            f"{table.name}[{len(table)}]" for table in self._tables.values()
        )
        return f"Database({self.name!r}: {summary})"

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, table_name: str) -> Query:
        """Start a fluent query on ``table_name``."""
        self.table(table_name)  # validate early
        return Query(self, table_name)

    def sql(
        self,
        text: str,
        params: list[Any] | tuple[Any, ...] | None = None,
        *,
        reference: bool = False,
    ) -> list[dict[str, Any]]:
        """Execute a SQL statement (SELECT/INSERT/UPDATE/DELETE).

        SELECT returns its result rows; DML statements return
        ``[{"rows": <affected count>}]``. See :mod:`repro.db.sql` for the
        supported dialect. Statements may contain ``?`` placeholders,
        bound positionally from ``params``; plans are cached per
        database (LRU keyed by normalized SQL), so repeated statements
        skip tokenizing and parsing. ``reference=True`` pins SELECTs to
        the row-at-a-time executor instead of the vectorised columnar
        one (for ablations and equivalence checks).
        """
        return self.prepare(text).execute(
            self, params, reference=reference
        )

    def prepare(self, text: str):
        """Parse ``text`` into a cached, reusable prepared statement.

        Returns:
            repro.db.sql.plan_cache.PreparedStatement: execute it with
            ``plan.execute(db, params)``.
        """
        if self._plan_cache is None:
            from .sql.plan_cache import PlanCache

            self._plan_cache = PlanCache()
        return self._plan_cache.lookup(text)

    def explain(
        self,
        text: str,
        params: list[Any] | tuple[Any, ...] | None = None,
    ) -> dict[str, Any]:
        """Describe how a statement would execute (executor, push-down,
        group-by strategy) without running it."""
        return self.prepare(text).explain(self, params)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, dict[str, Any]]:
        """Per-table row counts and index inventory (for diagnostics)."""
        return {
            table.name: {
                "rows": len(table),
                "columns": list(table.schema.column_names),
                "indexed": sorted(table.indexed_columns()),
            }
            for table in self._tables.values()
        }
