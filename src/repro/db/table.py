"""Column-oriented table storage with primary-key and secondary indexes.

A :class:`Table` stores rows column-major (one Python list per column), which
keeps bulk analytical scans cache-friendly and makes column extraction
(``table.column_values("size")``) an O(1) reference handout. Deletes use
tombstones; :meth:`Table.compact` reclaims space and renumbers row ids.

Constraint enforcement on write:

* primary key (implicit unique + not-null),
* ``unique`` columns,
* ``nullable`` declarations,
* foreign keys, when the table is attached to a
  :class:`~repro.db.database.Database` that can resolve the referenced table.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping
from typing import TYPE_CHECKING, Any

from .errors import ConstraintViolation, QueryError, SchemaError
from .expressions import Expression, extract_equalities
from .schema import Column, Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database


class Table:
    """A single table: schema, column arrays, and indexes."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        database: "Database | None" = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self._database = database
        self._columns: dict[str, list[Any]] = {
            column.name: [] for column in schema
        }
        self._live: list[bool] = []
        self._live_count = 0
        # Row-data version: bumped on every mutation so cached columnar
        # blocks (see :meth:`columnar`) know when they are stale.
        self._version = 0
        self._columnar_store: Any = None
        # Unique indexes: column name -> {value: row id}
        self._unique_indexes: dict[str, dict[Any, int]] = {}
        # Secondary (non-unique) indexes: column name -> {value: [row ids]}
        self._secondary_indexes: dict[str, dict[Any, list[int]]] = {}
        for column in schema:
            if column.primary_key or column.unique:
                self._unique_indexes[column.name] = {}
            elif column.indexed:
                self._secondary_indexes[column.name] = {}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._live_count

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {self._live_count} rows)"

    @property
    def primary_key_column(self) -> Column | None:
        return self.schema.primary_key

    @property
    def version(self) -> int:
        """Monotonic counter of row-data mutations."""
        return self._version

    def columnar(self):
        """The table's columnar image, rebuilt lazily after mutations.

        Returns a :class:`repro.db.columnar.ColumnStore` whose blocks are
        built per column on first touch and cached until the next write.
        A racing write simply leaves a stale store behind for the garbage
        collector; readers always re-check the version first.
        """
        from .columnar import ColumnStore

        store = self._columnar_store
        if store is None or store.version != self._version:
            store = ColumnStore(self)
            self._columnar_store = store
        return store

    def indexed_columns(self) -> frozenset[str]:
        """Names of columns served by any index (unique or secondary)."""
        return frozenset(self._unique_indexes) | frozenset(
            self._secondary_indexes
        )

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, row: Mapping[str, Any]) -> int:
        """Insert one row; returns its internal row id.

        Raises:
            SchemaError: on type/shape mismatch.
            ConstraintViolation: on unique or foreign-key failure.
        """
        coerced = self.schema.coerce_row(row)
        self._check_unique(coerced)
        self._check_foreign_keys(coerced)
        row_id = len(self._live)
        for name, values in self._columns.items():
            values.append(coerced[name])
        self._live.append(True)
        self._live_count += 1
        self._version += 1
        self._index_row(row_id, coerced)
        return row_id

    def bulk_insert(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """Insert many rows; returns the number inserted.

        The insert is atomic per-row, not per-batch: a failing row raises
        after earlier rows have been inserted. Callers that need batch
        atomicity should validate first or use a fresh table.
        """
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def update(self, values: Mapping[str, Any], where: Expression | None = None) -> int:
        """Set ``values`` on all rows matching ``where``; returns the count."""
        for name in values:
            self.schema.column(name)  # raises SchemaError on unknown column
        touched = [
            row_id
            for row_id in self._candidate_row_ids(where)
            if self._live[row_id]
            and (where is None or bool(where.evaluate(self._row_at(row_id))))
        ]
        for row_id in touched:
            old = self._row_at(row_id)
            new = dict(old)
            for name, value in values.items():
                new[name] = self.schema.column(name).coerce(value)
            self._check_unique(new, ignore_row_id=row_id)
            self._check_foreign_keys(new)
            self._unindex_row(row_id, old)
            for name, value in new.items():
                self._columns[name][row_id] = value
            self._index_row(row_id, new)
        if touched:
            self._version += 1
        return len(touched)

    def delete(self, where: Expression | None = None) -> int:
        """Delete all rows matching ``where`` (all rows if ``None``)."""
        touched = [
            row_id
            for row_id in self._candidate_row_ids(where)
            if self._live[row_id]
            and (where is None or bool(where.evaluate(self._row_at(row_id))))
        ]
        for row_id in touched:
            self._unindex_row(row_id, self._row_at(row_id))
            self._live[row_id] = False
        self._live_count -= len(touched)
        if touched:
            self._version += 1
        return len(touched)

    def compact(self) -> int:
        """Drop tombstoned rows and rebuild indexes; returns rows reclaimed."""
        dead = len(self._live) - self._live_count
        if not dead:
            return 0
        keep = [row_id for row_id, live in enumerate(self._live) if live]
        for name, values in self._columns.items():
            self._columns[name] = [values[row_id] for row_id in keep]
        self._live = [True] * len(keep)
        self._version += 1
        self._rebuild_indexes()
        return dead

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate over all live rows as fresh dicts."""
        names = self.schema.column_names
        columns = [self._columns[name] for name in names]
        for row_id, live in enumerate(self._live):
            if live:
                yield {
                    name: column[row_id]
                    for name, column in zip(names, columns)
                }

    def get(self, pk_value: Any) -> dict[str, Any] | None:
        """Fetch a row by primary key; ``None`` if absent.

        Raises:
            QueryError: if the table has no primary key.
        """
        pk = self.schema.primary_key
        if pk is None:
            raise QueryError(f"table {self.name!r} has no primary key")
        row_id = self._unique_indexes[pk.name].get(pk_value)
        if row_id is None:
            return None
        return self._row_at(row_id)

    def lookup(self, column_name: str, value: Any) -> list[dict[str, Any]]:
        """Fetch all rows where ``column_name == value``, via index if any."""
        if column_name in self._unique_indexes:
            row_id = self._unique_indexes[column_name].get(value)
            return [] if row_id is None else [self._row_at(row_id)]
        if column_name in self._secondary_indexes:
            row_ids = self._secondary_indexes[column_name].get(value, [])
            return [self._row_at(row_id) for row_id in row_ids]
        self.schema.column(column_name)
        return [row for row in self.rows() if row[column_name] == value]

    def scan(self, where: Expression | None = None) -> Iterator[dict[str, Any]]:
        """Iterate rows matching ``where``, using indexes when possible.

        Equality conditions on indexed columns in a top-level AND narrow the
        candidate set before the full predicate is applied as a residual
        filter, so indexed scans and full scans return identical results.
        """
        candidates = self._candidate_row_ids(where)
        for row_id in candidates:
            if not self._live[row_id]:
                continue
            row = self._row_at(row_id)
            if where is None or bool(where.evaluate(row)):
                yield row

    def column_values(self, column_name: str) -> list[Any]:
        """All live values of one column, in row order."""
        self.schema.column(column_name)
        values = self._columns[column_name]
        if self._live_count == len(self._live):
            return list(values)
        return [
            values[row_id]
            for row_id, live in enumerate(self._live)
            if live
        ]

    def contains_value(self, column_name: str, value: Any) -> bool:
        """Whether any live row has ``column_name == value`` (index-backed)."""
        if column_name in self._unique_indexes:
            return value in self._unique_indexes[column_name]
        if column_name in self._secondary_indexes:
            return bool(self._secondary_indexes[column_name].get(value))
        return any(
            row[column_name] == value for row in self.rows()
        )

    # ------------------------------------------------------------------
    # index management
    # ------------------------------------------------------------------
    def create_index(self, column_name: str) -> None:
        """Create a secondary hash index on ``column_name`` after the fact."""
        column = self.schema.column(column_name)
        if column_name in self._unique_indexes or (
            column_name in self._secondary_indexes
        ):
            return  # idempotent
        index: dict[Any, list[int]] = {}
        for row_id, live in enumerate(self._live):
            if live:
                index.setdefault(
                    self._columns[column.name][row_id], []
                ).append(row_id)
        self._secondary_indexes[column_name] = index

    def _rebuild_indexes(self) -> None:
        for index in self._unique_indexes.values():
            index.clear()
        for index in self._secondary_indexes.values():
            index.clear()
        for row_id, live in enumerate(self._live):
            if live:
                self._index_row(row_id, self._row_at(row_id))

    def _index_row(self, row_id: int, row: Mapping[str, Any]) -> None:
        for name, index in self._unique_indexes.items():
            value = row[name]
            if value is not None:
                index[value] = row_id
        for name, index in self._secondary_indexes.items():
            index.setdefault(row[name], []).append(row_id)

    def _unindex_row(self, row_id: int, row: Mapping[str, Any]) -> None:
        for name, index in self._unique_indexes.items():
            value = row[name]
            if value is not None and index.get(value) == row_id:
                del index[value]
        for name, index in self._secondary_indexes.items():
            bucket = index.get(row[name])
            if bucket is not None:
                try:
                    bucket.remove(row_id)
                except ValueError:
                    pass
                if not bucket:
                    del index[row[name]]

    # ------------------------------------------------------------------
    # constraint checks
    # ------------------------------------------------------------------
    def _check_unique(
        self, row: Mapping[str, Any], ignore_row_id: int | None = None
    ) -> None:
        for name, index in self._unique_indexes.items():
            value = row[name]
            if value is None:
                continue
            existing = index.get(value)
            if existing is not None and existing != ignore_row_id:
                kind = (
                    "primary key"
                    if self.schema.column(name).primary_key
                    else "unique"
                )
                raise ConstraintViolation(
                    f"{kind} violation on {self.name}.{name}: "
                    f"value {value!r} already present"
                )

    def _check_foreign_keys(self, row: Mapping[str, Any]) -> None:
        if self._database is None:
            return
        for column in self.schema:
            fk = column.foreign_key
            if fk is None:
                continue
            value = row[column.name]
            if value is None:
                continue
            target = self._database.table(fk.table)
            if not target.contains_value(fk.column, value):
                raise ConstraintViolation(
                    f"foreign key violation: {self.name}.{column.name}="
                    f"{value!r} has no match in {fk.table}.{fk.column}"
                )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _row_at(self, row_id: int) -> dict[str, Any]:
        return {
            name: values[row_id] for name, values in self._columns.items()
        }

    def _candidate_row_ids(self, where: Expression | None) -> Iterable[int]:
        """Row ids worth testing for ``where``; index-narrowed when possible."""
        for name, value in extract_equalities(where):
            bare = name.rsplit(".", 1)[-1]
            if bare in self._unique_indexes:
                row_id = self._unique_indexes[bare].get(value)
                return [] if row_id is None else [row_id]
            if bare in self._secondary_indexes:
                # Sorted so index-narrowed scans keep row order (buckets
                # drift out of order when updates re-append row ids).
                return sorted(self._secondary_indexes[bare].get(value, []))
        return range(len(self._live))
