"""Errors raised by the embedded storage engine."""

from __future__ import annotations

from ..datamodel.errors import ReproError


class DatabaseError(ReproError):
    """Base class for storage-engine errors."""


class SchemaError(DatabaseError):
    """A schema definition is invalid, or data does not match the schema."""


class ConstraintViolation(DatabaseError):
    """A primary-key, unique, not-null or foreign-key constraint failed."""


class QueryError(DatabaseError):
    """A query is malformed or references unknown tables/columns."""


class SqlSyntaxError(QueryError):
    """The SQL text could not be parsed.

    Attributes:
        position: character offset of the offending token in the SQL text,
            or ``None`` when the error is not tied to a location.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position
