"""Row expressions and predicates for queries.

Expressions form a small tree evaluated against row mappings. They are built
either through the fluent API::

    from repro.db import col
    predicate = (col("region") == "ITA") & (col("size") >= 5)

or by the SQL parser, which compiles ``WHERE`` clauses into the same tree.

Column references support qualified names (``"recipes.region"``). When a row
produced by a join carries qualified keys, an unqualified reference resolves
by unique suffix match; ambiguous references raise :class:`QueryError`.

NULL semantics are three-valued, as in SQL: a comparison with a NULL
operand evaluates to ``None`` (unknown), AND/OR/NOT propagate unknowns
per Kleene logic, and ``IN`` yields unknown when the probe is NULL or
when there is no match but the list contains NULL. Filters treat unknown
as "not true", so ``x = 5``, ``x != 5`` and ``NOT (x = 5)`` all exclude
rows where ``x`` is NULL. These semantics are shared by the row
evaluator here and the vectorised kernels in :mod:`repro.db.columnar`,
so the two executors agree by construction.
"""

from __future__ import annotations

import operator
from collections.abc import Callable, Iterable, Mapping
from typing import Any

from .errors import QueryError

_MISSING = object()


class Expression:
    """Base class for evaluable row expressions."""

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        raise NotImplementedError

    # -- comparisons ------------------------------------------------------
    def __eq__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison("=", self, _wrap(other))

    def __ne__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison("!=", self, _wrap(other))

    def __lt__(self, other: Any) -> "Comparison":
        return Comparison("<", self, _wrap(other))

    def __le__(self, other: Any) -> "Comparison":
        return Comparison("<=", self, _wrap(other))

    def __gt__(self, other: Any) -> "Comparison":
        return Comparison(">", self, _wrap(other))

    def __ge__(self, other: Any) -> "Comparison":
        return Comparison(">=", self, _wrap(other))

    __hash__ = None  # type: ignore[assignment]  # == builds predicates

    # -- boolean connectives ----------------------------------------------
    def __and__(self, other: "Expression") -> "BooleanOp":
        return BooleanOp("and", (self, _require_expression(other)))

    def __or__(self, other: "Expression") -> "BooleanOp":
        return BooleanOp("or", (self, _require_expression(other)))

    def __invert__(self) -> "Not":
        return Not(self)

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: Any) -> "Arithmetic":
        return Arithmetic("+", self, _wrap(other))

    def __sub__(self, other: Any) -> "Arithmetic":
        return Arithmetic("-", self, _wrap(other))

    def __mul__(self, other: Any) -> "Arithmetic":
        return Arithmetic("*", self, _wrap(other))

    def __truediv__(self, other: Any) -> "Arithmetic":
        return Arithmetic("/", self, _wrap(other))

    # -- predicates ---------------------------------------------------------
    def isin(self, values: Iterable[Any]) -> "InList":
        """Membership predicate (SQL ``IN``)."""
        return InList(self, tuple(values))

    def is_null(self) -> "IsNull":
        """NULL test (SQL ``IS NULL``)."""
        return IsNull(self, negate=False)

    def is_not_null(self) -> "IsNull":
        """Non-NULL test (SQL ``IS NOT NULL``)."""
        return IsNull(self, negate=True)

    def like(self, pattern: str) -> "Like":
        """SQL ``LIKE`` with ``%`` (any run) and ``_`` (any char) wildcards."""
        return Like(self, pattern)


def _wrap(value: Any) -> Expression:
    if isinstance(value, Expression):
        return value
    return Literal(value)


def _require_expression(value: Any) -> Expression:
    if not isinstance(value, Expression):
        raise QueryError(
            f"boolean connectives need Expression operands, got {value!r}"
        )
    return value


class ColumnRef(Expression):
    """Reference to a column, optionally table-qualified."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise QueryError("column reference needs a name")
        self.name = name

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        value = row.get(self.name, _MISSING)
        if value is not _MISSING:
            return value
        # Unqualified reference against a join row with qualified keys, or
        # qualified reference against a plain row: resolve by suffix/prefix.
        if "." not in self.name:
            suffix = "." + self.name
            matches = [key for key in row if key.endswith(suffix)]
            if len(matches) == 1:
                return row[matches[0]]
            if len(matches) > 1:
                raise QueryError(
                    f"ambiguous column {self.name!r}: matches {sorted(matches)}"
                )
        else:
            bare = self.name.rsplit(".", 1)[1]
            if bare in row:
                return row[bare]
        raise QueryError(
            f"no such column {self.name!r}; row has {sorted(row)}"
        )

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expression):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Comparison(Expression):
    """Binary comparison with SQL's three-valued NULL semantics: a
    comparison against NULL evaluates to ``None`` (unknown), which
    filters treat as "not true"."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _COMPARATORS:
            raise QueryError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: Mapping[str, Any]) -> bool | None:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        try:
            return _COMPARATORS[self.op](left, right)
        except TypeError as exc:
            raise QueryError(
                f"cannot compare {left!r} {self.op} {right!r}: {exc}"
            ) from exc

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class BooleanOp(Expression):
    """N-ary AND / OR: short-circuiting Kleene (three-valued) logic.

    AND returns False as soon as any operand is False, None (unknown) if
    no operand is False but some is NULL, else True; OR is the dual.
    """

    __slots__ = ("op", "parts")

    def __init__(self, op: str, parts: tuple[Expression, ...]) -> None:
        if op not in ("and", "or"):
            raise QueryError(f"unknown boolean operator {op!r}")
        # Flatten nested same-op nodes so index extraction sees all conjuncts.
        flattened: list[Expression] = []
        for part in parts:
            if isinstance(part, BooleanOp) and part.op == op:
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        self.op = op
        self.parts = tuple(flattened)

    def evaluate(self, row: Mapping[str, Any]) -> bool | None:
        dominant = self.op == "or"  # True dominates OR, False dominates AND
        saw_null = False
        for part in self.parts:
            value = part.evaluate(row)
            if value is None:
                saw_null = True
            elif bool(value) == dominant:
                return dominant
        if saw_null:
            return None
        return not dominant

    def __repr__(self) -> str:
        joiner = f" {self.op} "
        return "(" + joiner.join(repr(part) for part in self.parts) + ")"


class Not(Expression):
    """Logical negation."""

    __slots__ = ("inner",)

    def __init__(self, inner: Expression) -> None:
        self.inner = inner

    def evaluate(self, row: Mapping[str, Any]) -> bool | None:
        value = self.inner.evaluate(row)
        if value is None:
            return None  # NOT unknown is still unknown
        return not bool(value)

    def __repr__(self) -> str:
        return f"(not {self.inner!r})"


class InList(Expression):
    """Membership in a fixed collection of values."""

    __slots__ = ("inner", "values", "_value_set")

    def __init__(self, inner: Expression, values: tuple[Any, ...]) -> None:
        self.inner = inner
        self.values = values
        try:
            self._value_set: frozenset[Any] | None = frozenset(values)
        except TypeError:  # unhashable values: fall back to linear scan
            self._value_set = None

    def evaluate(self, row: Mapping[str, Any]) -> bool | None:
        value = self.inner.evaluate(row)
        if value is None:
            return None  # NULL IN (...) is unknown
        if self._value_set is not None:
            try:
                found = value in self._value_set
            except TypeError:
                found = False
        else:
            found = any(
                item is not None and item == value for item in self.values
            )
        if found:
            return True
        if any(item is None for item in self.values):
            return None  # no match, but the list holds NULL: unknown
        return False

    def __repr__(self) -> str:
        return f"({self.inner!r} in {list(self.values)!r})"


class IsNull(Expression):
    """NULL / NOT NULL test."""

    __slots__ = ("inner", "negate")

    def __init__(self, inner: Expression, negate: bool) -> None:
        self.inner = inner
        self.negate = negate

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        is_null = self.inner.evaluate(row) is None
        return not is_null if self.negate else is_null

    def __repr__(self) -> str:
        op = "is not null" if self.negate else "is null"
        return f"({self.inner!r} {op})"


class Like(Expression):
    """SQL LIKE matching with ``%`` and ``_`` wildcards (case-sensitive)."""

    __slots__ = ("inner", "pattern", "_regex")

    def __init__(self, inner: Expression, pattern: str) -> None:
        import re

        self.inner = inner
        self.pattern = pattern
        fragments = ["^"]
        for char in pattern:
            if char == "%":
                fragments.append(".*")
            elif char == "_":
                fragments.append(".")
            else:
                fragments.append(re.escape(char))
        fragments.append("$")
        self._regex = re.compile("".join(fragments), flags=re.DOTALL)

    def evaluate(self, row: Mapping[str, Any]) -> bool | None:
        value = self.inner.evaluate(row)
        if value is None:
            return None  # NULL LIKE ... is unknown
        if not isinstance(value, str):
            return False
        return self._regex.match(value) is not None

    def __repr__(self) -> str:
        return f"({self.inner!r} like {self.pattern!r})"


_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


class Arithmetic(Expression):
    """Binary arithmetic on row values. NULL operands yield NULL."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _ARITHMETIC:
            raise QueryError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        try:
            return _ARITHMETIC[self.op](left, right)
        except ZeroDivisionError:
            return None  # SQL semantics: x / 0 -> NULL

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Parameter(Expression):
    """A ``?`` placeholder in a prepared statement.

    Parameters are positional (0-based ``index`` in appearance order) and
    must be bound to literal values before execution; evaluating an
    unbound parameter is an error.
    """

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        raise QueryError(
            f"unbound statement parameter ?{self.index + 1}; "
            "pass params=[...] when executing"
        )

    def __repr__(self) -> str:
        return f"param({self.index})"


def transform(
    expr: Expression, fn: Callable[[Expression], Expression]
) -> Expression:
    """Bottom-up tree rewrite: rebuild ``expr`` with transformed children,
    then apply ``fn`` to every node. Leaves (column refs, literals,
    parameters) are passed to ``fn`` directly."""
    rebuilt: Expression
    if isinstance(expr, Comparison):
        rebuilt = Comparison(
            expr.op, transform(expr.left, fn), transform(expr.right, fn)
        )
    elif isinstance(expr, BooleanOp):
        rebuilt = BooleanOp(
            expr.op, tuple(transform(part, fn) for part in expr.parts)
        )
    elif isinstance(expr, Not):
        rebuilt = Not(transform(expr.inner, fn))
    elif isinstance(expr, Arithmetic):
        rebuilt = Arithmetic(
            expr.op, transform(expr.left, fn), transform(expr.right, fn)
        )
    elif isinstance(expr, InList):
        rebuilt = InList(
            transform(expr.inner, fn),
            tuple(
                fn(value) if isinstance(value, Expression) else value
                for value in expr.values
            ),
        )
    elif isinstance(expr, IsNull):
        rebuilt = IsNull(transform(expr.inner, fn), negate=expr.negate)
    elif isinstance(expr, Like):
        rebuilt = Like(transform(expr.inner, fn), expr.pattern)
    else:
        rebuilt = expr
    return fn(rebuilt)


def _fold_node(expr: Expression) -> Expression:
    """Fold one node whose children are already folded."""
    if isinstance(expr, (Comparison, Arithmetic)):
        if isinstance(expr.left, Literal) and isinstance(expr.right, Literal):
            try:
                return Literal(expr.evaluate({}))
            except QueryError:
                return expr  # e.g. 1 < 'a': leave for runtime semantics
    elif isinstance(expr, Not):
        if isinstance(expr.inner, Literal):
            return Literal(expr.evaluate({}))
    elif isinstance(expr, BooleanOp):
        dominant = expr.op == "or"
        kept: list[Expression] = []
        for part in expr.parts:
            if isinstance(part, Literal) and part.value is not None:
                if bool(part.value) == dominant:
                    return Literal(dominant)  # TRUE OR ... / FALSE AND ...
                continue  # neutral element: drop it
            kept.append(part)
        if not kept:
            return Literal(not dominant)
        if len(kept) == 1 and not any(
            isinstance(part, Literal) and part.value is None
            for part in expr.parts
        ):
            return kept[0]
        if len(kept) != len(expr.parts):
            return BooleanOp(expr.op, tuple(kept))
    elif isinstance(expr, (InList, Like, IsNull)):
        if isinstance(expr.inner, Literal) and not any(
            isinstance(value, Expression)
            for value in getattr(expr, "values", ())
        ):
            return Literal(expr.evaluate({}))
    return expr


def fold_constants(expr: Expression) -> Expression:
    """Constant-fold an expression tree.

    Literal-only subtrees collapse to :class:`Literal` nodes; AND/OR
    short-circuit on literal TRUE/FALSE operands. Folding never raises:
    subtrees whose evaluation would error (e.g. comparing incompatible
    literal types) are left intact so runtime semantics are unchanged.
    Unbound :class:`Parameter` nodes are never folded.
    """
    return transform(expr, _fold_node)


def col(name: str) -> ColumnRef:
    """Create a column reference for the fluent query API."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Create a literal expression (rarely needed explicitly)."""
    return Literal(value)


def extract_equalities(
    predicate: Expression | None,
) -> list[tuple[str, Any]]:
    """Extract top-level AND-ed ``column = literal`` conditions.

    Used by the planner to decide whether a secondary index or the primary
    key can serve a ``where`` clause. OR branches and non-equality
    comparisons yield nothing (the full predicate is still applied as a
    residual filter after index lookup).
    """
    if predicate is None:
        return []
    conjuncts: tuple[Expression, ...]
    if isinstance(predicate, BooleanOp) and predicate.op == "and":
        conjuncts = predicate.parts
    else:
        conjuncts = (predicate,)
    equalities: list[tuple[str, Any]] = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            continue
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            equalities.append((left.name, right.value))
        elif isinstance(right, ColumnRef) and isinstance(left, Literal):
            equalities.append((right.name, left.value))
    return equalities
