"""Tokenizer for the SQL SELECT dialect.

Produces a flat list of :class:`Token` objects. Keywords are recognised
case-insensitively and normalised to upper case; identifiers keep their
original spelling lower-cased (the engine stores lower-case names).
Qualified identifiers (``recipes.region_code``) are emitted as a single
IDENT token containing the dot.
"""

from __future__ import annotations

import dataclasses

from ..errors import SqlSyntaxError

KEYWORDS = frozenset(
    {
        "SELECT", "DISTINCT", "FROM", "JOIN", "LEFT", "INNER", "ON",
        "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
        "WHERE", "GROUP", "ORDER", "BY", "HAVING", "LIMIT", "OFFSET",
        "AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE",
        "ASC", "DESC", "TRUE", "FALSE",
    }
)

_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "*", "/")
_PUNCTUATION = ("(", ")", ",")


@dataclasses.dataclass(frozen=True, slots=True)
class Token:
    """One lexical token.

    Attributes:
        kind: ``KEYWORD``, ``IDENT``, ``NUMBER``, ``STRING``, ``OP``,
            ``PUNCT``, ``PARAM`` (a ``?`` placeholder) or ``EOF``.
        value: normalised token text (or the parsed value for NUMBER/STRING).
        position: character offset in the source text, for error messages.
    """

    kind: str
    value: object
    position: int


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "'":
            value, index = _read_string(text, index)
            tokens.append(Token("STRING", value, index))
            continue
        if char.isdigit() or (
            char == "." and index + 1 < length and text[index + 1].isdigit()
        ):
            value, index = _read_number(text, index)
            tokens.append(Token("NUMBER", value, index))
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (
                text[index].isalnum() or text[index] in "_."
            ):
                index += 1
            word = text[start:index]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, start))
            else:
                tokens.append(Token("IDENT", word.lower(), start))
            continue
        matched = False
        for operator in _OPERATORS:
            if text.startswith(operator, index):
                canonical = "!=" if operator == "<>" else operator
                tokens.append(Token("OP", canonical, index))
                index += len(operator)
                matched = True
                break
        if matched:
            continue
        if char in _PUNCTUATION:
            tokens.append(Token("PUNCT", char, index))
            index += 1
            continue
        if char == "?":
            tokens.append(Token("PARAM", "?", index))
            index += 1
            continue
        raise SqlSyntaxError(f"unexpected character {char!r}", index)
    tokens.append(Token("EOF", None, length))
    return tokens


def _read_string(text: str, index: int) -> tuple[str, int]:
    start = index
    index += 1  # consume opening quote
    fragments: list[str] = []
    while index < len(text):
        char = text[index]
        if char == "'":
            if text.startswith("''", index):  # escaped quote
                fragments.append("'")
                index += 2
                continue
            return "".join(fragments), index + 1
        fragments.append(char)
        index += 1
    raise SqlSyntaxError("unterminated string literal", start)


def _read_number(text: str, index: int) -> tuple[int | float, int]:
    start = index
    seen_dot = False
    seen_exponent = False
    while index < len(text):
        char = text[index]
        if char.isdigit():
            index += 1
        elif char == "." and not seen_dot and not seen_exponent:
            seen_dot = True
            index += 1
        elif char in "eE" and not seen_exponent and index > start:
            seen_exponent = True
            index += 1
            if index < len(text) and text[index] in "+-":
                index += 1
        else:
            break
    literal = text[start:index]
    try:
        if seen_dot or seen_exponent:
            return float(literal), index
        return int(literal), index
    except ValueError as exc:
        raise SqlSyntaxError(f"bad number literal {literal!r}", start) from exc
