"""Recursive-descent parser for the SQL SELECT dialect.

Grammar (informally)::

    select    := SELECT [DISTINCT] items FROM ident join* [WHERE expr]
                 [GROUP BY ident (, ident)*] [HAVING expr]
                 [ORDER BY order (, order)*] [LIMIT number [OFFSET number]]
    items     := '*' | item (',' item)*
    item      := expr [AS ident | ident]
    join      := [LEFT | INNER] JOIN ident ON ident '=' ident
    order     := ident [ASC | DESC]
    expr      := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | predicate
    predicate := additive (cmp additive | IS [NOT] NULL |
                 [NOT] IN '(' literal (',' literal)* ')' | [NOT] LIKE string)?
    additive  := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/') unary)*
    unary     := '-' unary | primary
    primary   := literal | ident | aggregate | '(' expr ')'
    aggregate := (COUNT|SUM|AVG|MIN|MAX) '(' ('*' | [DISTINCT] expr) ')'

Predicates compile directly into the engine's
:mod:`repro.db.expressions` tree, so SQL and the fluent API share one
evaluator. Aggregate calls are represented by :class:`AggregateCall`
placeholder nodes that the planner lowers onto
:mod:`repro.db.aggregates`; they are only legal as top-level select items.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from typing import Any

from ..errors import SqlSyntaxError
from ..expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Parameter,
)
from .tokenizer import Token, tokenize

_AGGREGATE_NAMES = frozenset(
    {"count", "sum", "avg", "min", "max", "stddev", "variance"}
)


class AggregateCall(Expression):
    """Placeholder for an aggregate function in a select list."""

    __slots__ = ("function", "argument", "distinct")

    def __init__(
        self, function: str, argument: Expression | None, distinct: bool
    ) -> None:
        self.function = function
        self.argument = argument
        self.distinct = distinct

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        raise SqlSyntaxError(
            f"aggregate {self.function.upper()}() used outside a select list"
        )

    def default_alias(self) -> str:
        if self.argument is None:
            return self.function
        if isinstance(self.argument, ColumnRef):
            return f"{self.function}_{self.argument.name.rsplit('.', 1)[-1]}"
        return self.function

    def __repr__(self) -> str:
        inner = "*" if self.argument is None else repr(self.argument)
        distinct = "distinct " if self.distinct else ""
        return f"{self.function}({distinct}{inner})"


@dataclasses.dataclass(frozen=True, slots=True)
class SelectItem:
    """One select-list entry; ``expr`` may be an :class:`AggregateCall`."""

    expr: Expression
    alias: str


@dataclasses.dataclass(frozen=True, slots=True)
class JoinClause:
    table: str
    left_column: str
    right_column: str
    how: str


@dataclasses.dataclass(frozen=True, slots=True)
class OrderItem:
    column: str
    descending: bool


@dataclasses.dataclass(frozen=True, slots=True)
class SelectStatement:
    """Parsed SELECT statement, ready for the planner."""

    distinct: bool
    star: bool
    items: tuple[SelectItem, ...]
    table: str
    joins: tuple[JoinClause, ...]
    where: Expression | None
    group_by: tuple[str, ...]
    having: Expression | None
    order_by: tuple[OrderItem, ...]
    limit: int | None
    offset: int
    #: Number of ``?`` placeholders in the statement (appearance order).
    params: int = 0


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0
        self._param_count = 0

    def _next_parameter(self) -> Parameter:
        parameter = Parameter(self._param_count)
        self._param_count += 1
        return parameter

    # -- token helpers ----------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        self._index += 1
        return token

    def _check_keyword(self, *keywords: str) -> bool:
        token = self._current
        return token.kind == "KEYWORD" and token.value in keywords

    def _accept_keyword(self, *keywords: str) -> bool:
        if self._check_keyword(*keywords):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            raise SqlSyntaxError(
                f"expected {keyword}, found {self._describe(self._current)}",
                self._current.position,
            )

    def _accept_punct(self, value: str) -> bool:
        token = self._current
        if token.kind == "PUNCT" and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._accept_punct(value):
            raise SqlSyntaxError(
                f"expected {value!r}, found {self._describe(self._current)}",
                self._current.position,
            )

    def _accept_op(self, *values: str) -> str | None:
        token = self._current
        if token.kind == "OP" and token.value in values:
            self._advance()
            return str(token.value)
        return None

    def _expect_ident(self, what: str) -> str:
        token = self._current
        if token.kind != "IDENT":
            raise SqlSyntaxError(
                f"expected {what}, found {self._describe(token)}",
                token.position,
            )
        self._advance()
        return str(token.value)

    @staticmethod
    def _describe(token: Token) -> str:
        if token.kind == "EOF":
            return "end of input"
        return f"{token.kind} {token.value!r}"

    # -- grammar ------------------------------------------------------------
    def parse_select(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        star = False
        items: list[SelectItem] = []
        if self._current.kind == "OP" and self._current.value == "*":
            self._advance()
            star = True
        else:
            items.append(self._parse_select_item())
            while self._accept_punct(","):
                items.append(self._parse_select_item())
        self._expect_keyword("FROM")
        table = self._expect_ident("table name")
        joins: list[JoinClause] = []
        while self._check_keyword("JOIN", "LEFT", "INNER"):
            joins.append(self._parse_join())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        group_by: list[str] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._expect_ident("group column"))
            while self._accept_punct(","):
                group_by.append(self._expect_ident("group column"))
        having = None
        if self._accept_keyword("HAVING"):
            having = self._parse_expression()
        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())
        limit: int | None = None
        offset = 0
        if self._accept_keyword("LIMIT"):
            limit = self._expect_int("LIMIT value")
            if self._accept_keyword("OFFSET"):
                offset = self._expect_int("OFFSET value")
        token = self._current
        if token.kind != "EOF":
            raise SqlSyntaxError(
                f"unexpected trailing input: {self._describe(token)}",
                token.position,
            )
        return SelectStatement(
            distinct=distinct,
            star=star,
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            params=self._param_count,
        )

    def _expect_int(self, what: str) -> int:
        token = self._current
        if token.kind != "NUMBER" or not isinstance(token.value, int):
            raise SqlSyntaxError(
                f"expected integer {what}, found {self._describe(token)}",
                token.position,
            )
        self._advance()
        return token.value

    def _parse_select_item(self) -> SelectItem:
        expr = self._parse_expression()
        alias: str | None = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias")
        elif self._current.kind == "IDENT":
            alias = str(self._advance().value)
        if alias is None:
            if isinstance(expr, AggregateCall):
                alias = expr.default_alias()
            elif isinstance(expr, ColumnRef):
                alias = expr.name.rsplit(".", 1)[-1]
            else:
                raise SqlSyntaxError(
                    "computed select items need an AS alias",
                    self._current.position,
                )
        return SelectItem(expr, alias)

    def _parse_join(self) -> JoinClause:
        how = "inner"
        if self._accept_keyword("LEFT"):
            how = "left"
        else:
            self._accept_keyword("INNER")
        self._expect_keyword("JOIN")
        table = self._expect_ident("join table")
        self._expect_keyword("ON")
        left = self._expect_ident("join column")
        if self._accept_op("=") is None:
            raise SqlSyntaxError(
                "only equality joins are supported", self._current.position
            )
        right = self._expect_ident("join column")
        # Accept the condition in either order: the side naming the joined
        # table is the right column.
        prefix = table + "."
        if left.startswith(prefix) and not right.startswith(prefix):
            left, right = right, left
        return JoinClause(
            table=table,
            left_column=left,
            right_column=right.removeprefix(prefix),
            how=how,
        )

    def _parse_order_item(self) -> OrderItem:
        column = self._expect_ident("order column")
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return OrderItem(column, descending)

    # -- expressions ----------------------------------------------------------
    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        expr = self._parse_and()
        while self._accept_keyword("OR"):
            expr = BooleanOp("or", (expr, self._parse_and()))
        return expr

    def _parse_and(self) -> Expression:
        expr = self._parse_not()
        while self._accept_keyword("AND"):
            expr = BooleanOp("and", (expr, self._parse_not()))
        return expr

    def _parse_not(self) -> Expression:
        if self._accept_keyword("NOT"):
            return Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        expr = self._parse_additive()
        operator = self._accept_op("=", "!=", "<", "<=", ">", ">=")
        if operator is not None:
            return Comparison(operator, expr, self._parse_additive())
        if self._accept_keyword("IS"):
            negate = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNull(expr, negate=negate)
        negate = False
        if self._check_keyword("NOT"):
            # lookahead for NOT IN / NOT LIKE
            saved = self._index
            self._advance()
            if self._check_keyword("IN", "LIKE"):
                negate = True
            else:
                self._index = saved
                return expr
        if self._accept_keyword("IN"):
            values = self._parse_literal_list()
            membership: Expression = InList(expr, values)
            return Not(membership) if negate else membership
        if self._accept_keyword("LIKE"):
            token = self._current
            if token.kind != "STRING":
                raise SqlSyntaxError(
                    f"LIKE needs a string pattern, found {self._describe(token)}",
                    token.position,
                )
            self._advance()
            pattern: Expression = Like(expr, str(token.value))
            return Not(pattern) if negate else pattern
        return expr

    def _parse_literal_list(self) -> tuple[Any, ...]:
        self._expect_punct("(")
        values: list[Any] = [self._parse_literal_value()]
        while self._accept_punct(","):
            values.append(self._parse_literal_value())
        self._expect_punct(")")
        return tuple(values)

    def _parse_literal_value(self) -> Any:
        token = self._current
        if token.kind in ("NUMBER", "STRING"):
            self._advance()
            return token.value
        if token.kind == "PARAM":
            self._advance()
            return self._next_parameter()
        if self._accept_keyword("TRUE"):
            return True
        if self._accept_keyword("FALSE"):
            return False
        if self._accept_keyword("NULL"):
            return None
        if token.kind == "OP" and token.value == "-":
            self._advance()
            inner = self._current
            if inner.kind == "NUMBER":
                self._advance()
                return -inner.value  # type: ignore[operator]
        raise SqlSyntaxError(
            f"expected literal, found {self._describe(token)}", token.position
        )

    def _parse_additive(self) -> Expression:
        expr = self._parse_multiplicative()
        while True:
            operator = self._accept_op("+", "-")
            if operator is None:
                return expr
            expr = Arithmetic(operator, expr, self._parse_multiplicative())

    def _parse_multiplicative(self) -> Expression:
        expr = self._parse_unary()
        while True:
            operator = self._accept_op("*", "/")
            if operator is None:
                return expr
            expr = Arithmetic(operator, expr, self._parse_unary())

    def _parse_unary(self) -> Expression:
        if self._accept_op("-"):
            return Arithmetic("-", Literal(0), self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._current
        if token.kind == "NUMBER" or token.kind == "STRING":
            self._advance()
            return Literal(token.value)
        if self._accept_keyword("TRUE"):
            return Literal(True)
        if self._accept_keyword("FALSE"):
            return Literal(False)
        if self._accept_keyword("NULL"):
            return Literal(None)
        if self._accept_punct("("):
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        if token.kind == "PARAM":
            self._advance()
            return self._next_parameter()
        if token.kind == "IDENT":
            name = str(token.value)
            if name in _AGGREGATE_NAMES and self._peek_is_open_paren():
                return self._parse_aggregate(name)
            self._advance()
            return ColumnRef(name)
        raise SqlSyntaxError(
            f"unexpected {self._describe(token)} in expression", token.position
        )

    def _peek_is_open_paren(self) -> bool:
        next_token = self._tokens[self._index + 1]
        return next_token.kind == "PUNCT" and next_token.value == "("

    def _parse_aggregate(self, function: str) -> AggregateCall:
        self._advance()  # function name
        self._expect_punct("(")
        if self._current.kind == "OP" and self._current.value == "*":
            self._advance()
            self._expect_punct(")")
            if function != "count":
                raise SqlSyntaxError(
                    f"{function.upper()}(*) is not valid",
                    self._current.position,
                )
            return AggregateCall("count", None, distinct=False)
        distinct = self._accept_keyword("DISTINCT")
        argument = self._parse_expression()
        self._expect_punct(")")
        return AggregateCall(function, argument, distinct=distinct)


def parse_select(text: str) -> SelectStatement:
    """Parse one SQL SELECT statement.

    Raises:
        SqlSyntaxError: on any lexical or grammatical problem.
    """
    return _Parser(tokenize(text)).parse_select()
