"""SQL DML: INSERT, UPDATE and DELETE statements.

Grammar::

    insert := INSERT INTO ident '(' ident (',' ident)* ')'
              VALUES '(' literal (',' literal)* ')'
              (',' '(' literal (',' literal)* ')')*
    update := UPDATE ident SET ident '=' expr (',' ident '=' expr)*
              [WHERE expr]
    delete := DELETE FROM ident [WHERE expr]

Executed through :func:`execute`, which also dispatches SELECT to the
query planner, so ``Database.sql`` accepts any supported statement. DML
statements return the affected row count as ``[{"rows": n}]`` so every
statement kind yields a row list.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any

from ..errors import QueryError, SqlSyntaxError
from ..expressions import Expression
from .parser import _Parser  # shared recursive-descent machinery
from .tokenizer import Token, tokenize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..database import Database

#: Keywords the tokenizer must know for DML (added to its keyword set).
DML_KEYWORDS = frozenset({"INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE"})


@dataclasses.dataclass(frozen=True)
class InsertStatement:
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]
    params: int = 0


@dataclasses.dataclass(frozen=True)
class UpdateStatement:
    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Expression | None
    params: int = 0


@dataclasses.dataclass(frozen=True)
class DeleteStatement:
    table: str
    where: Expression | None
    params: int = 0


class _DmlParser(_Parser):
    """Extends the SELECT parser with the three DML statements."""

    def parse_insert(self) -> InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident("table name")
        self._expect_punct("(")
        columns = [self._expect_ident("column name")]
        while self._accept_punct(","):
            columns.append(self._expect_ident("column name"))
        self._expect_punct(")")
        self._expect_keyword("VALUES")
        rows = [self._parse_value_tuple(len(columns))]
        while self._accept_punct(","):
            rows.append(self._parse_value_tuple(len(columns)))
        self._expect_end()
        return InsertStatement(
            table, tuple(columns), tuple(rows), params=self._param_count
        )

    def _parse_value_tuple(self, width: int) -> tuple[Any, ...]:
        self._expect_punct("(")
        values = [self._parse_literal_value()]
        while self._accept_punct(","):
            values.append(self._parse_literal_value())
        self._expect_punct(")")
        if len(values) != width:
            raise SqlSyntaxError(
                f"VALUES tuple has {len(values)} items, expected {width}",
                self._current.position,
            )
        return tuple(values)

    def parse_update(self) -> UpdateStatement:
        self._expect_keyword("UPDATE")
        table = self._expect_ident("table name")
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept_punct(","):
            assignments.append(self._parse_assignment())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        self._expect_end()
        return UpdateStatement(
            table, tuple(assignments), where, params=self._param_count
        )

    def _parse_assignment(self) -> tuple[str, Expression]:
        column = self._expect_ident("column name")
        if self._accept_op("=") is None:
            raise SqlSyntaxError(
                "expected '=' in SET assignment", self._current.position
            )
        return column, self._parse_expression()

    def parse_delete(self) -> DeleteStatement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident("table name")
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        self._expect_end()
        return DeleteStatement(table, where, params=self._param_count)

    def _expect_end(self) -> None:
        token = self._current
        if token.kind != "EOF":
            raise SqlSyntaxError(
                f"unexpected trailing input: {self._describe(token)}",
                token.position,
            )


def parse_statement(
    text: str,
) -> "InsertStatement | UpdateStatement | DeleteStatement | Any":
    """Parse any supported SQL statement (SELECT included)."""
    tokens = tokenize(text)
    if not tokens or tokens[0].kind == "EOF":
        raise SqlSyntaxError("empty statement")
    first = tokens[0]
    keyword = first.value if first.kind == "KEYWORD" else None
    if keyword == "SELECT":
        return _DmlParser(tokens).parse_select()
    if keyword == "INSERT":
        return _DmlParser(tokens).parse_insert()
    if keyword == "UPDATE":
        return _DmlParser(tokens).parse_update()
    if keyword == "DELETE":
        return _DmlParser(tokens).parse_delete()
    raise SqlSyntaxError(
        f"statement must start with SELECT/INSERT/UPDATE/DELETE, "
        f"got {first.value!r}",
        first.position,
    )


def execute(database: "Database", text: str) -> list[dict[str, Any]]:
    """Parse and execute any supported statement against ``database``."""
    return execute_parsed(database, parse_statement(text))


def execute_parsed(
    database: "Database", statement: Any
) -> list[dict[str, Any]]:
    """Execute an already-parsed (and parameter-bound) statement."""
    from .parser import SelectStatement
    from .planner import execute_statement

    if isinstance(statement, SelectStatement):
        return execute_statement(database, statement)
    if statement.params:
        raise QueryError(
            f"statement expects {statement.params} parameter"
            f"{'s' if statement.params != 1 else ''}, got 0"
        )
    table = database.table(statement.table)
    if isinstance(statement, InsertStatement):
        inserted = 0
        for row in statement.rows:
            table.insert(dict(zip(statement.columns, row)))
            inserted += 1
        return [{"rows": inserted}]
    if isinstance(statement, UpdateStatement):
        # SET expressions are evaluated per row against its current values.
        touched = 0
        matching = list(table.scan(statement.where))
        pk = table.primary_key_column
        for row in matching:
            values = {
                column: expr.evaluate(row)
                for column, expr in statement.assignments
            }
            if pk is not None:
                from ..expressions import col as col_ref

                predicate = col_ref(pk.name) == row[pk.name]
            else:
                predicate = _row_equality_predicate(row)
            touched += table.update(values, predicate)
        return [{"rows": touched}]
    if isinstance(statement, DeleteStatement):
        return [{"rows": table.delete(statement.where)}]
    raise SqlSyntaxError(f"unsupported statement {statement!r}")


def _row_equality_predicate(row: dict[str, Any]) -> Expression:
    from ..expressions import BooleanOp, col as col_ref, lit

    parts: list[Expression] = []
    for name, value in row.items():
        if value is None:
            parts.append(col_ref(name).is_null())
        else:
            parts.append(col_ref(name) == lit(value))
    if len(parts) == 1:
        return parts[0]
    return BooleanOp("and", tuple(parts))
