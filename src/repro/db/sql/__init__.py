"""A small SQL SELECT dialect over the embedded engine.

Supported: projection with aliases and arithmetic, ``DISTINCT``, inner and
left equality joins, ``WHERE`` with AND/OR/NOT, comparisons, ``IN``,
``IS [NOT] NULL`` and ``LIKE``, ``GROUP BY`` with COUNT/SUM/AVG/MIN/MAX
(plus ``COUNT(DISTINCT col)``), ``HAVING``, ``ORDER BY ... ASC|DESC``,
``LIMIT ... OFFSET``.

Statements may carry ``?`` placeholders, bound positionally at execution
time; plans (parsed + constant-folded statements) are cached per database
in an LRU keyed by normalized SQL (see :mod:`repro.db.sql.plan_cache`).

Entry point: :meth:`repro.db.Database.sql` / :meth:`~repro.db.Database.prepare`
or :func:`execute_sql`.
"""

from .dml import (
    DeleteStatement,
    InsertStatement,
    UpdateStatement,
    execute,
    execute_parsed,
    parse_statement,
)
from .parser import SelectStatement, parse_select
from .plan_cache import (
    PLAN_CACHE_HITS,
    PLAN_CACHE_MISSES,
    PlanCache,
    PreparedStatement,
)
from .planner import (
    bind_statement,
    execute_sql,
    execute_statement,
    explain_statement,
    fold_statement,
)
from .tokenizer import Token, tokenize

__all__ = [
    "DeleteStatement",
    "InsertStatement",
    "UpdateStatement",
    "execute",
    "execute_parsed",
    "parse_statement",
    "SelectStatement",
    "parse_select",
    "PLAN_CACHE_HITS",
    "PLAN_CACHE_MISSES",
    "PlanCache",
    "PreparedStatement",
    "bind_statement",
    "execute_sql",
    "execute_statement",
    "explain_statement",
    "fold_statement",
    "Token",
    "tokenize",
]
