"""A small SQL SELECT dialect over the embedded engine.

Supported: projection with aliases and arithmetic, ``DISTINCT``, inner and
left equality joins, ``WHERE`` with AND/OR/NOT, comparisons, ``IN``,
``IS [NOT] NULL`` and ``LIKE``, ``GROUP BY`` with COUNT/SUM/AVG/MIN/MAX
(plus ``COUNT(DISTINCT col)``), ``HAVING``, ``ORDER BY ... ASC|DESC``,
``LIMIT ... OFFSET``.

Entry point: :meth:`repro.db.Database.sql` or :func:`execute_sql`.
"""

from .dml import (
    DeleteStatement,
    InsertStatement,
    UpdateStatement,
    execute,
    parse_statement,
)
from .parser import SelectStatement, parse_select
from .planner import execute_sql, execute_statement
from .tokenizer import Token, tokenize

__all__ = [
    "DeleteStatement",
    "InsertStatement",
    "UpdateStatement",
    "execute",
    "parse_statement",
    "SelectStatement",
    "parse_select",
    "execute_sql",
    "execute_statement",
    "Token",
    "tokenize",
]
