"""Prepared statements and a thread-safe LRU plan cache.

``Database.sql`` routes every statement through a per-database
:class:`PlanCache`, so hot queries are tokenized, parsed, and
constant-folded exactly once. Two cache keys are maintained:

* a **raw-text fast path** — the exact SQL string maps straight to its
  plan, skipping even tokenization on repeat queries;
* a **normalized key** — the token stream ``(kind, value)`` tuple, so
  whitespace and keyword-case variants of the same statement share one
  plan entry.

Parameterised statements (``?`` placeholders) make the cache effective
for templated workloads: the plan for ``... WHERE cuisine = ?`` is
parsed once and re-executed with fresh bindings per call, which is what
``POST /sql`` uses to stop re-parsing hot queries on every request.

Cache behaviour is observable: ``repro_sql_plan_cache_hits_total`` /
``repro_sql_plan_cache_misses_total`` counters and a ``db.sql.plan``
span (attribute ``cache=hit|miss``) are emitted per lookup.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from ...obs import get_registry, span
from .tokenizer import tokenize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..database import Database

#: Metric names for plan-cache behaviour (exposed via ``/metrics``).
PLAN_CACHE_HITS = "repro_sql_plan_cache_hits_total"
PLAN_CACHE_MISSES = "repro_sql_plan_cache_misses_total"

#: Default number of distinct plans kept per database.
DEFAULT_PLAN_CACHE_SIZE = 128


class PreparedStatement:
    """A parsed, constant-folded statement ready for repeated execution.

    Attributes:
        sql: the source text the plan was built from.
        statement: the folded statement AST (never mutated by execution;
            parameter binding produces bound copies).
        kind: ``"select"``, ``"insert"``, ``"update"`` or ``"delete"``.
        params: number of ``?`` placeholders expected at execution.
    """

    __slots__ = ("sql", "statement", "kind", "params")

    def __init__(self, sql: str, statement: Any) -> None:
        self.sql = sql
        self.statement = statement
        self.kind = type(statement).__name__.removesuffix(
            "Statement"
        ).lower()
        self.params = statement.params

    def execute(
        self,
        database: "Database",
        params: list[Any] | tuple[Any, ...] | None = None,
        *,
        reference: bool = False,
        info_out: dict[str, Any] | None = None,
    ) -> list[dict[str, Any]]:
        """Run the plan against ``database`` with ``params`` bound.

        ``info_out`` (SELECT only) receives the executor diagnostics —
        which engine served the rows and, on fallback, the reason family.
        """
        from .dml import execute_parsed
        from .parser import SelectStatement
        from .planner import execute_statement, bind_statement

        if isinstance(self.statement, SelectStatement):
            return execute_statement(
                database,
                self.statement,
                params,
                reference=reference,
                info_out=info_out,
            )
        return execute_parsed(
            database, bind_statement(self.statement, params)
        )

    def explain(
        self,
        database: "Database",
        params: list[Any] | tuple[Any, ...] | None = None,
    ) -> dict[str, Any]:
        """Planner's view of how this statement would execute."""
        from .parser import SelectStatement
        from .planner import explain_statement

        if isinstance(self.statement, SelectStatement):
            return explain_statement(database, self.statement, params)
        return {"table": self.statement.table, "executor": self.kind}

    def __repr__(self) -> str:
        return f"PreparedStatement({self.kind}, {self.sql!r})"


class PlanCache:
    """Thread-safe LRU cache of :class:`PreparedStatement` objects."""

    def __init__(self, maxsize: int = DEFAULT_PLAN_CACHE_SIZE) -> None:
        self._maxsize = max(1, maxsize)
        self._lock = threading.Lock()
        # raw SQL text -> normalized key (fast path on exact repeats)
        self._raw_keys: OrderedDict[str, tuple[Any, ...]] = OrderedDict()
        # normalized key -> plan (shared across spelling variants)
        self._plans: OrderedDict[tuple[Any, ...], PreparedStatement] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def lookup(self, text: str) -> PreparedStatement:
        """The cached plan for ``text``, parsing and caching on miss.

        Raises:
            SqlSyntaxError: when ``text`` does not tokenize or parse.
        """
        registry = get_registry()
        with span("db.sql.plan") as plan_span:
            plan = self._cached_by_raw(text)
            if plan is None:
                # Normalize before deciding hit/miss so case/whitespace
                # variants of a cached statement still count as hits.
                key = tuple(
                    (token.kind, token.value) for token in tokenize(text)
                )
                plan = self._cached_by_key(text, key)
            if plan is not None:
                plan_span.set("cache", "hit")
                plan_span.set("kind", plan.kind)
                registry.counter(PLAN_CACHE_HITS).incr()
                return plan
            from .dml import parse_statement
            from .planner import fold_statement
            from .parser import SelectStatement

            statement = parse_statement(text)
            if isinstance(statement, SelectStatement):
                statement = fold_statement(statement)
            plan = PreparedStatement(text, statement)
            self._store(text, key, plan)
            plan_span.set("cache", "miss")
            plan_span.set("kind", plan.kind)
            registry.counter(PLAN_CACHE_MISSES).incr()
            return plan

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _cached_by_raw(self, text: str) -> PreparedStatement | None:
        with self._lock:
            key = self._raw_keys.get(text)
            if key is None:
                return None
            plan = self._plans.get(key)
            if plan is None:  # plan evicted out from under the raw key
                del self._raw_keys[text]
                return None
            self._raw_keys.move_to_end(text)
            self._plans.move_to_end(key)
            self.hits += 1
            return plan

    def _cached_by_key(
        self, text: str, key: tuple[Any, ...]
    ) -> PreparedStatement | None:
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                return None
            self._plans.move_to_end(key)
            self._remember_raw(text, key)
            self.hits += 1
            return plan

    def _store(
        self, text: str, key: tuple[Any, ...], plan: PreparedStatement
    ) -> None:
        with self._lock:
            self.misses += 1
            existing = self._plans.get(key)
            if existing is not None:  # raced with another thread: keep it
                self._plans.move_to_end(key)
                self._remember_raw(text, key)
                return
            self._plans[key] = plan
            self._remember_raw(text, key)
            while len(self._plans) > self._maxsize:
                evicted_key, _plan = self._plans.popitem(last=False)
                for raw, raw_key in list(self._raw_keys.items()):
                    if raw_key == evicted_key:
                        del self._raw_keys[raw]

    def _remember_raw(self, text: str, key: tuple[Any, ...]) -> None:
        self._raw_keys[text] = key
        self._raw_keys.move_to_end(text)
        # Bound raw aliases independently: many spellings may map to few
        # plans, and each alias costs one dict slot plus the SQL string.
        while len(self._raw_keys) > 4 * self._maxsize:
            self._raw_keys.popitem(last=False)

    def info(self) -> dict[str, int]:
        """Cache occupancy and hit/miss totals (diagnostics)."""
        with self._lock:
            return {
                "size": len(self._plans),
                "hits": self.hits,
                "misses": self.misses,
            }
