"""Lower a parsed :class:`SelectStatement` onto the fluent query engine.

The planner validates aggregate usage (aggregates only as top-level select
items; with GROUP BY, plain select items must be grouping columns), builds a
:class:`~repro.db.query.Query`, executes it, and post-projects the output
columns in the order the SELECT list names them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..aggregates import sql_aggregate
from ..errors import QueryError
from ..expressions import ColumnRef
from .parser import AggregateCall, SelectStatement, parse_select

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..database import Database


def execute_sql(database: "Database", text: str) -> list[dict[str, Any]]:
    """Parse and run a SELECT statement against ``database``."""
    statement = parse_select(text)
    return execute_statement(database, statement)


def execute_statement(
    database: "Database", statement: SelectStatement
) -> list[dict[str, Any]]:
    """Run an already-parsed statement against ``database``."""
    query = database.query(statement.table)
    for join in statement.joins:
        query = query.join(
            join.table, on=(join.left_column, join.right_column), how=join.how
        )
    if statement.where is not None:
        query = query.where(statement.where)

    aggregate_items = [
        item for item in statement.items if isinstance(item.expr, AggregateCall)
    ]
    plain_items = [
        item
        for item in statement.items
        if not isinstance(item.expr, AggregateCall)
    ]
    has_aggregation = bool(statement.group_by) or bool(aggregate_items)

    if has_aggregation:
        if statement.star:
            raise QueryError("SELECT * cannot be combined with aggregation")
        group_columns = statement.group_by
        grouped_names = {name.rsplit(".", 1)[-1] for name in group_columns}
        for item in plain_items:
            if not isinstance(item.expr, ColumnRef):
                raise QueryError(
                    f"select item {item.alias!r} must be a grouping column "
                    "or an aggregate"
                )
            bare = item.expr.name.rsplit(".", 1)[-1]
            if bare not in grouped_names:
                raise QueryError(
                    f"column {item.expr.name!r} is neither grouped nor "
                    "aggregated"
                )
        aggregates = {}
        for item in aggregate_items:
            call = item.expr
            assert isinstance(call, AggregateCall)
            if item.alias in aggregates:
                raise QueryError(f"duplicate output column {item.alias!r}")
            aggregates[item.alias] = sql_aggregate(
                call.function, call.argument, call.distinct
            )
        query = query.group_by(*group_columns, **aggregates)
        if statement.having is not None:
            query = query.having(statement.having)
        # Rename grouped output columns to their select aliases.
        select_items: list[str | tuple[Any, str]] = []
        for item in statement.items:
            if isinstance(item.expr, AggregateCall):
                select_items.append(item.alias)
            else:
                assert isinstance(item.expr, ColumnRef)
                select_items.append((ColumnRef(item.expr.name), item.alias))
        query = query.select(*select_items)
    elif statement.having is not None:
        raise QueryError("HAVING requires GROUP BY or aggregates")
    elif not statement.star:
        query = query.select(
            *[(item.expr, item.alias) for item in statement.items]
        )

    if statement.distinct:
        query = query.distinct()
    if statement.order_by:
        query = query.order_by(
            *[
                (order.column, "desc" if order.descending else "asc")
                for order in statement.order_by
            ]
        )
    if statement.limit is not None or statement.offset:
        query = query.limit(
            statement.limit if statement.limit is not None else _NO_LIMIT,
            offset=statement.offset,
        )
    return query.all()


#: Effectively-unbounded limit used when only OFFSET was given.
_NO_LIMIT = 2**62
