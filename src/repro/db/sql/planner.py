"""Plan layer between the SQL parser and the query engine.

Parsed statements pass through three stages here:

1. **Constant folding** (:func:`fold_statement`) — literal-only subtrees
   in WHERE/HAVING/select items collapse to single literals, and AND/OR
   short-circuit on literal TRUE/FALSE, so cached plans carry the
   smallest equivalent expression trees.
2. **Parameter binding** (:func:`bind_statement`) — ``?`` placeholders
   are replaced positionally with caller-supplied scalar values; a bound
   copy of the statement is produced, the cached plan is never mutated.
3. **Lowering** (:func:`lower_statement`) — the statement becomes a
   fluent :class:`~repro.db.query.Query`. Predicates and projections
   ride down with it: single-table queries push the WHERE predicate into
   the table scan (index-narrowed on the row path, compiled to a
   boolean-mask kernel on the columnar path) and only projected columns
   are materialised as column blocks. The vectorised executor then picks
   hash vs. sort group-by strategies per query; ``reference=True`` pins
   the row-at-a-time executor instead.

The planner also validates aggregate usage (aggregates only as top-level
select items; with GROUP BY, plain select items must be grouping
columns) and post-projects output columns in SELECT-list order.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any

from ...obs import span
from ..aggregates import sql_aggregate
from ..errors import QueryError
from ..expressions import (
    ColumnRef,
    Expression,
    Literal,
    Parameter,
    fold_constants,
    transform,
)
from .parser import AggregateCall, SelectStatement, parse_select

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..database import Database
    from ..query import Query

#: Effectively-unbounded limit used when only OFFSET was given.
_NO_LIMIT = 2**62

#: Python types accepted as statement parameter values.
_SCALAR_TYPES = (bool, int, float, str)


def execute_sql(
    database: "Database",
    text: str,
    params: list[Any] | tuple[Any, ...] | None = None,
    *,
    reference: bool = False,
) -> list[dict[str, Any]]:
    """Parse and run a SELECT statement against ``database``."""
    statement = fold_statement(parse_select(text))
    return execute_statement(
        database, statement, params, reference=reference
    )


def execute_statement(
    database: "Database",
    statement: SelectStatement,
    params: list[Any] | tuple[Any, ...] | None = None,
    *,
    reference: bool = False,
    info_out: dict[str, Any] | None = None,
) -> list[dict[str, Any]]:
    """Run an already-parsed statement against ``database``.

    When ``info_out`` is given, the executor diagnostics from
    :attr:`Query.last_execution` (executor name, fallback reason family)
    are copied into it so callers such as ``POST /sql`` can report which
    engine actually served the rows.
    """
    statement = bind_statement(statement, params)
    query = lower_statement(database, statement)
    if reference:
        query = query.reference()
    # The executor choice is only known after execution (the columnar
    # engine may decline mid-compile), so the span attrs read the
    # query's post-run diagnostics.
    with span("db.sql.execute") as execute_span:
        rows = query.all()
        info = query.last_execution or {}
        if info.get("executor"):
            execute_span.set("executor", info["executor"])
        if info.get("reason_family"):
            execute_span.set("fallback", info["reason_family"])
    if info_out is not None:
        info_out.update(info)
    return rows


def explain_statement(
    database: "Database",
    statement: SelectStatement,
    params: list[Any] | tuple[Any, ...] | None = None,
) -> dict[str, Any]:
    """Describe how ``statement`` would execute (executor, push-down)."""
    from ..columnar import analyze

    if params is None and statement.params:
        # EXPLAIN without bindings: NULL placeholders keep the shape.
        params = [None] * statement.params
    statement = bind_statement(statement, params)
    query = lower_statement(database, statement)
    return analyze(query)


# ----------------------------------------------------------------------
# constant folding
# ----------------------------------------------------------------------
def _fold_expr(expr: Expression) -> Expression:
    if isinstance(expr, AggregateCall):
        if expr.argument is None:
            return expr
        return AggregateCall(
            expr.function, fold_constants(expr.argument), expr.distinct
        )
    return fold_constants(expr)


def fold_statement(statement: SelectStatement) -> SelectStatement:
    """Constant-fold every expression tree in a SELECT statement."""
    changes: dict[str, Any] = {}
    if statement.where is not None:
        changes["where"] = fold_constants(statement.where)
    if statement.having is not None:
        changes["having"] = fold_constants(statement.having)
    if statement.items:
        changes["items"] = tuple(
            dataclasses.replace(item, expr=_fold_expr(item.expr))
            for item in statement.items
        )
    if not changes:
        return statement
    return dataclasses.replace(statement, **changes)


# ----------------------------------------------------------------------
# parameter binding
# ----------------------------------------------------------------------
def check_params(
    expected: int, params: list[Any] | tuple[Any, ...] | None
) -> list[Any]:
    """Validate a parameter list against a statement's placeholder count.

    Raises:
        QueryError: on count mismatch or non-scalar parameter values.
    """
    values = list(params) if params is not None else []
    if len(values) != expected:
        raise QueryError(
            f"statement expects {expected} parameter"
            f"{'s' if expected != 1 else ''}, got {len(values)}"
        )
    for index, value in enumerate(values):
        if value is not None and not isinstance(value, _SCALAR_TYPES):
            raise QueryError(
                f"parameter ?{index + 1} must be a scalar "
                f"(null/bool/int/float/str), got {type(value).__name__}"
            )
    return values


def bind_expression(expr: Expression, values: list[Any]) -> Expression:
    """Replace every :class:`Parameter` in ``expr`` with its bound value."""

    def bind(node: Expression) -> Expression:
        if isinstance(node, Parameter):
            return Literal(values[node.index])
        if isinstance(node, AggregateCall) and node.argument is not None:
            return AggregateCall(
                node.function,
                transform(node.argument, bind),
                node.distinct,
            )
        from ..expressions import InList

        if isinstance(node, InList):
            # transform() maps Parameter values to Literal expressions;
            # IN lists hold raw Python values, so unwrap them here.
            return InList(
                node.inner,
                tuple(
                    value.value if isinstance(value, Literal) else value
                    for value in node.values
                ),
            )
        return node

    return transform(expr, bind)


def bind_statement(statement: Any, params: Any = None) -> Any:
    """Bind positional parameters into any parsed statement.

    Returns a bound copy (the input is never mutated); statements without
    placeholders are returned as-is when no parameters are supplied.
    After binding, newly-literal subtrees are folded again so e.g.
    ``size > ? + 1`` executes as a single literal comparison.
    """
    values = check_params(statement.params, params)
    if not values:
        return statement
    if isinstance(statement, SelectStatement):
        bound = dataclasses.replace(
            statement,
            items=tuple(
                dataclasses.replace(
                    item, expr=bind_expression(item.expr, values)
                )
                for item in statement.items
            ),
            where=(
                None
                if statement.where is None
                else bind_expression(statement.where, values)
            ),
            having=(
                None
                if statement.having is None
                else bind_expression(statement.having, values)
            ),
            params=0,
        )
        return fold_statement(bound)
    # DML statements (import here: dml imports this module lazily).
    from .dml import DeleteStatement, InsertStatement, UpdateStatement

    if isinstance(statement, InsertStatement):
        return dataclasses.replace(
            statement,
            rows=tuple(
                tuple(
                    values[cell.index]
                    if isinstance(cell, Parameter)
                    else cell
                    for cell in row
                )
                for row in statement.rows
            ),
            params=0,
        )
    if isinstance(statement, UpdateStatement):
        return dataclasses.replace(
            statement,
            assignments=tuple(
                (
                    column,
                    fold_constants(bind_expression(expr, values)),
                )
                for column, expr in statement.assignments
            ),
            where=(
                None
                if statement.where is None
                else fold_constants(
                    bind_expression(statement.where, values)
                )
            ),
            params=0,
        )
    if isinstance(statement, DeleteStatement):
        return dataclasses.replace(
            statement,
            where=(
                None
                if statement.where is None
                else fold_constants(
                    bind_expression(statement.where, values)
                )
            ),
            params=0,
        )
    raise QueryError(f"cannot bind parameters into {statement!r}")


# ----------------------------------------------------------------------
# lowering
# ----------------------------------------------------------------------
def lower_statement(
    database: "Database", statement: SelectStatement
) -> "Query":
    """Lower a parsed SELECT onto the fluent query engine."""
    query = database.query(statement.table)
    for join in statement.joins:
        query = query.join(
            join.table, on=(join.left_column, join.right_column), how=join.how
        )
    if statement.where is not None:
        query = query.where(statement.where)

    aggregate_items = [
        item for item in statement.items if isinstance(item.expr, AggregateCall)
    ]
    plain_items = [
        item
        for item in statement.items
        if not isinstance(item.expr, AggregateCall)
    ]
    has_aggregation = bool(statement.group_by) or bool(aggregate_items)

    if has_aggregation:
        if statement.star:
            raise QueryError("SELECT * cannot be combined with aggregation")
        group_columns = statement.group_by
        grouped_names = {name.rsplit(".", 1)[-1] for name in group_columns}
        for item in plain_items:
            if not isinstance(item.expr, ColumnRef):
                raise QueryError(
                    f"select item {item.alias!r} must be a grouping column "
                    "or an aggregate"
                )
            bare = item.expr.name.rsplit(".", 1)[-1]
            if bare not in grouped_names:
                raise QueryError(
                    f"column {item.expr.name!r} is neither grouped nor "
                    "aggregated"
                )
        aggregates = {}
        for item in aggregate_items:
            call = item.expr
            assert isinstance(call, AggregateCall)
            if item.alias in aggregates:
                raise QueryError(f"duplicate output column {item.alias!r}")
            aggregates[item.alias] = sql_aggregate(
                call.function, call.argument, call.distinct
            )
        query = query.group_by(*group_columns, **aggregates)
        if statement.having is not None:
            query = query.having(statement.having)
        # Rename grouped output columns to their select aliases.
        select_items: list[str | tuple[Any, str]] = []
        for item in statement.items:
            if isinstance(item.expr, AggregateCall):
                select_items.append(item.alias)
            else:
                assert isinstance(item.expr, ColumnRef)
                select_items.append((ColumnRef(item.expr.name), item.alias))
        query = query.select(*select_items)
    elif statement.having is not None:
        raise QueryError("HAVING requires GROUP BY or aggregates")
    elif not statement.star:
        query = query.select(
            *[(item.expr, item.alias) for item in statement.items]
        )

    if statement.distinct:
        query = query.distinct()
    if statement.order_by:
        query = query.order_by(
            *[
                (order.column, "desc" if order.descending else "asc")
                for order in statement.order_by
            ]
        )
    if statement.limit is not None or statement.offset:
        query = query.limit(
            statement.limit if statement.limit is not None else _NO_LIMIT,
            offset=statement.offset,
        )
    return query
