"""The 22 geo-cultural regions studied by the paper.

Table 1 of the paper reports, for each region, the number of recipes compiled
and the number of unique ingredients used in them. Figure 4 reports whether
each cuisine shows *uniform* food pairing (positive Z-score against the
uniform random null) or *contrasting* food pairing (negative Z-score). Both
facts are recorded here verbatim: they are the published ground truth our
synthetic corpus is calibrated against.

The module also records the paper's aggregate facts: the four scraped recipe
sources with their recipe counts, and the 207 recipes from regions that were
too small to stand alone and were used only in the WORLD-level aggregate.
"""

from __future__ import annotations

import dataclasses
import enum

from .errors import LookupFailure


class PairingKind(enum.Enum):
    """Direction of a cuisine's deviation from its random counterpart."""

    UNIFORM = "uniform"  # positive food pairing: similar flavors blended
    CONTRASTING = "contrasting"  # negative food pairing: dissimilar flavors


@dataclasses.dataclass(frozen=True, slots=True)
class Region:
    """One of the paper's 22 geo-cultural regions (one row of Table 1).

    Attributes:
        code: short code used in the paper's figures (e.g. ``"ITA"``).
        name: full display name (e.g. ``"Italy"``).
        recipe_count: number of recipes attributed to the region (Table 1).
        ingredient_count: number of unique ingredients used (Table 1).
        pairing: published direction of the food-pairing deviation (Fig 4).
    """

    code: str
    name: str
    recipe_count: int
    ingredient_count: int
    pairing: PairingKind

    def __str__(self) -> str:
        return f"{self.name} ({self.code})"


_UNIFORM = PairingKind.UNIFORM
_CONTRASTING = PairingKind.CONTRASTING

#: All 22 regions exactly as published in Table 1, with the pairing
#: direction from Fig 4 / Section II.C.
REGIONS: tuple[Region, ...] = (
    Region("AFR", "Africa", 651, 303, _UNIFORM),
    Region("ANZ", "Australia & NZ", 494, 294, _UNIFORM),
    Region("BRI", "British Isles", 1075, 340, _CONTRASTING),
    Region("CAN", "Canada", 1112, 368, _UNIFORM),
    Region("CBN", "Caribbean", 1103, 340, _UNIFORM),
    Region("CHN", "China", 941, 302, _UNIFORM),
    Region("DACH", "DACH Countries", 487, 260, _CONTRASTING),
    Region("EE", "Eastern Europe", 565, 255, _CONTRASTING),
    Region("FRA", "France", 2703, 424, _UNIFORM),
    Region("GRC", "Greece", 934, 280, _UNIFORM),
    Region("INSC", "Indian Subcontinent", 4058, 378, _UNIFORM),
    Region("ITA", "Italy", 7504, 452, _UNIFORM),
    Region("JPN", "Japan", 580, 283, _CONTRASTING),
    Region("KOR", "Korea", 301, 198, _CONTRASTING),
    Region("MEX", "Mexico", 3138, 376, _UNIFORM),
    Region("ME", "Middle East", 993, 313, _UNIFORM),
    Region("SCND", "Scandinavia", 404, 245, _CONTRASTING),
    Region("SAM", "South America", 310, 221, _UNIFORM),
    Region("SEA", "South East Asia", 611, 266, _UNIFORM),
    Region("ESP", "Spain", 816, 312, _UNIFORM),
    Region("THA", "Thailand", 667, 265, _UNIFORM),
    Region("USA", "USA", 16118, 612, _UNIFORM),
)

_REGION_BY_CODE: dict[str, Region] = {region.code: region for region in REGIONS}
_REGION_BY_NAME: dict[str, Region] = {
    region.name.lower(): region for region in REGIONS
}

#: Code used for the aggregate, all-regions cuisine in figures and APIs.
WORLD_CODE = "WORLD"

#: Total number of regional recipes in Table 1.
TOTAL_REGIONAL_RECIPES = sum(region.recipe_count for region in REGIONS)

#: Recipes from Portugal, Belgium, Central America and the Netherlands that
#: were folded into the WORLD aggregate but not treated as regions.
WORLD_ONLY_RECIPES = 207

#: Small regions contributing the 207 WORLD-only recipes (Section III.A).
WORLD_ONLY_REGION_NAMES: tuple[str, ...] = (
    "Portugal",
    "Belgium",
    "Central America",
    "Netherlands",
)

#: Total recipe count reported in the abstract / Section III.A.
TOTAL_RECIPES = 45772

#: The paper's recipe sources with their published recipe counts.
RECIPE_SOURCES: dict[str, int] = {
    "AllRecipes": 16177,
    "Food Network": 15917,
    "Epicurious": 11069,
    "TarlaDalal": 2609,
}

#: Regions the paper singles out as using dairy more than vegetables.
DAIRY_FORWARD_CODES: frozenset[str] = frozenset({"FRA", "BRI", "SCND"})

#: Regions the paper singles out for predominant spice use.
SPICE_FORWARD_CODES: frozenset[str] = frozenset({"INSC", "AFR", "ME", "CBN"})


def get_region(code_or_name: str) -> Region:
    """Return the region for a code (``"ITA"``) or full name (``"Italy"``).

    Raises:
        LookupFailure: if nothing matches.
    """
    region = _REGION_BY_CODE.get(code_or_name.upper())
    if region is None:
        region = _REGION_BY_NAME.get(code_or_name.strip().lower())
    if region is None:
        raise LookupFailure(f"unknown region: {code_or_name!r}")
    return region


def region_codes() -> tuple[str, ...]:
    """All region codes in Table 1 order."""
    return tuple(region.code for region in REGIONS)


def uniform_regions() -> tuple[Region, ...]:
    """The 16 regions with positive (uniform) food pairing."""
    return tuple(r for r in REGIONS if r.pairing is PairingKind.UNIFORM)


def contrasting_regions() -> tuple[Region, ...]:
    """The 6 regions with negative (contrasting) food pairing."""
    return tuple(r for r in REGIONS if r.pairing is PairingKind.CONTRASTING)
