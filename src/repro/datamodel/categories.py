"""Ingredient categories.

The paper (Section III.B) classifies every ingredient into exactly one of 21
categories. The enum values are the display names used throughout the paper's
Figure 2 heat-map; :meth:`Category.from_name` accepts several spelling
variants so imported data does not need to match the canonical casing.
"""

from __future__ import annotations

import enum

from .errors import LookupFailure


class Category(enum.Enum):
    """The 21 ingredient categories used by the paper."""

    VEGETABLE = "Vegetable"
    DAIRY = "Dairy"
    LEGUME = "Legume"
    MAIZE = "Maize"
    CEREAL = "Cereal"
    MEAT = "Meat"
    NUTS_AND_SEEDS = "Nuts and Seeds"
    PLANT = "Plant"
    FISH = "Fish"
    SEAFOOD = "Seafood"
    SPICE = "Spice"
    BAKERY = "Bakery"
    BEVERAGE_ALCOHOLIC = "Beverage Alcoholic"
    BEVERAGE = "Beverage"
    ESSENTIAL_OIL = "Essential Oil"
    FLOWER = "Flower"
    FRUIT = "Fruit"
    FUNGUS = "Fungus"
    HERB = "Herb"
    ADDITIVE = "Additive"
    DISH = "Dish"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def from_name(cls, name: str) -> "Category":
        """Resolve a category from a display name or enum-style identifier.

        Accepts the canonical display name (``"Nuts and Seeds"``), the enum
        member name (``"NUTS_AND_SEEDS"``), and case/spacing variants of
        either (``"nuts and seeds"``, ``"nuts-and-seeds"``).

        Raises:
            LookupFailure: if the name does not resolve to a category.
        """
        key = name.strip().lower().replace("-", " ").replace("_", " ")
        member = _CATEGORY_BY_KEY.get(key)
        if member is None:
            raise LookupFailure(f"unknown ingredient category: {name!r}")
        return member


_CATEGORY_BY_KEY: dict[str, Category] = {}
for _member in Category:
    _CATEGORY_BY_KEY[_member.value.lower()] = _member
    _CATEGORY_BY_KEY[_member.name.lower().replace("_", " ")] = _member


#: Categories the paper reports as most frequently used at the WORLD level
#: (Section II.A), in the order listed there. The ``Additive`` category is
#: excluded from Figure 2 ("data not shown").
MOST_USED_WORLD_CATEGORIES: tuple[Category, ...] = (
    Category.VEGETABLE,
    Category.SPICE,
    Category.DAIRY,
    Category.HERB,
    Category.PLANT,
    Category.MEAT,
    Category.FRUIT,
)
