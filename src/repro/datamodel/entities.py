"""Core domain entities: molecules, ingredients, recipes and cuisines.

The paper works on three levels — flavor molecules, ingredients and recipes
(Section II.A compares them to letters, words and sentences). The entities
here mirror those levels:

* :class:`FlavorMolecule` — one flavor compound, as catalogued by FlavorDB.
* :class:`Ingredient` — a natural ingredient with a *flavor profile* (the set
  of molecule ids empirically reported for it) and exactly one
  :class:`~repro.datamodel.categories.Category`.
* :class:`RawRecipe` — a recipe as scraped from a source: free-text
  ingredient phrases that still need aliasing.
* :class:`Recipe` — a resolved recipe: an unordered set of canonical
  ingredient ids (the paper treats recipes as unordered ingredient lists for
  pairing analysis).
* :class:`Cuisine` — the set of resolved recipes attributed to one region.

All entities are immutable; collections they hold are stored as tuples or
frozensets so instances are hashable and safe to share.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from collections.abc import Iterable, Iterator, Sequence

from .categories import Category
from .errors import ValidationError

#: Minimum number of ingredients for a recipe to have at least one pair.
MIN_PAIRABLE_RECIPE_SIZE = 2


@dataclasses.dataclass(frozen=True, slots=True)
class FlavorMolecule:
    """A flavor compound.

    Attributes:
        molecule_id: stable integer id within the molecule universe.
        name: human-readable compound name (e.g. ``"limonene"``).
        flavor_family: the flavor family (community) the molecule belongs to;
            molecules of a family co-occur in the profiles of related
            ingredients (see :mod:`repro.flavordb.universe`).
    """

    molecule_id: int
    name: str
    flavor_family: str

    def __post_init__(self) -> None:
        if self.molecule_id < 0:
            raise ValidationError(
                f"molecule_id must be non-negative, got {self.molecule_id}"
            )
        if not self.name:
            raise ValidationError("molecule name must be non-empty")


@dataclasses.dataclass(frozen=True, slots=True)
class Ingredient:
    """A natural (or compound) ingredient with its flavor profile.

    Attributes:
        ingredient_id: stable integer id within the catalog.
        name: canonical lower-case name (e.g. ``"jalapeno pepper"``).
        category: the ingredient's single category.
        flavor_profile: frozenset of molecule ids reported for the
            ingredient. May be empty — the paper keeps four additives with no
            flavor profile (cooking spray, gelatin, food coloring, liquid
            smoke); such ingredients are excluded from pairing computations.
        synonyms: alternative surface forms that alias to this ingredient
            (``"bun"`` for bread, ``"whisky"`` for whiskey, ...).
        is_compound: True for the paper's 103 'compound ingredients'
            (mayonnaise, garam masala, ...) whose profile is the pooled union
            of their constituents' profiles.
        constituents: canonical names of constituent ingredients for compound
            ingredients; empty for basic ingredients.
    """

    ingredient_id: int
    name: str
    category: Category
    flavor_profile: frozenset[int] = frozenset()
    synonyms: tuple[str, ...] = ()
    is_compound: bool = False
    constituents: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.ingredient_id < 0:
            raise ValidationError(
                f"ingredient_id must be non-negative, got {self.ingredient_id}"
            )
        if not self.name:
            raise ValidationError("ingredient name must be non-empty")
        if self.name != self.name.strip().lower():
            raise ValidationError(
                f"ingredient name must be normalised lower-case: {self.name!r}"
            )
        if self.constituents and not self.is_compound:
            raise ValidationError(
                f"{self.name!r} has constituents but is not marked compound"
            )

    @property
    def has_flavor_profile(self) -> bool:
        """Whether the ingredient can participate in pairing analysis."""
        return bool(self.flavor_profile)

    def shared_molecules(self, other: "Ingredient") -> int:
        """Number of flavor molecules shared with ``other`` (|F_i ∩ F_j|)."""
        return len(self.flavor_profile & other.flavor_profile)


@dataclasses.dataclass(frozen=True, slots=True)
class RawRecipe:
    """A recipe as obtained from a source, before ingredient aliasing.

    Attributes:
        recipe_id: stable id within the corpus.
        title: recipe name as published.
        source: source site name (``"AllRecipes"``, ...).
        region_code: geo-cultural region code, or a WORLD-only region name
            for the 207 recipes without an independent region.
        ingredient_phrases: the raw ingredient lines, one per ingredient
            (e.g. ``"2 jalapeno peppers, roasted and slit"``).
        instructions: free-text cooking procedure (not used by the pairing
            analysis; kept because the paper extracts it).
    """

    recipe_id: int
    title: str
    source: str
    region_code: str
    ingredient_phrases: tuple[str, ...]
    instructions: str = ""

    def __post_init__(self) -> None:
        if not self.ingredient_phrases:
            raise ValidationError(
                f"raw recipe {self.recipe_id} has no ingredient phrases"
            )


@dataclasses.dataclass(frozen=True, slots=True)
class Recipe:
    """A resolved recipe: an unordered set of canonical ingredient ids.

    The paper treats each recipe as an unordered list of ingredients for the
    purposes of food-pairing analysis (Section III.A). Duplicate mentions of
    an ingredient collapse to one.

    Attributes:
        recipe_id: stable id within the corpus (matches the raw recipe).
        region_code: geo-cultural region code.
        ingredient_ids: frozenset of canonical ingredient ids.
        title: recipe name (optional, for reporting).
        source: source site name (optional, for reporting).
    """

    recipe_id: int
    region_code: str
    ingredient_ids: frozenset[int]
    title: str = ""
    source: str = ""

    def __post_init__(self) -> None:
        if not self.ingredient_ids:
            raise ValidationError(f"recipe {self.recipe_id} has no ingredients")

    @property
    def size(self) -> int:
        """Recipe size ``n``: the number of distinct ingredients."""
        return len(self.ingredient_ids)

    @property
    def is_pairable(self) -> bool:
        """Whether the recipe has at least one ingredient pair."""
        return self.size >= MIN_PAIRABLE_RECIPE_SIZE


class Cuisine:
    """The recipes of one region, with cached aggregate views.

    A :class:`Cuisine` is an immutable collection of :class:`Recipe` objects
    sharing a region code. It exposes the aggregate quantities the analyses
    need: the ingredient usage counter (popularity), the set of ingredients
    used, and the recipe-size distribution.
    """

    def __init__(self, region_code: str, recipes: Iterable[Recipe]) -> None:
        self._region_code = region_code
        self._recipes = tuple(recipes)
        for recipe in self._recipes:
            if recipe.region_code != region_code:
                raise ValidationError(
                    f"recipe {recipe.recipe_id} belongs to region "
                    f"{recipe.region_code!r}, not {region_code!r}"
                )
        counter: Counter[int] = Counter()
        for recipe in self._recipes:
            counter.update(recipe.ingredient_ids)
        self._usage = counter

    @property
    def region_code(self) -> str:
        return self._region_code

    @property
    def recipes(self) -> tuple[Recipe, ...]:
        return self._recipes

    def __len__(self) -> int:
        return len(self._recipes)

    def __iter__(self) -> Iterator[Recipe]:
        return iter(self._recipes)

    def __repr__(self) -> str:
        return (
            f"Cuisine({self._region_code!r}, {len(self._recipes)} recipes, "
            f"{len(self._usage)} ingredients)"
        )

    @property
    def ingredient_usage(self) -> Counter[int]:
        """Counter mapping ingredient id -> number of recipes using it."""
        return Counter(self._usage)

    @property
    def ingredient_ids(self) -> frozenset[int]:
        """Set of unique ingredient ids used anywhere in the cuisine."""
        return frozenset(self._usage)

    @property
    def recipe_sizes(self) -> tuple[int, ...]:
        """Sizes of all recipes, in recipe order."""
        return tuple(recipe.size for recipe in self._recipes)

    def mean_recipe_size(self) -> float:
        """Average number of ingredients per recipe."""
        sizes = self.recipe_sizes
        if not sizes:
            raise ValidationError(f"cuisine {self._region_code!r} is empty")
        return sum(sizes) / len(sizes)


def build_cuisines(recipes: Sequence[Recipe]) -> dict[str, Cuisine]:
    """Group recipes by region code into :class:`Cuisine` objects."""
    by_region: dict[str, list[Recipe]] = {}
    for recipe in recipes:
        by_region.setdefault(recipe.region_code, []).append(recipe)
    return {
        code: Cuisine(code, group) for code, group in sorted(by_region.items())
    }
