"""Domain data model: categories, regions, molecules, ingredients, recipes.

This package holds the paper's published facts (Table 1 region statistics,
Figure 4 pairing directions, the 21 ingredient categories) and the immutable
entity types the rest of the library is built on.
"""

from .categories import MOST_USED_WORLD_CATEGORIES, Category
from .entities import (
    MIN_PAIRABLE_RECIPE_SIZE,
    Cuisine,
    FlavorMolecule,
    Ingredient,
    RawRecipe,
    Recipe,
    build_cuisines,
)
from .errors import ConfigurationError, LookupFailure, ReproError, ValidationError
from .regions import (
    DAIRY_FORWARD_CODES,
    RECIPE_SOURCES,
    REGIONS,
    SPICE_FORWARD_CODES,
    TOTAL_RECIPES,
    TOTAL_REGIONAL_RECIPES,
    WORLD_CODE,
    WORLD_ONLY_RECIPES,
    WORLD_ONLY_REGION_NAMES,
    PairingKind,
    Region,
    contrasting_regions,
    get_region,
    region_codes,
    uniform_regions,
)

__all__ = [
    "Category",
    "MOST_USED_WORLD_CATEGORIES",
    "MIN_PAIRABLE_RECIPE_SIZE",
    "Cuisine",
    "FlavorMolecule",
    "Ingredient",
    "RawRecipe",
    "Recipe",
    "build_cuisines",
    "ConfigurationError",
    "LookupFailure",
    "ReproError",
    "ValidationError",
    "DAIRY_FORWARD_CODES",
    "RECIPE_SOURCES",
    "REGIONS",
    "SPICE_FORWARD_CODES",
    "TOTAL_RECIPES",
    "TOTAL_REGIONAL_RECIPES",
    "WORLD_CODE",
    "WORLD_ONLY_RECIPES",
    "WORLD_ONLY_REGION_NAMES",
    "PairingKind",
    "Region",
    "contrasting_regions",
    "get_region",
    "region_codes",
    "uniform_regions",
]
