"""Exception hierarchy shared across the ``repro`` library.

Every error raised on purpose by the library derives from :class:`ReproError`,
so callers can catch one base class at API boundaries. Submodules define more
specific errors (e.g. the storage engine's ``SchemaError``) as subclasses of
the ones declared here.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError):
    """An entity or record failed domain validation."""


class LookupFailure(ReproError, KeyError):
    """A referenced entity (ingredient, region, molecule...) does not exist.

    Inherits :class:`KeyError` so registry code behaves like a mapping, while
    remaining catchable as :class:`ReproError`.
    """

    def __str__(self) -> str:  # KeyError.__str__ quotes its argument.
        return Exception.__str__(self)


class ConfigurationError(ReproError):
    """A component was constructed or invoked with inconsistent parameters."""
