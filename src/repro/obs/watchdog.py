"""Perf-regression watchdog over committed ``BENCH_*.json`` baselines.

Every optimisation PR in this repo commits a ``BENCH_<name>.json``
snapshot of its benchmark results. This module turns those files from
documentation into a gate: :func:`check_benchmarks` flattens a fresh
results file and its committed baseline into dotted metric paths,
classifies each metric's *direction* from its name (``*_seconds`` —
lower is better; ``*speedup*`` — higher is better; counts and sizes are
configuration, not performance, and are ignored), and fails when a
metric moved the wrong way by more than its tolerance.

The CLI front-end is ``repro obs check``; CI runs it against freshly
produced results and publishes the machine-readable verdict JSON.
Tolerances are deliberately generous by default (30%) — shared CI boxes
are noisy, and the watchdog's job is catching the 2x cliff nobody
noticed, not flagging scheduler jitter.
"""

from __future__ import annotations

import dataclasses
import glob
import json
import os
from collections.abc import Mapping
from typing import Any

__all__ = [
    "DEFAULT_TOLERANCE",
    "BenchComparison",
    "MetricVerdict",
    "WatchdogReport",
    "check_benchmarks",
    "classify_direction",
    "compare_documents",
    "flatten_metrics",
]

#: Allowed relative slip in the bad direction before a metric fails.
DEFAULT_TOLERANCE = 0.30

#: Guards against division blow-ups on near-zero baselines: metrics
#: whose baseline is below this many units are compared absolutely.
_ABS_FLOOR = 1e-6

_LOWER_BETTER_MARKERS = (
    "seconds",
    "elapsed",
    "latency",
    "overhead",
    "_ms",
    "bytes_per_sample",
)
_HIGHER_BETTER_MARKERS = (
    "speedup",
    "per_sec",
    "per_second",
    "throughput",
    "rate",
)


def classify_direction(path: str) -> str | None:
    """``"lower"``/``"higher"`` if ``path`` names a perf metric, else None.

    Classification is by the *leaf* name, so ``similar.indexed_seconds``
    is lower-better and ``similar.speedup`` higher-better while plain
    configuration echoes (``k``, ``partials``, ``ingredients``) fall
    through to ``None`` and are not gated.
    """
    leaf = path.rsplit(".", 1)[-1].lower()
    for marker in _HIGHER_BETTER_MARKERS:
        if marker in leaf:
            return "higher"
    for marker in _LOWER_BETTER_MARKERS:
        if marker in leaf:
            return "lower"
    return None


def flatten_metrics(doc: Mapping[str, Any], prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a (nested) bench document as dotted paths."""
    flat: dict[str, float] = {}
    for key, value in doc.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            flat.update(flatten_metrics(value, path))
        elif isinstance(value, bool):
            continue  # `smoke` flags etc. are not metrics
        elif isinstance(value, (int, float)):
            flat[path] = float(value)
    return flat


@dataclasses.dataclass(frozen=True)
class MetricVerdict:
    """One gated metric's comparison outcome."""

    path: str
    direction: str
    baseline: float
    current: float
    tolerance: float
    #: Relative change in the *bad* direction (negative means improved).
    regression: float
    ok: bool

    def to_json(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "direction": self.direction,
            "baseline": self.baseline,
            "current": self.current,
            "tolerance": self.tolerance,
            "regression": round(self.regression, 4),
            "ok": self.ok,
        }


def _resolve_tolerance(
    path: str, default: float, overrides: Mapping[str, float]
) -> float:
    """Most specific override wins: exact path, then leaf name."""
    if path in overrides:
        return overrides[path]
    leaf = path.rsplit(".", 1)[-1]
    return overrides.get(leaf, default)


def compare_documents(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    overrides: Mapping[str, float] | None = None,
) -> list[MetricVerdict]:
    """Verdicts for every gated metric present in both documents.

    A metric present only on one side is simply skipped — benchmarks
    grow fields over time, and the gate compares what is comparable.
    """
    overrides = overrides or {}
    base_flat = flatten_metrics(baseline)
    curr_flat = flatten_metrics(current)
    verdicts: list[MetricVerdict] = []
    for path in sorted(base_flat.keys() & curr_flat.keys()):
        direction = classify_direction(path)
        if direction is None:
            continue
        base_value, curr_value = base_flat[path], curr_flat[path]
        # Signed slip in the bad direction, relative to the baseline.
        if direction == "lower":
            delta = curr_value - base_value
        else:
            delta = base_value - curr_value
        if abs(base_value) < _ABS_FLOOR:
            regression = 0.0 if abs(delta) < _ABS_FLOOR else float("inf")
        else:
            regression = delta / abs(base_value)
        limit = _resolve_tolerance(path, tolerance, overrides)
        verdicts.append(
            MetricVerdict(
                path=path,
                direction=direction,
                baseline=base_value,
                current=curr_value,
                tolerance=limit,
                regression=regression,
                ok=regression <= limit,
            )
        )
    return verdicts


@dataclasses.dataclass(frozen=True)
class BenchComparison:
    """One benchmark file's gate result."""

    name: str
    baseline_path: str
    results_path: str
    verdicts: tuple[MetricVerdict, ...]

    @property
    def ok(self) -> bool:
        return all(verdict.ok for verdict in self.verdicts)

    @property
    def failures(self) -> tuple[MetricVerdict, ...]:
        return tuple(v for v in self.verdicts if not v.ok)

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "baseline": self.baseline_path,
            "results": self.results_path,
            "ok": self.ok,
            "metrics": [verdict.to_json() for verdict in self.verdicts],
        }


@dataclasses.dataclass(frozen=True)
class WatchdogReport:
    """The whole run: every benchmark compared, plus skips."""

    comparisons: tuple[BenchComparison, ...]
    missing_results: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return all(comparison.ok for comparison in self.comparisons)

    @property
    def gated_metrics(self) -> int:
        return sum(len(c.verdicts) for c in self.comparisons)

    def to_json(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "benchmarks": [c.to_json() for c in self.comparisons],
            "gated_metrics": self.gated_metrics,
            "missing_results": list(self.missing_results),
        }

    def render(self) -> str:
        """The human-facing verdict table ``repro obs check`` prints."""
        lines = []
        for comparison in self.comparisons:
            flag = "ok" if comparison.ok else "REGRESSED"
            lines.append(
                f"{comparison.name}: {flag} "
                f"({len(comparison.verdicts)} gated metrics)"
            )
            for verdict in comparison.verdicts:
                arrow = "<=" if verdict.direction == "lower" else ">="
                status = "ok" if verdict.ok else "FAIL"
                lines.append(
                    f"  [{status}] {verdict.path}: {verdict.current:g} "
                    f"(baseline {verdict.baseline:g}, want {arrow} within "
                    f"{verdict.tolerance:.0%}, slip {verdict.regression:+.1%})"
                )
        for name in self.missing_results:
            lines.append(f"{name}: skipped (no fresh results file)")
        if not self.comparisons:
            lines.append("no benchmark baselines found")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"watchdog: {verdict} "
            f"({len(self.comparisons)} benchmarks, "
            f"{self.gated_metrics} metrics gated)"
        )
        return "\n".join(lines)


def check_benchmarks(
    baseline_dir: str = ".",
    results_dir: str | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    overrides: Mapping[str, float] | None = None,
    pattern: str = "BENCH_*.json",
) -> WatchdogReport:
    """Compare every baseline in ``baseline_dir`` against fresh results.

    ``results_dir`` defaults to the baseline directory itself, in which
    case each file is compared to itself and trivially passes — the
    useful configuration points it at a directory of freshly produced
    ``BENCH_*.json`` files (as the CI obs job does). A baseline without
    a matching fresh file is reported as skipped, not failed.
    """
    results_dir = baseline_dir if results_dir is None else results_dir
    comparisons: list[BenchComparison] = []
    missing: list[str] = []
    for baseline_path in sorted(
        glob.glob(os.path.join(baseline_dir, pattern))
    ):
        name = os.path.basename(baseline_path)
        results_path = os.path.join(results_dir, name)
        if not os.path.exists(results_path):
            missing.append(name)
            continue
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        with open(results_path, encoding="utf-8") as handle:
            current = json.load(handle)
        comparisons.append(
            BenchComparison(
                name=name,
                baseline_path=baseline_path,
                results_path=results_path,
                verdicts=tuple(
                    compare_documents(
                        baseline, current, tolerance, overrides
                    )
                ),
            )
        )
    return WatchdogReport(
        comparisons=tuple(comparisons), missing_results=tuple(missing)
    )
