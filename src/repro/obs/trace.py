"""Nested-span tracing: wall/CPU timings, counters, three exporters.

A :class:`Tracer` produces :class:`Span` objects via the :meth:`Tracer.span`
context manager (or the :func:`traced` decorator). Spans nest per thread —
entering a span while another is active on the same thread records a
parent/child edge — and carry free-form attributes (``span.set``) and
additive counters (``span.incr``). Finished spans are collected
thread-safely and can be exported three ways:

* :meth:`Tracer.render_tree` — a human-readable timing tree with per-span
  wall/CPU durations and counters,
* :meth:`Tracer.to_jsonl` — one JSON object per span (machine-readable),
* :meth:`Tracer.to_chrome_trace` — the Chrome trace-event format, loadable
  in ``chrome://tracing`` / Perfetto.

Tracing is **disabled by default**: the process-global tracer hands out a
shared no-op span until :func:`configure_tracing` enables it, so
instrumented hot paths pay only an attribute check + one comparison.
"""

from __future__ import annotations

import functools
import json
import threading
import time
from collections.abc import Sequence
from typing import Any, Callable, TypeVar

__all__ = [
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "configure_tracing",
    "current_span",
    "get_tracer",
    "span",
    "traced",
]

_F = TypeVar("_F", bound=Callable[..., Any])


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def incr(self, key: str, amount: int | float = 1) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed region: name, parentage, wall/CPU times, attrs, counters.

    Wall time comes from ``time.perf_counter`` and CPU time from
    ``time.thread_time`` (the entering thread's CPU clock), so a span that
    waits on I/O or a lock shows wall >> cpu.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "trace_id", "thread_id",
        "attrs", "counters", "start_wall", "end_wall", "start_cpu",
        "end_cpu", "_tracer",
    )

    def __init__(
        self, tracer: "Tracer", name: str, span_id: int, attrs: dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id: int | None = None
        self.trace_id: str = ""
        self.thread_id: int = 0
        self.attrs = attrs
        self.counters: dict[str, int | float] = {}
        self.start_wall: float = 0.0
        self.end_wall: float | None = None
        self.start_cpu: float = 0.0
        self.end_cpu: float | None = None

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        self.attrs[key] = value

    def incr(self, key: str, amount: int | float = 1) -> None:
        """Add to one of the span's counters (created at 0)."""
        self.counters[key] = self.counters.get(key, 0) + amount

    @property
    def duration(self) -> float | None:
        """Wall-clock seconds, or ``None`` while still open."""
        if self.end_wall is None:
            return None
        return self.end_wall - self.start_wall

    @property
    def cpu_time(self) -> float | None:
        """CPU seconds on the entering thread, or ``None`` while open."""
        if self.end_cpu is None:
            return None
        return self.end_cpu - self.start_cpu

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready representation (the JSONL exporter's row)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "thread_id": self.thread_id,
            "start": round(self.start_wall, 6),
            "duration_ms": (
                None if self.duration is None
                else round(self.duration * 1000, 3)
            ),
            "cpu_ms": (
                None if self.cpu_time is None
                else round(self.cpu_time * 1000, 3)
            ),
            "attrs": self.attrs,
            "counters": self.counters,
        }

    def to_payload(self) -> dict[str, Any]:
        """Full-precision picklable form for cross-process harvesting.

        Unlike :meth:`as_dict` (the rounded JSONL row), this keeps the
        raw clock readings so the parent can adopt the span without
        losing timing precision (``perf_counter`` is system-wide on the
        platforms the pool runs on, so child and parent readings share
        an origin).
        """
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "start_cpu": self.start_cpu,
            "end_cpu": self.end_cpu,
        }

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        parent = stack[-1] if stack else None
        if parent is not None:
            self.parent_id = parent.span_id
            self.trace_id = parent.trace_id
        else:
            self.trace_id = f"{self.span_id:08x}"
        self.thread_id = threading.get_ident()
        stack.append(self)
        self.start_cpu = time.thread_time()
        self.start_wall = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.end_wall = time.perf_counter()
        self.end_cpu = time.thread_time()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._record(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, duration={self.duration})"
        )


class Tracer:
    """Thread-safe span factory and collector.

    Each thread keeps its own span stack (nesting), while finished spans
    land in one shared list guarded by a lock. ``enabled=False`` makes
    :meth:`span` return the shared no-op span.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._local = threading.local()
        self._next_id = 1

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def reset_thread_stack(self) -> None:
        """Drop this thread's open-span stack.

        A forked pool worker inherits whatever stack the forking thread
        had open; clearing it makes the worker's first span a root, so
        harvested spans re-parent cleanly under the submitting span.
        """
        self._local.stack = []

    def span(self, name: str, **attrs: Any) -> Span | _NoopSpan:
        """A context manager timing one region; no-op when disabled."""
        if not self.enabled:
            return NOOP_SPAN
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(self, name, span_id, dict(attrs))

    def current_span(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    def finished_spans(self) -> tuple[Span, ...]:
        """All completed spans, in completion order."""
        with self._lock:
            return tuple(self._finished)

    def finished_count(self) -> int:
        """How many spans have completed (a baseline for harvesting)."""
        with self._lock:
            return len(self._finished)

    def spans_since(self, index: int) -> tuple[Span, ...]:
        """Spans completed after the ``finished_count`` baseline.

        In a forked pool worker the finished list starts as a copy of
        the parent's; slicing from the baseline yields only what this
        worker recorded itself.
        """
        with self._lock:
            return tuple(self._finished[index:])

    def adopt(
        self,
        payloads: Sequence[dict[str, Any]],
        parent_span_id: int | None,
        trace_id: str,
    ) -> int:
        """Graft spans harvested from a worker into this tracer's tree.

        Every payload gets a fresh span id (worker ids collide across
        forked processes); internal parent edges are remapped and
        orphans — the worker's root spans — attach under
        ``parent_span_id``. Returns the number of spans adopted.
        """
        if not payloads:
            return 0
        with self._lock:
            first_id = self._next_id
            self._next_id += len(payloads)
        id_map = {
            payload["span_id"]: first_id + offset
            for offset, payload in enumerate(payloads)
        }
        adopted: list[Span] = []
        for payload in payloads:
            span = Span(
                self,
                payload["name"],
                id_map[payload["span_id"]],
                dict(payload["attrs"]),
            )
            span.parent_id = id_map.get(payload["parent_id"], parent_span_id)
            span.trace_id = trace_id
            span.thread_id = payload["thread_id"]
            span.counters = dict(payload["counters"])
            span.start_wall = payload["start_wall"]
            span.end_wall = payload["end_wall"]
            span.start_cpu = payload["start_cpu"]
            span.end_cpu = payload["end_cpu"]
            adopted.append(span)
        with self._lock:
            self._finished.extend(adopted)
        return len(adopted)

    def reset(self) -> None:
        """Drop collected spans (open spans on other threads are kept)."""
        with self._lock:
            self._finished.clear()

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------
    def render_tree(self) -> str:
        """Human-readable timing tree of all finished spans."""
        spans = sorted(self.finished_spans(), key=lambda s: s.start_wall)
        if not spans:
            return "(no spans recorded)"
        by_id = {span.span_id: span for span in spans}
        children: dict[int | None, list[Span]] = {}
        for span in spans:
            # A child whose parent never finished renders as a root.
            parent = span.parent_id if span.parent_id in by_id else None
            children.setdefault(parent, []).append(span)
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            lines.append("  " * depth + _describe(span))
            for child in children.get(span.span_id, []):
                walk(child, depth + 1)

        for root in children.get(None, []):
            walk(root, 0)
        return "\n".join(lines)

    def to_jsonl(self) -> str:
        """One JSON object per finished span, newline-delimited."""
        return "\n".join(
            json.dumps(span.as_dict(), sort_keys=True)
            for span in self.finished_spans()
        )

    def to_chrome_trace(self) -> dict[str, Any]:
        """The Chrome trace-event format (``chrome://tracing``)."""
        spans = self.finished_spans()
        origin = min(
            (span.start_wall for span in spans), default=0.0
        )
        events = []
        for span in spans:
            if span.duration is None:  # pragma: no cover - defensive
                continue
            args: dict[str, Any] = dict(span.attrs)
            args.update(span.counters)
            args["cpu_ms"] = (
                None if span.cpu_time is None
                else round(span.cpu_time * 1000, 3)
            )
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": round((span.start_wall - origin) * 1e6, 1),
                    "dur": round(span.duration * 1e6, 1),
                    # Harvested worker spans carry their origin pid, so
                    # Perfetto lays each worker out as its own process.
                    "pid": span.attrs.get("pid", 1),
                    "tid": span.thread_id,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str) -> None:
        """Write the trace to ``path``.

        A ``.json`` suffix selects the Chrome trace-event format; anything
        else gets JSONL (one span per line).
        """
        if path.endswith(".json"):
            text = json.dumps(self.to_chrome_trace())
        else:
            text = self.to_jsonl() + "\n"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)


def _describe(span: Span) -> str:
    duration = span.duration or 0.0
    cpu = span.cpu_time or 0.0
    extras = []
    for key, value in span.attrs.items():
        extras.append(f"{key}={value}")
    for key, value in span.counters.items():
        extras.append(f"{key}={value}")
    suffix = ("  " + " ".join(extras)) if extras else ""
    return (
        f"{span.name}  {duration * 1000:.1f}ms"
        f" (cpu {cpu * 1000:.1f}ms){suffix}"
    )


#: The process-global tracer every instrumentation site uses by default.
_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def configure_tracing(enabled: bool = True) -> Tracer:
    """Enable or disable the global tracer; returns it for chaining."""
    _TRACER.enabled = enabled
    return _TRACER


def span(name: str, **attrs: Any) -> Span | _NoopSpan:
    """Open a span on the global tracer (no-op while tracing is off)."""
    # Short-circuit before delegating: the disabled hot path must not pay
    # for a second call frame and kwargs repack.
    tracer = _TRACER
    if not tracer.enabled:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def current_span() -> Span | None:
    """The innermost open span on this thread (global tracer), if any."""
    if not _TRACER.enabled:
        return None
    return _TRACER.current_span()


def traced(name: str | None = None, **attrs: Any) -> Callable[[_F], _F]:
    """Decorator: run the function under a span named after it.

    ``@traced()`` uses the function's qualified name;
    ``@traced("stage.custom", key=value)`` overrides name and attributes.
    """

    def decorate(func: _F) -> _F:
        label = name if name is not None else func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _TRACER.enabled:
                return func(*args, **kwargs)
            with _TRACER.span(label, **attrs):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
