"""``repro.obs`` — the unified observability layer: tracing, metrics, logs.

Every layer of the reproduction (corpus generation, aliasing, workspace
assembly, null-model sampling, the HTTP service) reports into this one
package, so a full-scale run is no longer a black box. Three primitives:

**Tracing** (:mod:`repro.obs.trace`)
    Nested spans with wall *and* CPU time, attributes and counters::

        from repro.obs import span, configure_tracing, get_tracer

        configure_tracing(True)
        with span("aliasing.match_recipe", region="ITA") as sp:
            ...
            sp.incr("phrases_exact", 12)

        tracer = get_tracer()
        print(tracer.render_tree())      # human-readable timing tree
        tracer.write("trace.jsonl")      # one JSON object per span
        tracer.write("trace.json")       # chrome://tracing / Perfetto

    Tracing is off by default; instrumented hot paths then execute a
    single attribute check (the span object is a shared no-op). The
    ``repro`` CLI exposes it as ``--trace`` (print the tree) and
    ``--trace-out PATH`` (write the artifact; format by suffix).

    Reading the tree: each line is ``name  wall_ms (cpu cpu_ms)
    key=value ...``, children indented under their parent. Wall >> CPU
    means the span waited (locks, I/O); counters such as ``recipes`` or
    ``samples_per_sec`` quantify the work done inside it.

**Metrics** (:mod:`repro.obs.metrics`)
    A process-global registry of named counters, gauges and ring-buffer
    histograms (sliding-window percentiles, O(1) memory)::

        from repro.obs import get_registry

        registry = get_registry()
        registry.counter("repro_aliasing_phrases_total", kind="exact").incr()
        registry.histogram("repro_request_seconds", endpoint="score").observe(dt)
        print(registry.render_prometheus())   # text exposition format

    The service's per-endpoint metrics (``repro.service.metrics``) are a
    thin wrapper over this registry; ``GET /metrics?format=prometheus``
    serves the exposition text.

**Structured logging** (:mod:`repro.obs.logs`)
    ``get_logger(name)`` emits ``key=value`` lines (or JSON lines with
    ``--log-json``) carrying ``trace_id``/``span`` correlation ids when a
    span is open — so a log record can be tied back to its place in the
    span tree. ``--log-level debug`` surfaces the per-chunk sampling
    heartbeats of the 100k-sample null-model loops.
"""

from .logs import StructLogger, bound_log_fields, configure_logging, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    PERCENTILES,
    RESERVOIR_SIZE,
    Counter,
    Gauge,
    Histogram,
    HistogramStats,
    MetricDelta,
    MetricsRegistry,
    get_registry,
    percentile,
    render_prometheus,
)
from .profile import ProfileBusyError, SamplingProfiler
from .snapshot import (
    TelemetrySnapshot,
    TraceContext,
    begin_worker_capture,
    capture_context,
    finish_worker_capture,
    merge_snapshot,
    merge_snapshots,
)
from .trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    configure_tracing,
    current_span,
    get_tracer,
    span,
    traced,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "PERCENTILES",
    "RESERVOIR_SIZE",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramStats",
    "MetricDelta",
    "MetricsRegistry",
    "NOOP_SPAN",
    "ProfileBusyError",
    "SamplingProfiler",
    "Span",
    "StructLogger",
    "TelemetrySnapshot",
    "TraceContext",
    "Tracer",
    "begin_worker_capture",
    "bound_log_fields",
    "capture_context",
    "configure_logging",
    "configure_tracing",
    "current_span",
    "finish_worker_capture",
    "get_logger",
    "get_registry",
    "get_tracer",
    "merge_snapshot",
    "merge_snapshots",
    "percentile",
    "render_prometheus",
    "span",
    "traced",
]
