"""A stdlib-only sampling wall-clock profiler.

A background daemon thread periodically snapshots every thread's Python
stack via ``sys._current_frames()`` — no interpreter hooks, no
per-call overhead on the profiled code, so a live server can be profiled
in production (``GET /debug/profile?seconds=N``) and every CLI command
can run under ``--profile`` at a few percent cost.

Two exporters:

* :meth:`SamplingProfiler.to_collapsed` — Brendan-Gregg collapsed-stack
  lines (``outer;inner count``), the format every flamegraph tool eats.
* :meth:`SamplingProfiler.to_speedscope` — the speedscope JSON file
  format (one ``sampled`` profile per observed thread), loadable at
  https://www.speedscope.app.

Usage::

    profiler = SamplingProfiler(interval=0.005)
    profiler.start()
    ...                        # the workload
    profiler.stop()
    profiler.write("profile.speedscope.json")
    print(profiler.render_top())
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any

__all__ = [
    "DEFAULT_INTERVAL",
    "MAX_CAPTURE_SECONDS",
    "ProfileBusyError",
    "SamplingProfiler",
    "capture_profile",
]

#: Seconds between stack sweeps (200 Hz): fine enough to see hot leaves,
#: coarse enough that the sampler itself stays a rounding error.
DEFAULT_INTERVAL = 0.005

#: Upper bound one `/debug/profile` request may sample for.
MAX_CAPTURE_SECONDS = 60.0

#: Stack sweeps retained (~50 minutes at the default interval) — a
#: memory backstop for a profiler accidentally left running.
MAX_SWEEPS = 600_000

_FrameKey = tuple[str, str, int]  # (function, file, line)


class ProfileBusyError(RuntimeError):
    """Raised when a capture is requested while another one is running."""


class SamplingProfiler:
    """Background sampler over ``sys._current_frames``.

    Thread-safe for the ``start``/``stop``/export lifecycle; one
    instance records one capture (create a fresh instance per capture).
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        # Interned frames: key -> index into _frames.
        self._frame_index: dict[_FrameKey, int] = {}
        self._frames: list[_FrameKey] = []
        # Per-thread sample streams: thread id -> list of stacks, each a
        # tuple of frame indices ordered outermost -> innermost.
        self._samples: dict[int, list[tuple[int, ...]]] = {}
        self._thread_names: dict[int, str] = {}
        self._sweeps = 0
        self._started_at = 0.0
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("profiler already started")
            self._started_at = time.perf_counter()
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        with self._lock:
            thread = self._thread
        if thread is None:
            return self
        self._stop_event.set()
        thread.join(timeout=5.0)
        with self._lock:
            self._thread = None
            self._elapsed = time.perf_counter() - self._started_at
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def sweeps(self) -> int:
        """Completed sampling sweeps (each covers every live thread)."""
        with self._lock:
            return self._sweeps

    @property
    def elapsed(self) -> float:
        """Wall seconds covered by the capture."""
        with self._lock:
            if self._thread is not None:
                return time.perf_counter() - self._started_at
            return self._elapsed

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop_event.wait(self.interval):
            self._sweep(own_id)
            if self._sweeps >= MAX_SWEEPS:  # pragma: no cover - backstop
                break

    def _sweep(self, own_id: int) -> None:
        frames = sys._current_frames()
        names = {
            thread.ident: thread.name
            for thread in threading.enumerate()
            if thread.ident is not None
        }
        with self._lock:
            self._sweeps += 1
            for thread_id, frame in frames.items():
                if thread_id == own_id:
                    continue
                stack: list[int] = []
                current = frame
                while current is not None:
                    code = current.f_code
                    key = (
                        code.co_name,
                        code.co_filename,
                        # f_lineno is None while certain opcodes run
                        # (e.g. between lines on 3.11+); pin those to 0
                        # so frame keys stay orderable ints.
                        current.f_lineno or 0,
                    )
                    index = self._frame_index.get(key)
                    if index is None:
                        index = len(self._frames)
                        self._frame_index[key] = index
                        self._frames.append(key)
                    stack.append(index)
                    current = current.f_back
                stack.reverse()  # outermost first
                self._samples.setdefault(thread_id, []).append(tuple(stack))
                self._thread_names[thread_id] = names.get(
                    thread_id, f"thread-{thread_id}"
                )

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------
    def _snapshot(
        self,
    ) -> tuple[
        list[_FrameKey],
        dict[int, list[tuple[int, ...]]],
        dict[int, str],
        float,
    ]:
        with self._lock:
            return (
                list(self._frames),
                {tid: list(stacks) for tid, stacks in self._samples.items()},
                dict(self._thread_names),
                self._elapsed
                if self._thread is None
                else time.perf_counter() - self._started_at,
            )

    def stack_counts(self) -> dict[tuple[_FrameKey, ...], int]:
        """Aggregated (across threads) stack -> sample count."""
        frames, samples, _names, _elapsed = self._snapshot()
        counts: dict[tuple[_FrameKey, ...], int] = {}
        for stacks in samples.values():
            for stack in stacks:
                key = tuple(frames[index] for index in stack)
                counts[key] = counts.get(key, 0) + 1
        return counts

    def to_collapsed(self) -> str:
        """Collapsed-stack lines: ``outer;inner count``, sorted by count."""
        lines = []
        for stack, count in sorted(
            self.stack_counts().items(), key=lambda item: (-item[1], item[0])
        ):
            path = ";".join(name for name, _file, _line in stack)
            lines.append(f"{path} {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_speedscope(self, name: str = "repro profile") -> dict[str, Any]:
        """The speedscope JSON document (one sampled profile per thread)."""
        frames, samples, thread_names, elapsed = self._snapshot()
        profiles = []
        for thread_id in sorted(samples):
            stacks = samples[thread_id]
            weights = [self.interval] * len(stacks)
            profiles.append(
                {
                    "type": "sampled",
                    "name": thread_names.get(thread_id, str(thread_id)),
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": round(sum(weights), 6),
                    "samples": [list(stack) for stack in stacks],
                    "weights": weights,
                }
            )
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "exporter": "repro.obs.profile",
            "activeProfileIndex": 0 if profiles else None,
            "shared": {
                "frames": [
                    {"name": fname, "file": file, "line": line}
                    for fname, file, line in frames
                ]
            },
            "profiles": profiles,
            "metadata": {
                "interval_seconds": self.interval,
                "sweeps": self.sweeps,
                "elapsed_seconds": round(elapsed, 6),
            },
        }

    def render_top(self, limit: int = 15) -> str:
        """Human-readable hottest-stack table (the ``--profile`` output)."""
        counts = self.stack_counts()
        total = sum(counts.values())
        if not total:
            return "(no profile samples collected)"
        lines = [f"# profile: {total} samples @ {self.interval * 1000:.1f}ms"]
        ranked = sorted(
            counts.items(), key=lambda item: (-item[1], item[0])
        )[:limit]
        for stack, count in ranked:
            leaf_name, leaf_file, leaf_line = stack[-1]
            share = 100.0 * count / total
            path = ";".join(name for name, _f, _l in stack[-4:])
            lines.append(
                f"{share:5.1f}%  {count:6d}  {path}  "
                f"({leaf_file.rsplit('/', 1)[-1]}:{leaf_line})"
            )
        return "\n".join(lines)

    def write(self, path: str) -> None:
        """Write the capture to ``path``.

        A ``.json`` suffix selects speedscope JSON; anything else gets
        collapsed-stack lines.
        """
        if path.endswith(".json"):
            text = json.dumps(self.to_speedscope(name=path))
        else:
            text = self.to_collapsed()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)


#: Guards live-capture endpoints: one profile at a time per process.
_CAPTURE_LOCK = threading.Lock()


def capture_profile(
    seconds: float, interval: float = DEFAULT_INTERVAL
) -> SamplingProfiler:
    """Block for ``seconds`` while sampling; returns the stopped profiler.

    The serving layer's ``/debug/profile`` endpoint calls this from the
    request thread (other server threads keep serving — and are exactly
    what the capture observes).

    Raises:
        ProfileBusyError: when another capture is already running.
        ValueError: for a non-positive or over-limit duration.
    """
    if not 0 < seconds <= MAX_CAPTURE_SECONDS:
        raise ValueError(
            f"seconds must be in (0, {MAX_CAPTURE_SECONDS:g}], got {seconds}"
        )
    if not _CAPTURE_LOCK.acquire(blocking=False):
        raise ProfileBusyError("another profile capture is already running")
    try:
        profiler = SamplingProfiler(interval=interval)
        profiler.start()
        time.sleep(seconds)
        profiler.stop()
        return profiler
    finally:
        _CAPTURE_LOCK.release()
