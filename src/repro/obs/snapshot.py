"""Cross-process telemetry: trace-context propagation and harvesting.

Until this module existed, every span, counter and histogram recorded
inside a pool worker died with the worker. The executor now ships a
:class:`TraceContext` out with each task and a :class:`TelemetrySnapshot`
back with each result:

1. The parent calls :func:`capture_context` inside its ``run_tasks``
   span; the context carries the trace id, the submitting span's id and
   whether tracing is on — a few dozen bytes in each task payload.
2. The worker brackets the task with :func:`begin_worker_capture` /
   :func:`finish_worker_capture`. The baseline (span count + registry
   state) naturally absorbs anything inherited across ``fork``, so the
   snapshot contains exactly what *this task* recorded: finished span
   payloads plus :class:`~repro.obs.metrics.MetricDelta` values.
3. The parent merges snapshots **in shard order** via
   :func:`merge_snapshots`: spans are re-identified and grafted under
   the submitting span (``--trace`` shows the full parent→worker tree),
   and metric deltas add exactly — ``repro_*`` counters and histograms
   read the same at any worker count.
"""

from __future__ import annotations

import dataclasses
import os
from collections.abc import Sequence
from typing import Any

from .metrics import MetricDelta, get_registry
from .trace import get_tracer

__all__ = [
    "TelemetrySnapshot",
    "TraceContext",
    "WorkerCapture",
    "begin_worker_capture",
    "capture_context",
    "finish_worker_capture",
    "merge_snapshot",
    "merge_snapshots",
]


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """The correlation state a task payload carries into a worker.

    Attributes:
        trace_id: the parent's trace id (empty when tracing is off).
        parent_span_id: id of the span the task was submitted under;
            harvested worker roots re-parent onto it.
        traced: whether the worker should record spans at all. Metric
            deltas are harvested regardless — counters must stay exact
            whether or not anyone is watching the trace.
    """

    trace_id: str = ""
    parent_span_id: int | None = None
    traced: bool = False


@dataclasses.dataclass(frozen=True)
class TelemetrySnapshot:
    """What one worker task recorded: span payloads + metric deltas.

    Compact and picklable by construction: spans are plain dicts (see
    :meth:`~repro.obs.trace.Span.to_payload`) and metrics are
    :class:`MetricDelta` values — never live ``Span``/``Histogram``
    objects with their locks and tracer references.
    """

    spans: tuple[dict[str, Any], ...] = ()
    metrics: tuple[MetricDelta, ...] = ()
    pid: int = 0

    @property
    def empty(self) -> bool:
        return not self.spans and not self.metrics


@dataclasses.dataclass
class WorkerCapture:
    """In-worker baseline between ``begin`` and ``finish``."""

    traced: bool
    span_baseline: int
    registry_state: dict[Any, Any]


def capture_context() -> TraceContext:
    """The parent-side context to embed in task payloads.

    Called inside the ``run_tasks`` span: when tracing is enabled the
    innermost open span on this thread becomes the graft point for every
    harvested worker span.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return TraceContext()
    span = tracer.current_span()
    if span is None:
        return TraceContext(traced=True)
    return TraceContext(
        trace_id=span.trace_id, parent_span_id=span.span_id, traced=True
    )


def begin_worker_capture(context: TraceContext) -> WorkerCapture:
    """Arm telemetry recording for one task inside a pool worker.

    Enables (or disables) the worker's tracer per the context, clears
    the open-span stack a ``fork`` may have copied mid-span, and
    baselines both the finished-span list and the metrics registry so
    the eventual snapshot covers exactly this task.
    """
    tracer = get_tracer()
    tracer.enabled = context.traced
    tracer.reset_thread_stack()
    return WorkerCapture(
        traced=context.traced,
        span_baseline=tracer.finished_count(),
        registry_state=get_registry().state(),
    )


def finish_worker_capture(capture: WorkerCapture) -> TelemetrySnapshot:
    """Everything recorded since ``begin_worker_capture``, picklable."""
    spans: tuple[dict[str, Any], ...] = ()
    if capture.traced:
        spans = tuple(
            span.to_payload()
            for span in get_tracer().spans_since(capture.span_baseline)
        )
    return TelemetrySnapshot(
        spans=spans,
        metrics=get_registry().deltas_since(capture.registry_state),
        pid=os.getpid(),
    )


def merge_snapshot(
    snapshot: TelemetrySnapshot, context: TraceContext
) -> None:
    """Fold one worker snapshot into the parent's tracer and registry."""
    if snapshot.spans:
        get_tracer().adopt(
            snapshot.spans, context.parent_span_id, context.trace_id
        )
    registry = get_registry()
    for delta in snapshot.metrics:
        registry.apply_delta(delta)


def merge_snapshots(
    snapshots: Sequence[TelemetrySnapshot | None], context: TraceContext
) -> None:
    """Merge worker snapshots **in shard order**.

    Shard-order iteration (never completion order) is what makes the
    merged registry deterministic: histogram windows end up holding the
    same observation sequence a ``workers=1`` run records in-process.
    """
    for snapshot in snapshots:
        if snapshot is not None and not snapshot.empty:
            merge_snapshot(snapshot, context)
