"""Structured logging: key=value or JSON lines with span correlation.

``get_logger(name)`` returns a tiny logger whose methods take an event
name plus free-form fields::

    log = get_logger("repro.workspace")
    log.info("workspace.built", recipes=45772, seconds=61.2)
    # ts=2026-08-05T12:00:00.123+00:00 level=info logger=repro.workspace \
    #   event=workspace.built recipes=45772 seconds=61.2

:func:`configure_logging` switches the line format to JSON
(``--log-json``: one JSON object per line, machine-parseable), sets the
minimum level, and optionally pins the output stream (default: whatever
``sys.stderr`` is at emit time, so test capture works).

When tracing is enabled and a span is open on the current thread, every
record carries ``trace_id`` and ``span`` fields — the correlation ids
that tie log lines to the span tree.

:func:`bound_log_fields` adds thread-scoped correlation fields to every
record emitted inside its ``with`` block — the service binds
``request_id`` around each dispatch, so every log line a request
produces can be tied back to its ``X-Request-Id``.
"""

from __future__ import annotations

import contextlib
import datetime
import json
import sys
import threading
from collections.abc import Iterator
from typing import Any, TextIO

from .trace import current_span

__all__ = [
    "StructLogger",
    "bound_log_fields",
    "configure_logging",
    "get_logger",
]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class _LogConfig:
    """Mutable process-global logging configuration."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.level = LEVELS["info"]
        self.json_mode = False
        self.stream: TextIO | None = None  # None -> sys.stderr at emit time


_CONFIG = _LogConfig()


def configure_logging(
    level: str = "info",
    json_mode: bool = False,
    stream: TextIO | None = None,
) -> None:
    """Set the global log level, output format and (optional) stream.

    Args:
        level: minimum level emitted (``debug``/``info``/``warning``/
            ``error``).
        json_mode: emit one JSON object per line instead of key=value.
        stream: output stream; ``None`` resolves ``sys.stderr`` lazily.
    """
    if level not in LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {sorted(LEVELS)}"
        )
    with _CONFIG.lock:
        _CONFIG.level = LEVELS[level]
        _CONFIG.json_mode = json_mode
        _CONFIG.stream = stream


_BOUND = threading.local()


@contextlib.contextmanager
def bound_log_fields(**fields: Any) -> Iterator[None]:
    """Attach ``fields`` to every record this thread emits in the block.

    Nested bindings merge (inner wins on key collision) and unwind on
    exit, so a request's ``request_id`` never leaks into the next
    request served by the same thread.
    """
    previous = getattr(_BOUND, "fields", None)
    merged = dict(previous) if previous else {}
    merged.update(fields)
    _BOUND.fields = merged
    try:
        yield
    finally:
        _BOUND.fields = previous


def _bound_fields() -> dict[str, Any] | None:
    return getattr(_BOUND, "fields", None)


def _quote(value: Any) -> str:
    text = str(value)
    if text == "" or any(ch in text for ch in (' ', '"', '=')):
        return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'
    return text


class StructLogger:
    """A named logger emitting structured records via the global config."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def debug(self, event: str, **fields: Any) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._emit("error", event, fields)

    def _emit(self, level: str, event: str, fields: dict[str, Any]) -> None:
        with _CONFIG.lock:
            if LEVELS[level] < _CONFIG.level:
                return
            json_mode = _CONFIG.json_mode
            stream = _CONFIG.stream
        record: dict[str, Any] = {
            "ts": datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="milliseconds"
            ),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        span = current_span()
        if span is not None:
            record["trace_id"] = span.trace_id
            record["span"] = span.name
        bound = _bound_fields()
        if bound:
            record.update(bound)
        record.update(fields)
        if json_mode:
            line = json.dumps(record, default=str)
        else:
            line = " ".join(
                f"{key}={_quote(value)}" for key, value in record.items()
            )
        out = stream if stream is not None else sys.stderr
        out.write(line + "\n")
        try:
            out.flush()
        except (ValueError, OSError):  # pragma: no cover - closed stream
            pass


def get_logger(name: str) -> StructLogger:
    """A structured logger named ``name`` (cheap; loggers are stateless)."""
    return StructLogger(name)
