"""Process-wide metrics: named counters, gauges and histograms.

The registry generalises what ``repro.service.metrics`` used to keep
private: monotonic counters, point-in-time gauges, and histograms backed
by a fixed-size latency reservoir (the most recent
:data:`RESERVOIR_SIZE` observations) from which percentiles derive — a
sliding-window view that stays O(1) memory no matter the request volume.

Series are keyed by ``(name, labels)``, Prometheus-style::

    registry = get_registry()
    registry.counter("repro_requests_total", endpoint="score").incr()
    registry.histogram("repro_request_seconds", endpoint="score").observe(dt)
    print(registry.render_prometheus())

:meth:`MetricsRegistry.render_prometheus` emits the text exposition
format (``# TYPE`` headers, escaped label values, summary-style
quantiles for histograms) served by ``GET /metrics?format=prometheus``.
"""

from __future__ import annotations

import dataclasses
import math
import re
import threading
from typing import Any

__all__ = [
    "PERCENTILES",
    "RESERVOIR_SIZE",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramStats",
    "MetricSeries",
    "MetricsRegistry",
    "get_registry",
    "percentile",
    "render_prometheus",
]

#: Observations retained per histogram (a sliding window).
RESERVOIR_SIZE = 2048

#: Percentiles exposed by snapshots, as fractions.
PERCENTILES = (0.50, 0.95, 0.99)


def percentile(sorted_samples: list[float], fraction: float) -> float:
    """Linear-interpolated percentile of an ascending sample list."""
    if not sorted_samples:
        return 0.0
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    rank = fraction * (len(sorted_samples) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_samples[low]
    weight = rank - low
    return sorted_samples[low] * (1 - weight) + sorted_samples[high] * weight


class Counter:
    """A monotonically-increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float = 0

    def incr(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


@dataclasses.dataclass(frozen=True)
class HistogramStats:
    """Summary of one histogram.

    Attributes:
        count: total observations ever (beyond the window).
        total: sum of all observations ever.
        mean: mean over the retained window.
        p50/p95/p99: percentiles over the retained window; 0.0 when empty.
    """

    count: int
    total: float
    mean: float
    p50: float
    p95: float
    p99: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean * 1000, 3),
            "p50_ms": round(self.p50 * 1000, 3),
            "p95_ms": round(self.p95 * 1000, 3),
            "p99_ms": round(self.p99 * 1000, 3),
        }


class Histogram:
    """Ring-buffer reservoir of the most recent observations.

    Total count and sum are exact for the process lifetime; mean and
    percentiles are computed over the retained window only.
    """

    __slots__ = ("_lock", "_samples", "_next_slot", "_count", "_total", "_size")

    def __init__(self, reservoir_size: int = RESERVOIR_SIZE) -> None:
        self._lock = threading.Lock()
        self._samples: list[float] = []
        self._next_slot = 0
        self._count = 0
        self._total = 0.0
        self._size = reservoir_size

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._total += value
            if len(self._samples) < self._size:
                self._samples.append(value)
            else:  # overwrite the oldest sample (ring buffer)
                self._samples[self._next_slot] = value
                self._next_slot = (self._next_slot + 1) % self._size

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def stats(self) -> HistogramStats:
        with self._lock:
            window = sorted(self._samples)
            count, total = self._count, self._total
        mean = sum(window) / len(window) if window else 0.0
        p50, p95, p99 = (percentile(window, f) for f in PERCENTILES)
        return HistogramStats(
            count=count, total=total, mean=mean, p50=p50, p95=p95, p99=p99
        )


@dataclasses.dataclass(frozen=True)
class MetricSeries:
    """One (name, labels) series as returned by :meth:`collect`."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: dict[str, str]
    metric: Counter | Gauge | Histogram


_LabelKey = tuple[tuple[str, str], ...]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _sanitize_name(name: str) -> str:
    if _NAME_OK.match(name):
        return name
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def _label_key(labels: dict[str, Any]) -> _LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class MetricsRegistry:
    """Thread-safe get-or-create registry of metric series.

    A metric name is bound to one kind on first use; asking for the same
    name with a different kind raises ``ValueError`` (mixed-kind series
    would make the exposition ambiguous).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kinds: dict[str, str] = {}
        self._series: dict[tuple[str, _LabelKey], MetricSeries] = {}

    def _get_or_create(
        self, name: str, kind: str, labels: dict[str, Any], factory: Any
    ) -> Any:
        name = _sanitize_name(name)
        key = (name, _label_key(labels))
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is not None and existing_kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing_kind}, not {kind}"
                )
            series = self._series.get(key)
            if series is None:
                self._kinds[name] = kind
                series = MetricSeries(
                    name=name,
                    kind=kind,
                    labels={k: str(v) for k, v in labels.items()},
                    metric=factory(),
                )
                self._series[key] = series
            return series.metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(name, "counter", labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(name, "gauge", labels, Gauge)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get_or_create(name, "histogram", labels, Histogram)

    def collect(self) -> list[MetricSeries]:
        """All series, sorted by (name, labels) for stable output."""
        with self._lock:
            return [
                self._series[key] for key in sorted(self._series)
            ]

    def label_values(self, name: str, label: str) -> tuple[str, ...]:
        """Distinct values one label takes across a metric's series."""
        name = _sanitize_name(name)
        values = {
            series.labels[label]
            for series in self.collect()
            if series.name == name and label in series.labels
        }
        return tuple(sorted(values))

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump of every series (debugging / tests)."""
        body: dict[str, Any] = {}
        for series in self.collect():
            label_text = ",".join(
                f"{k}={v}" for k, v in sorted(series.labels.items())
            )
            key = f"{series.name}{{{label_text}}}" if label_text else series.name
            if isinstance(series.metric, Histogram):
                body[key] = series.metric.stats().as_dict()
            else:
                body[key] = series.metric.value
        return body

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format for every series."""
        return render_prometheus(self.collect())


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format spec."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(series_list: list[MetricSeries]) -> str:
    """Render collected series as Prometheus text exposition."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for series in series_list:
        prom_kind = "summary" if series.kind == "histogram" else series.kind
        if series.name not in seen_types:
            lines.append(f"# TYPE {series.name} {prom_kind}")
            seen_types.add(series.name)
        if isinstance(series.metric, Histogram):
            stats = series.metric.stats()
            for fraction, value in zip(
                PERCENTILES, (stats.p50, stats.p95, stats.p99)
            ):
                labels = dict(series.labels)
                labels["quantile"] = f"{fraction:g}"
                lines.append(
                    f"{series.name}{_format_labels(labels)} "
                    f"{_format_value(value)}"
                )
            suffix_labels = _format_labels(series.labels)
            lines.append(
                f"{series.name}_sum{suffix_labels} "
                f"{_format_value(stats.total)}"
            )
            lines.append(
                f"{series.name}_count{suffix_labels} {stats.count}"
            )
        else:
            lines.append(
                f"{series.name}{_format_labels(series.labels)} "
                f"{_format_value(series.metric.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


#: The process-global registry pipeline instrumentation reports into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY
