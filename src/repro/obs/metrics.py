"""Process-wide metrics: named counters, gauges and histograms.

The registry generalises what ``repro.service.metrics`` used to keep
private: monotonic counters, point-in-time gauges, and histograms backed
by a fixed-size latency reservoir (the most recent
:data:`RESERVOIR_SIZE` observations) from which percentiles derive — a
sliding-window view that stays O(1) memory no matter the request volume.

Series are keyed by ``(name, labels)``, Prometheus-style::

    registry = get_registry()
    registry.counter("repro_requests_total", endpoint="score").incr()
    registry.histogram("repro_request_seconds", endpoint="score").observe(dt)
    print(registry.render_prometheus())

:meth:`MetricsRegistry.render_prometheus` emits the text exposition
format (``# TYPE`` headers, escaped label values, cumulative
``_bucket``/``_sum``/``_count`` lines for histograms) served by
``GET /metrics?format=prometheus``.

Beyond exposition, the registry supports **cross-process harvesting**
(see :mod:`repro.obs.snapshot`): :meth:`MetricsRegistry.state` captures
a baseline, :meth:`MetricsRegistry.deltas_since` turns everything
recorded after it into picklable :class:`MetricDelta` values, and
:meth:`MetricsRegistry.apply_delta` merges a delta into this process's
registry — counters and histogram count/sum/buckets add exactly, so
totals are identical whether work ran in-process or across a pool.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
import re
import threading
from typing import Any

__all__ = [
    "DEFAULT_BUCKETS",
    "PERCENTILES",
    "RESERVOIR_SIZE",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramStats",
    "MetricDelta",
    "MetricSeries",
    "MetricsRegistry",
    "get_registry",
    "percentile",
    "render_prometheus",
]

#: Observations retained per histogram (a sliding window).
RESERVOIR_SIZE = 2048

#: Percentiles exposed by snapshots, as fractions.
PERCENTILES = (0.50, 0.95, 0.99)

#: Default histogram bucket upper bounds. Deliberately wide (sub-ms
#: request latencies in seconds up through multi-second stage builds in
#: milliseconds share one registry); ``+Inf`` is implicit.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
    1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0,
)


def percentile(sorted_samples: list[float], fraction: float) -> float:
    """Linear-interpolated percentile of an ascending sample list."""
    if not sorted_samples:
        return 0.0
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    rank = fraction * (len(sorted_samples) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_samples[low]
    weight = rank - low
    return sorted_samples[low] * (1 - weight) + sorted_samples[high] * weight


class Counter:
    """A monotonically-increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float = 0

    def incr(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


@dataclasses.dataclass(frozen=True)
class HistogramStats:
    """Summary of one histogram.

    Attributes:
        count: total observations ever (beyond the window).
        total: sum of all observations ever.
        mean: mean over the retained window.
        p50/p95/p99: percentiles over the retained window; 0.0 when empty.
    """

    count: int
    total: float
    mean: float
    p50: float
    p95: float
    p99: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean * 1000, 3),
            "p50_ms": round(self.p50 * 1000, 3),
            "p95_ms": round(self.p95 * 1000, 3),
            "p99_ms": round(self.p99 * 1000, 3),
        }


class Histogram:
    """Ring-buffer reservoir of the most recent observations.

    Total count, sum and per-bucket counts are exact for the process
    lifetime; mean and percentiles are computed over the retained window
    only. Bucket bounds (:data:`DEFAULT_BUCKETS` unless overridden at
    registration) back the cumulative ``_bucket`` lines of the
    Prometheus histogram exposition.
    """

    __slots__ = (
        "_lock", "_samples", "_next_slot", "_count", "_total", "_size",
        "_bounds", "_bucket_counts",
    )

    def __init__(
        self,
        reservoir_size: int = RESERVOIR_SIZE,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self._lock = threading.Lock()
        self._samples: list[float] = []
        self._next_slot = 0
        self._count = 0
        self._total = 0.0
        self._size = reservoir_size
        self._bounds = tuple(sorted(buckets))
        # One slot per bound plus the +Inf overflow slot; non-cumulative
        # here, accumulated into "le" form only at render time.
        self._bucket_counts = [0] * (len(self._bounds) + 1)

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._total += value
            self._bucket_counts[bisect.bisect_left(self._bounds, value)] += 1
            if len(self._samples) < self._size:
                self._samples.append(value)
            else:  # overwrite the oldest sample (ring buffer)
                self._samples[self._next_slot] = value
                self._next_slot = (self._next_slot + 1) % self._size

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket observation counts (non-cumulative; last is +Inf)."""
        with self._lock:
            return tuple(self._bucket_counts)

    def _window_chronological(self) -> list[float]:
        """The retained window in observation order (caller holds lock)."""
        if len(self._samples) < self._size:
            return list(self._samples)
        return self._samples[self._next_slot:] + self._samples[: self._next_slot]

    def state(self) -> tuple[int, float, tuple[int, ...]]:
        """Baseline for delta capture: ``(count, total, bucket_counts)``."""
        with self._lock:
            return self._count, self._total, tuple(self._bucket_counts)

    def delta_since(
        self, state: tuple[int, float, tuple[int, ...]] | None
    ) -> tuple[int, float, tuple[float, ...], tuple[int, ...]]:
        """What was observed after ``state``, as exact additive parts.

        Returns ``(count, total, samples, bucket_counts)`` where
        ``samples`` are the newest observations in observation order
        (capped at the reservoir size) and ``count``/``total``/buckets
        are exact even beyond the cap.
        """
        base_count, base_total, base_buckets = state or (
            0, 0.0, (0,) * len(self._bucket_counts)
        )
        with self._lock:
            count = self._count - base_count
            total = self._total - base_total
            buckets = tuple(
                now - before
                for now, before in zip(self._bucket_counts, base_buckets)
            )
            window = self._window_chronological()
        samples = tuple(window[-count:]) if count > 0 else ()
        return count, total, samples, buckets

    def merge_delta(
        self,
        count: int,
        total: float,
        samples: tuple[float, ...],
        bucket_counts: tuple[int, ...],
    ) -> None:
        """Fold another process's observations in, keeping totals exact."""
        with self._lock:
            self._count += count
            self._total += total
            for index, extra in enumerate(bucket_counts):
                if index < len(self._bucket_counts):
                    self._bucket_counts[index] += extra
            for value in samples:
                if len(self._samples) < self._size:
                    self._samples.append(value)
                else:
                    self._samples[self._next_slot] = value
                    self._next_slot = (self._next_slot + 1) % self._size

    def stats(self) -> HistogramStats:
        with self._lock:
            window = sorted(self._samples)
            count, total = self._count, self._total
        mean = sum(window) / len(window) if window else 0.0
        p50, p95, p99 = (percentile(window, f) for f in PERCENTILES)
        return HistogramStats(
            count=count, total=total, mean=mean, p50=p50, p95=p95, p99=p99
        )


@dataclasses.dataclass(frozen=True)
class MetricSeries:
    """One (name, labels) series as returned by :meth:`collect`."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: dict[str, str]
    metric: Counter | Gauge | Histogram


@dataclasses.dataclass(frozen=True)
class MetricDelta:
    """What one series recorded since a baseline — picklable and additive.

    The unit a pool worker ships home inside a
    :class:`~repro.obs.snapshot.TelemetrySnapshot`. Counters carry the
    increment, gauges the latest value (last write wins on merge), and
    histograms exact ``count``/``total``/bucket increments plus the
    newest window ``samples`` in observation order.
    """

    name: str
    kind: str
    labels: tuple[tuple[str, str], ...]
    value: float = 0.0
    count: int = 0
    total: float = 0.0
    samples: tuple[float, ...] = ()
    bucket_counts: tuple[int, ...] = ()


_LabelKey = tuple[tuple[str, str], ...]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _sanitize_name(name: str) -> str:
    if _NAME_OK.match(name):
        return name
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def _label_key(labels: dict[str, Any]) -> _LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class MetricsRegistry:
    """Thread-safe get-or-create registry of metric series.

    A metric name is bound to one kind on first use; asking for the same
    name with a different kind raises ``ValueError`` (mixed-kind series
    would make the exposition ambiguous).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kinds: dict[str, str] = {}
        self._series: dict[tuple[str, _LabelKey], MetricSeries] = {}

    def _get_or_create(
        self, name: str, kind: str, labels: dict[str, Any], factory: Any
    ) -> Any:
        name = _sanitize_name(name)
        key = (name, _label_key(labels))
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is not None and existing_kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing_kind}, not {kind}"
                )
            series = self._series.get(key)
            if series is None:
                self._kinds[name] = kind
                series = MetricSeries(
                    name=name,
                    kind=kind,
                    labels={k: str(v) for k, v in labels.items()},
                    metric=factory(),
                )
                self._series[key] = series
            return series.metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(name, "counter", labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(name, "gauge", labels, Gauge)

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] | None = None,
        **labels: Any,
    ) -> Histogram:
        factory = (
            Histogram
            if buckets is None
            else (lambda: Histogram(buckets=tuple(buckets)))
        )
        return self._get_or_create(name, "histogram", labels, factory)

    def collect(self) -> list[MetricSeries]:
        """All series, sorted by (name, labels) for stable output."""
        with self._lock:
            return [
                self._series[key] for key in sorted(self._series)
            ]

    def label_values(self, name: str, label: str) -> tuple[str, ...]:
        """Distinct values one label takes across a metric's series."""
        name = _sanitize_name(name)
        values = {
            series.labels[label]
            for series in self.collect()
            if series.name == name and label in series.labels
        }
        return tuple(sorted(values))

    # ------------------------------------------------------------------
    # cross-process delta capture / merge (see repro.obs.snapshot)
    # ------------------------------------------------------------------
    def state(self) -> dict[tuple[str, _LabelKey], Any]:
        """A baseline of every series' current reading.

        Pool workers capture this at task start (it naturally absorbs
        any state inherited across ``fork``) and diff against it at task
        end via :meth:`deltas_since`.
        """
        baseline: dict[tuple[str, _LabelKey], Any] = {}
        for series in self.collect():
            key = (series.name, _label_key(series.labels))
            if isinstance(series.metric, Histogram):
                baseline[key] = series.metric.state()
            else:
                baseline[key] = series.metric.value
        return baseline

    def deltas_since(
        self, baseline: dict[tuple[str, _LabelKey], Any]
    ) -> tuple[MetricDelta, ...]:
        """Everything recorded after ``baseline``, as picklable deltas.

        Unchanged series are skipped; gauges are included whenever their
        value differs from the baseline (last write wins on merge).
        """
        deltas: list[MetricDelta] = []
        for series in self.collect():
            key = (series.name, _label_key(series.labels))
            labels = _label_key(series.labels)
            if isinstance(series.metric, Histogram):
                count, total, samples, buckets = series.metric.delta_since(
                    baseline.get(key)
                )
                if count:
                    deltas.append(
                        MetricDelta(
                            name=series.name,
                            kind="histogram",
                            labels=labels,
                            count=count,
                            total=total,
                            samples=samples,
                            bucket_counts=buckets,
                        )
                    )
                continue
            before = baseline.get(key, 0.0)
            now = series.metric.value
            if series.kind == "counter":
                if now != before:
                    deltas.append(
                        MetricDelta(
                            name=series.name,
                            kind="counter",
                            labels=labels,
                            value=now - before,
                        )
                    )
            elif now != before:  # gauge: ship the reading itself
                deltas.append(
                    MetricDelta(
                        name=series.name,
                        kind="gauge",
                        labels=labels,
                        value=now,
                    )
                )
        return tuple(deltas)

    def apply_delta(self, delta: MetricDelta) -> None:
        """Merge one worker delta into this registry (exactly additive)."""
        labels = dict(delta.labels)
        if delta.kind == "counter":
            self.counter(delta.name, **labels).incr(delta.value)
        elif delta.kind == "gauge":
            self.gauge(delta.name, **labels).set(delta.value)
        elif delta.kind == "histogram":
            self.histogram(delta.name, **labels).merge_delta(
                delta.count, delta.total, delta.samples, delta.bucket_counts
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown metric kind {delta.kind!r}")

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump of every series (debugging / tests)."""
        body: dict[str, Any] = {}
        for series in self.collect():
            label_text = ",".join(
                f"{k}={v}" for k, v in sorted(series.labels.items())
            )
            key = f"{series.name}{{{label_text}}}" if label_text else series.name
            if isinstance(series.metric, Histogram):
                body[key] = series.metric.stats().as_dict()
            else:
                body[key] = series.metric.value
        return body

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format for every series."""
        return render_prometheus(self.collect())


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format spec."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    if bound == math.inf:
        return "+Inf"
    return _format_value(bound)


def render_prometheus(series_list: list[MetricSeries]) -> str:
    """Render collected series as Prometheus text exposition.

    Histograms use the native histogram exposition: cumulative
    ``_bucket{le="..."}`` lines (``+Inf`` equal to ``_count``), an exact
    lifetime ``_sum`` and ``_count`` — not summary quantiles, so series
    from several processes can be aggregated server-side.
    """
    lines: list[str] = []
    seen_types: set[str] = set()
    for series in series_list:
        if series.name not in seen_types:
            lines.append(f"# TYPE {series.name} {series.kind}")
            seen_types.add(series.name)
        if isinstance(series.metric, Histogram):
            stats = series.metric.stats()
            cumulative = 0
            for bound, bucket_count in zip(
                series.metric.bounds + (math.inf,),
                series.metric.bucket_counts(),
            ):
                cumulative += bucket_count
                labels = dict(series.labels)
                labels["le"] = _format_bound(bound)
                lines.append(
                    f"{series.name}_bucket{_format_labels(labels)} "
                    f"{cumulative}"
                )
            suffix_labels = _format_labels(series.labels)
            lines.append(
                f"{series.name}_sum{suffix_labels} "
                f"{_format_value(stats.total)}"
            )
            lines.append(
                f"{series.name}_count{suffix_labels} {stats.count}"
            )
        else:
            lines.append(
                f"{series.name}{_format_labels(series.labels)} "
                f"{_format_value(series.metric.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


#: The process-global registry pipeline instrumentation reports into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY
