"""Reproduction of Singh & Bagler, "Data-driven investigations of culinary
patterns in traditional recipes across the world" (ICDE 2018).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.datamodel` — entities and the paper's published facts
* :mod:`repro.db` — embedded relational storage engine
* :mod:`repro.flavordb` — synthetic FlavorDB (catalog + molecule universe)
* :mod:`repro.aliasing` — ingredient aliasing NLP pipeline
* :mod:`repro.corpus` — synthetic recipe-corpus generator
* :mod:`repro.culinarydb` — the CulinaryDB relational database
* :mod:`repro.pairing` — food-pairing analysis (the core contribution)
* :mod:`repro.analysis` — descriptive analytics and extensions
* :mod:`repro.experiments` — per-table/figure reproduction harness
"""

from .aliasing import AliasingPipeline
from .corpus import DEFAULT_SEED, CorpusGenerator
from .culinarydb import CulinaryDB, build_culinarydb
from .datamodel import Category, Cuisine, Ingredient, Recipe, build_cuisines
from .experiments import EXPERIMENTS, build_workspace
from .flavordb import IngredientCatalog, default_catalog
from .generation import RecipeDesigner, RecipeTweaker
from .pairing import NullModel, analyze_cuisine, food_pairing_score

__version__ = "1.0.0"

__all__ = [
    "AliasingPipeline",
    "DEFAULT_SEED",
    "CorpusGenerator",
    "CulinaryDB",
    "build_culinarydb",
    "Category",
    "Cuisine",
    "Ingredient",
    "Recipe",
    "build_cuisines",
    "EXPERIMENTS",
    "build_workspace",
    "IngredientCatalog",
    "default_catalog",
    "NullModel",
    "RecipeDesigner",
    "RecipeTweaker",
    "analyze_cuisine",
    "food_pairing_score",
    "__version__",
]
