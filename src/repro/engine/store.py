"""Content-addressed artifact store: the engine's disk tier.

Each stage output persists as one file, ``<stage>--<fingerprint>.art``,
written atomically (tmp file + :func:`os.replace`) so a crashed writer
can never leave a half-written artifact under its final name. Every file
carries a JSON header with the payload's length and SHA-256; a
truncated, bit-flipped or otherwise unreadable entry is detected on
load, removed, and reported as a miss — the engine simply rebuilds.

The store is size-bounded: after every write, least-recently-used
entries (by file access order, maintained via ``os.utime`` on load) are
evicted until the directory fits ``max_bytes`` again. ``repro cache
ls|info|clear`` expose the same directory for operators.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any

from ..obs import get_logger, get_registry

__all__ = [
    "ARTIFACT_SUFFIX",
    "DEFAULT_MAX_BYTES",
    "ENV_MAX_BYTES",
    "MISSING",
    "ArtifactStore",
    "StoreEntry",
]

_LOG = get_logger("repro.engine.store")

#: Sentinel for "not in the store" (``None`` is a valid artifact value).
MISSING = object()

ARTIFACT_SUFFIX = ".art"
_MAGIC = b"repro-artifact/1\n"

#: Default size bound for the disk cache (4 GiB).
DEFAULT_MAX_BYTES = 4 << 30

#: Environment override for the size bound, in bytes.
ENV_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"


@dataclasses.dataclass(frozen=True)
class StoreEntry:
    """One artifact file as listed by :meth:`ArtifactStore.entries`."""

    stage: str
    fingerprint: str
    size: int
    modified: float
    path: Path


def _resolve_max_bytes(max_bytes: int | None) -> int:
    if max_bytes is not None:
        return max_bytes
    raw = os.environ.get(ENV_MAX_BYTES)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            _LOG.warning("store.bad_max_bytes", value=raw)
    return DEFAULT_MAX_BYTES


class ArtifactStore:
    """A directory of checksummed, LRU-evicted stage artifacts.

    Every operation degrades gracefully: an unwritable directory, a
    corrupt file or a racing writer turns into a logged miss, never an
    exception on the build path.
    """

    def __init__(self, root: str | Path, max_bytes: int | None = None) -> None:
        self.root = Path(root).expanduser()
        self.max_bytes = _resolve_max_bytes(max_bytes)
        self._registry = get_registry()

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def get(self, stage: str, fingerprint: str) -> Any:
        """The stored artifact, or :data:`MISSING`.

        Corrupt or truncated entries are removed and counted in
        ``engine_store_corrupt_total`` so the caller rebuilds.
        """
        path = self._path(stage, fingerprint)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return MISSING
        except OSError as error:
            _LOG.warning(
                "store.read_failed", path=str(path), error=str(error)
            )
            return MISSING
        value = self._decode(stage, fingerprint, path, blob)
        if value is MISSING:
            return MISSING
        try:  # refresh recency for LRU eviction
            os.utime(path)
        except OSError:
            pass
        return value

    def contains(self, stage: str, fingerprint: str) -> bool:
        """Whether the artifact file exists on disk.

        A pure existence probe — no decode, no checksum, no recency
        touch — cheap enough for readiness endpoints to call per stage
        on every poll. A corrupt entry can therefore report ``True``
        until a real :meth:`get` detects and removes it.
        """
        try:
            return self._path(stage, fingerprint).is_file()
        except OSError:
            return False

    def _decode(
        self, stage: str, fingerprint: str, path: Path, blob: bytes
    ) -> Any:
        try:
            if not blob.startswith(_MAGIC):
                raise ValueError("bad magic")
            newline = blob.index(b"\n", len(_MAGIC))
            header = json.loads(blob[len(_MAGIC) : newline])
            payload = blob[newline + 1 :]
            if header.get("fingerprint") != fingerprint:
                raise ValueError("fingerprint mismatch")
            if header.get("size") != len(payload):
                raise ValueError(
                    f"truncated payload: {len(payload)} of "
                    f"{header.get('size')} bytes"
                )
            digest = hashlib.sha256(payload).hexdigest()
            if header.get("sha256") != digest:
                raise ValueError("checksum mismatch")
            return pickle.loads(payload)
        except Exception as error:  # noqa: BLE001 - any damage => rebuild
            self._registry.counter(
                "engine_store_corrupt_total", stage=stage
            ).incr()
            _LOG.warning(
                "store.corrupt_entry",
                stage=stage,
                path=str(path),
                error=f"{type(error).__name__}: {error}",
            )
            try:
                path.unlink()
            except OSError:
                pass
            return MISSING

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put(self, stage: str, fingerprint: str, value: Any) -> Path | None:
        """Persist one artifact atomically; returns its path (or None).

        I/O failures are logged and swallowed — the disk tier is an
        optimisation, never a correctness dependency.
        """
        path = self._path(stage, fingerprint)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            header = json.dumps(
                {
                    "stage": stage,
                    "fingerprint": fingerprint,
                    "sha256": hashlib.sha256(payload).hexdigest(),
                    "size": len(payload),
                    "created": round(time.time(), 3),
                },
                sort_keys=True,
            ).encode("utf-8")
            handle = tempfile.NamedTemporaryFile(
                dir=self.root, prefix=".tmp-", delete=False
            )
            try:
                with handle:
                    handle.write(_MAGIC)
                    handle.write(header)
                    handle.write(b"\n")
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(handle.name, path)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
        except Exception as error:  # noqa: BLE001 - disk tier is optional
            _LOG.warning(
                "store.write_failed",
                stage=stage,
                path=str(path),
                error=f"{type(error).__name__}: {error}",
            )
            return None
        self._evict(keep=path)
        self._registry.gauge("engine_store_bytes").set(self.total_bytes())
        return path

    def _evict(self, keep: Path | None = None) -> None:
        """Drop LRU entries until the store fits ``max_bytes`` again."""
        entries = sorted(self.entries(), key=lambda e: e.modified)
        total = sum(entry.size for entry in entries)
        for entry in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and entry.path == keep:
                continue  # never evict the artifact just written
            try:
                entry.path.unlink()
            except OSError:
                continue
            total -= entry.size
            self._registry.counter("engine_store_evicted_total").incr()
            _LOG.info(
                "store.evicted",
                stage=entry.stage,
                size=entry.size,
                path=str(entry.path),
            )

    # ------------------------------------------------------------------
    # operator surface (repro cache ls|clear|info)
    # ------------------------------------------------------------------
    def _path(self, stage: str, fingerprint: str) -> Path:
        return self.root / f"{stage}--{fingerprint}{ARTIFACT_SUFFIX}"

    def entries(self) -> list[StoreEntry]:
        """Every artifact currently on disk (unsorted)."""
        found: list[StoreEntry] = []
        try:
            candidates = list(self.root.glob(f"*{ARTIFACT_SUFFIX}"))
        except OSError:
            return found
        for path in candidates:
            stage, separator, fingerprint = path.stem.partition("--")
            if not separator:
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            found.append(
                StoreEntry(
                    stage=stage,
                    fingerprint=fingerprint,
                    size=stat.st_size,
                    modified=stat.st_mtime,
                    path=path,
                )
            )
        return found

    def total_bytes(self) -> int:
        return sum(entry.size for entry in self.entries())

    def clear(self) -> int:
        """Remove every artifact (and stray tmp file); returns the count."""
        removed = 0
        for entry in self.entries():
            try:
                entry.path.unlink()
                removed += 1
            except OSError:
                continue
        try:
            for stray in self.root.glob(".tmp-*"):
                stray.unlink(missing_ok=True)
        except OSError:
            pass
        return removed

    def info(self) -> dict[str, Any]:
        """JSON-ready summary for ``repro cache info``."""
        entries = self.entries()
        return {
            "cache_dir": str(self.root),
            "entries": len(entries),
            "total_bytes": sum(entry.size for entry in entries),
            "max_bytes": self.max_bytes,
            "stages": sorted({entry.stage for entry in entries}),
        }
