"""The staged build graph:
corpus → aliasing → cuisines → pairing_views → retrieval_index.

What used to be one monolithic ``_build()`` is now five declarative stages,
each a pure function of ``(RunConfig, upstream artifacts)`` registered
here with an explicit dependency list, a code version tag and the set of
RunConfig fields it reads. The engine content-addresses each output from
exactly those ingredients, so stage artifacts are first-class, reusable
units: a recipe-scale change rebuilds everything, a ``pairing_views``
logic change rebuilds only the views, and an unrelated parameter
(worker count, sample count) rebuilds nothing.

Bump a stage's ``version`` whenever its build logic (or the layout of
its output) changes — that is what keeps stale disk artifacts from ever
being loaded by newer code.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Mapping
from typing import Any

from ..aliasing import AliasingPipeline, MatchReport
from ..corpus import CorpusGenerator, GeneratedCorpus
from ..datamodel import Cuisine, Recipe, build_cuisines, region_codes
from ..flavordb import default_catalog
from ..obs import span
from ..pairing.views import CuisineView, build_cuisine_view
from ..parallel import canonicalize, resolve_workers
from ..retrieval.index import RetrievalIndex, build_retrieval_index
from .config import RunConfig

__all__ = [
    "STAGE_ORDER",
    "STAGES",
    "AliasingArtifact",
    "Stage",
    "get_stage",
]


@dataclasses.dataclass(frozen=True)
class Stage:
    """One node of the build graph.

    Attributes:
        name: stage id (also the artifact-file prefix).
        version: code version tag; part of the fingerprint.
        deps: upstream stage names whose artifacts the build receives.
        config_fields: RunConfig attribute names the build reads — the
            only config values that enter the fingerprint.
        build: pure build function ``(config, inputs) -> artifact``
            where ``inputs`` maps each dep name to its artifact.
    """

    name: str
    version: str
    deps: tuple[str, ...]
    config_fields: tuple[str, ...]
    build: Callable[[RunConfig, Mapping[str, Any]], Any]


@dataclasses.dataclass(frozen=True)
class AliasingArtifact:
    """Output of the ``aliasing`` stage: resolved recipes + curation report."""

    recipes: tuple[Recipe, ...]
    report: MatchReport


def _stage_workers(config: RunConfig) -> int:
    """Worker processes available to a cold stage build.

    ``workers`` deliberately stays out of every stage's
    ``config_fields``: outputs are bit-identical for any worker count
    (see :func:`repro.parallel.canonicalize`), so parallelism must never
    re-address an artifact.
    """
    if config.workers is None:
        return 1
    return resolve_workers(config.workers)


def _build_corpus(
    config: RunConfig, inputs: Mapping[str, Any]
) -> GeneratedCorpus:
    generator = CorpusGenerator(
        seed=config.corpus_seed,
        recipe_scale=config.recipe_scale,
        include_world_only=config.include_world_only,
    )
    # Canonicalise so the pickled .art bytes depend only on the corpus
    # *values*, not on which processes assembled them.
    return canonicalize(generator.generate(workers=_stage_workers(config)))


def _build_aliasing(
    config: RunConfig, inputs: Mapping[str, Any]
) -> AliasingArtifact:
    corpus: GeneratedCorpus = inputs["corpus"]
    pipeline = AliasingPipeline(default_catalog())
    result = pipeline.resolve_corpus(
        corpus.raw_recipes, workers=_stage_workers(config)
    )
    return canonicalize(
        AliasingArtifact(recipes=result.recipes, report=result.report)
    )


def _build_cuisines(
    config: RunConfig, inputs: Mapping[str, Any]
) -> dict[str, Cuisine]:
    aliasing: AliasingArtifact = inputs["aliasing"]
    with span("workspace.cuisines"):
        return build_cuisines(aliasing.recipes)


def _build_pairing_views(
    config: RunConfig, inputs: Mapping[str, Any]
) -> dict[str, CuisineView]:
    """Numeric pairing views for the 22 Table 1 regions.

    Precomputing the derived sampler structures here means a warm load
    hands fig4/fig5 (and the service) views that are ready to sample.
    """
    cuisines: Mapping[str, Cuisine] = inputs["cuisines"]
    catalog = default_catalog()
    regional = set(region_codes())
    with span("engine.pairing_views", regions=len(regional)):
        views: dict[str, CuisineView] = {}
        for code, cuisine in cuisines.items():
            if code not in regional:
                continue
            view = build_cuisine_view(cuisine, catalog)
            # Materialise the cached sampler structures so they ride
            # along in the persisted artifact.
            view.recipe_sizes()
            view.category_pools()
            view.template_specs()
            views[code] = view
        return views


def _build_retrieval_index(
    config: RunConfig, inputs: Mapping[str, Any]
) -> RetrievalIndex:
    """The retrieval index over the molecule universe (fifth stage).

    Depends on ``pairing_views`` (which regions are view-ready defines
    the cuisine-vector coverage) and ``cuisines`` (prevalence counts).
    Built in-process from canonical inputs — no sharding — so the
    artifact is byte-identical at any worker count by construction.
    """
    cuisines: Mapping[str, Cuisine] = inputs["cuisines"]
    views: Mapping[str, CuisineView] = inputs["pairing_views"]
    regional = {code: cuisines[code] for code in sorted(views)}
    with span("engine.retrieval_index", regions=len(regional)):
        index = canonicalize(build_retrieval_index(default_catalog(), regional))
        # Materialise the cached lookup tables so they ride along in the
        # persisted artifact (mirroring the pairing-view samplers);
        # after canonicalize, which rebuilds the dataclass without them.
        index.row_by_id
        index.name_rank
        index.cuisine_row
        return index


#: The registered stages, dependency order.
STAGES: dict[str, Stage] = {
    stage.name: stage
    for stage in (
        Stage(
            name="corpus",
            version="1",
            deps=(),
            config_fields=(
                "corpus_seed",
                "recipe_scale",
                "include_world_only",
            ),
            build=_build_corpus,
        ),
        Stage(
            name="aliasing",
            version="1",
            deps=("corpus",),
            config_fields=(),
            build=_build_aliasing,
        ),
        Stage(
            name="cuisines",
            version="1",
            deps=("aliasing",),
            config_fields=(),
            build=_build_cuisines,
        ),
        Stage(
            name="pairing_views",
            version="1",
            deps=("cuisines",),
            config_fields=(),
            build=_build_pairing_views,
        ),
        Stage(
            name="retrieval_index",
            version="1",
            deps=("cuisines", "pairing_views"),
            config_fields=(),
            build=_build_retrieval_index,
        ),
    )
}

#: Stage names in topological (build) order.
STAGE_ORDER: tuple[str, ...] = tuple(STAGES)


def get_stage(name: str) -> Stage:
    """The registered stage, or a KeyError naming the known stages."""
    try:
        return STAGES[name]
    except KeyError:
        raise KeyError(
            f"unknown stage {name!r} (known: {', '.join(STAGES)})"
        ) from None
