"""Self-cleaning per-key build locks.

The workspace cache used to keep one ``threading.Lock`` per build key in
a dict that only ever grew — every distinct ``(seed, scale, ...)`` ever
requested leaked a lock for the life of the process. :class:`KeyedLocks`
keeps the same dedup guarantee (concurrent callers for one key build
once) but reference-counts waiters and drops a key's entry the moment
the last holder releases it, so the table's size is bounded by the
number of *concurrently* in-flight keys.
"""

from __future__ import annotations

import threading
from collections.abc import Hashable, Iterator
from contextlib import contextmanager

__all__ = ["KeyedLocks"]


class KeyedLocks:
    """A mutual-exclusion region per key, with automatic cleanup."""

    def __init__(self) -> None:
        self._guard = threading.Lock()
        # key -> [lock, waiter count]; an entry exists only while at
        # least one thread holds or waits on its lock.
        self._entries: dict[Hashable, list] = {}

    @contextmanager
    def holding(self, key: Hashable) -> Iterator[None]:
        """Serialise the enclosed block against other holders of ``key``."""
        with self._guard:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._entries[key] = [threading.Lock(), 0]
            entry[1] += 1
        entry[0].acquire()
        try:
            yield
        finally:
            entry[0].release()
            with self._guard:
                entry[1] -= 1
                if entry[1] <= 0:
                    self._entries.pop(key, None)

    def __len__(self) -> int:
        """Entries currently held or waited on (0 when the system is idle)."""
        with self._guard:
            return len(self._entries)

    def clear(self) -> None:
        """Forget idle entries (held entries clean themselves up)."""
        with self._guard:
            for key in [k for k, v in self._entries.items() if v[1] <= 0]:
                self._entries.pop(key, None)
