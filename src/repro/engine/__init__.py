"""``repro.engine`` — the staged artifact pipeline behind every workload.

The monolithic workspace build is decomposed into four declarative
stages (``corpus → aliasing → cuisines → pairing_views``), each a pure
function whose output is content-addressed by *(stage name, code
version tag, upstream fingerprints, the RunConfig fields it reads)* and
cached in two tiers: a shared in-process LRU, then an on-disk artifact
store with atomic writes, checksum validation and size-bounded LRU
eviction. A second CLI run — or a service restart — warm-loads the whole
graph in seconds instead of paying the ~minute cold build.

Entry points build one :class:`RunConfig` (from argparse via the
generated parent parser, from service request params, or from script
flags) and every layer below consumes it; no more hand-plumbed keyword
trails. See :mod:`repro.engine.stages` for the graph,
:mod:`repro.engine.store` for the disk format, and ``repro cache
ls|info|clear`` for the operator surface.
"""

from .config import (
    DEFAULT_CACHE_DIR,
    ENV_CACHE_DIR,
    RunConfig,
    config_from_args,
    config_parent_parser,
    nonnegative_int,
    positive_float,
    positive_int,
)
from .engine import (
    MAX_MEMORY_ARTIFACTS,
    Engine,
    clear_memory_tier,
    engine_cache_summary,
    memory_tier_len,
)
from .fingerprint import stage_fingerprint
from .locks import KeyedLocks
from .stages import (
    STAGE_ORDER,
    STAGES,
    AliasingArtifact,
    Stage,
    get_stage,
)
from .store import (
    DEFAULT_MAX_BYTES,
    MISSING,
    ArtifactStore,
    StoreEntry,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "DEFAULT_MAX_BYTES",
    "ENV_CACHE_DIR",
    "MAX_MEMORY_ARTIFACTS",
    "MISSING",
    "AliasingArtifact",
    "ArtifactStore",
    "Engine",
    "KeyedLocks",
    "RunConfig",
    "STAGES",
    "STAGE_ORDER",
    "Stage",
    "StoreEntry",
    "clear_memory_tier",
    "config_from_args",
    "config_parent_parser",
    "engine_cache_summary",
    "get_stage",
    "memory_tier_len",
    "nonnegative_int",
    "positive_float",
    "positive_int",
    "stage_fingerprint",
]
