"""Content addressing for stage artifacts.

A stage output's *fingerprint* is a SHA-256 over exactly four things:

1. the stage name,
2. the stage's code version tag (bumped when its build logic changes),
3. the fingerprints of its upstream stages, and
4. the values of the RunConfig fields the stage actually reads.

Anything else — worker count, sample count, cache location — is invisible
to the fingerprint, so changing an unrelated parameter never invalidates
an artifact, while changing ``recipe_scale`` (or a version tag) ripples
through every downstream stage.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from .config import RunConfig
    from .stages import Stage

__all__ = ["stage_fingerprint"]


def stage_fingerprint(
    stage: "Stage",
    config: "RunConfig",
    upstream: Mapping[str, str],
) -> str:
    """The content address of one stage output (64 hex chars)."""
    document = {
        "stage": stage.name,
        "version": stage.version,
        "config": {
            name: getattr(config, name) for name in stage.config_fields
        },
        "upstream": dict(sorted(upstream.items())),
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
