"""The unified run configuration: one frozen dataclass, one flow.

Every run parameter — corpus seed and scale, Monte Carlo fan-out, null
model sample count, artifact-cache location — lives in :class:`RunConfig`.
It is built exactly once per entry point (from argparse in ``repro``,
from request params in the service, from script flags in
``run_full_experiments.py``) and handed down; no layer re-plumbs loose
keyword arguments.

Each field carries CLI metadata, so the shared argparse parent parser is
*generated* from the dataclass (:func:`config_parent_parser`) — flag
names, validators, defaults and help text have one definition for all
subcommands, and :func:`config_from_args` maps the parsed namespace
straight back to a :class:`RunConfig`.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from ..corpus.generator import DEFAULT_SEED
from ..datamodel import ConfigurationError
from ..parallel.executor import (
    DEFAULT_SHARD_SIZE,
    ParallelConfig,
    resolve_workers,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ENV_CACHE_DIR",
    "RunConfig",
    "config_from_args",
    "config_parent_parser",
    "positive_float",
    "positive_int",
    "nonnegative_int",
]

#: Default on-disk artifact cache location (used when neither
#: ``--cache-dir`` nor :data:`ENV_CACHE_DIR` names one).
DEFAULT_CACHE_DIR = "~/.cache/repro"

#: Environment variable that supplies a cache dir (and thereby enables
#: the disk tier) without a CLI flag.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"


# ---------------------------------------------------------------------------
# argparse value validators (shared by every generated flag)
# ---------------------------------------------------------------------------
def positive_float(text: str) -> float:
    """Argparse type: a strictly positive float (``--scale 0`` is an error)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}") from None
    if not value > 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {text}"
        )
    return value


def positive_int(text: str) -> int:
    """Argparse type: a strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text}"
        )
    return value


def nonnegative_int(text: str) -> int:
    """Argparse type: an integer >= 0 (``--workers 0`` means one per core)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {text}"
        )
    return value


def _cfg(default: Any, **cli: Any) -> Any:
    """A RunConfig field with its CLI exposure described in metadata."""
    return dataclasses.field(
        default=default, metadata={"cli": cli} if cli else {}
    )


@dataclasses.dataclass(frozen=True)
class RunConfig:
    """Every parameter a run can take, in one immutable value.

    Attributes:
        seed: corpus/sampling seed; ``None`` keeps the paper-default
            corpus seed *and* the legacy ``"default"`` sampling stream.
        recipe_scale: recipe-count scale factor (1.0 = 45,772 recipes).
        include_world_only: also generate the WORLD-only mini-regions.
        workers: worker processes for Monte Carlo sampling and for the
            cold corpus/aliasing stage builds (``None`` = everything
            serial, ``0`` = one per CPU core). Never part of any stage
            fingerprint: artifacts are byte-identical for any value.
        shard_size: Monte Carlo samples per shard (results depend on
            this, never on ``workers``).
        n_samples: random recipes per null model (fig4).
        cache_dir: artifact disk-cache directory; setting it enables the
            disk tier (see also :data:`ENV_CACHE_DIR`).
        no_disk_cache: force the disk tier off even when a cache dir is
            configured.
    """

    seed: int | None = _cfg(
        None,
        flags=("--seed",),
        type=int,
        help="corpus seed (default: the paper seed, 20180417)",
    )
    recipe_scale: float = _cfg(
        1.0,
        flags=("--scale", "--recipe-scale"),
        type=positive_float,
        help="recipe-count scale factor (1.0 = full 45,772-recipe corpus)",
    )
    include_world_only: bool = _cfg(True)
    workers: int | None = _cfg(
        None,
        flags=("--workers",),
        type=nonnegative_int,
        metavar="N",
        help=(
            "fan null-model sampling and cold corpus/aliasing builds "
            "across N worker processes (0 = one per CPU core; omit to "
            "run everything serially)"
        ),
    )
    shard_size: int = _cfg(
        DEFAULT_SHARD_SIZE,
        flags=("--shard-size",),
        type=positive_int,
        metavar="N",
        help=(
            "samples per Monte Carlo shard (default: "
            f"{DEFAULT_SHARD_SIZE}); results depend on this, not on "
            "--workers"
        ),
    )
    n_samples: int = _cfg(
        100_000,
        flags=("--samples", "--n-samples"),
        type=positive_int,
        help="random recipes per null model (fig4 only)",
    )
    cache_dir: str | None = _cfg(
        None,
        flags=("--cache-dir",),
        type=str,
        metavar="DIR",
        help=(
            "artifact disk-cache directory; enables the two-tier stage "
            "cache (default location when enabled via $REPRO_CACHE_DIR: "
            f"{DEFAULT_CACHE_DIR})"
        ),
    )
    no_disk_cache: bool = _cfg(
        False,
        action="store_true",
        flags=("--no-disk-cache",),
        help="disable the artifact disk cache even when a dir is configured",
    )

    def __post_init__(self) -> None:
        if not self.recipe_scale > 0:
            raise ConfigurationError("recipe_scale must be positive")
        if self.shard_size < 1:
            raise ConfigurationError("shard_size must be >= 1")
        if self.n_samples < 1:
            raise ConfigurationError("n_samples must be >= 1")
        if self.workers is not None and self.workers < 0:
            raise ConfigurationError("workers must be >= 0 (or None)")

    # ------------------------------------------------------------------
    # derived values
    # ------------------------------------------------------------------
    @property
    def corpus_seed(self) -> int:
        """The effective corpus-generation seed."""
        return DEFAULT_SEED if self.seed is None else self.seed

    @property
    def sampling_seed(self) -> int | None:
        """Seed mixed into the Monte Carlo shard generators.

        ``None`` selects the deterministic ``"default"`` stream — the
        same streams the pre-RunConfig CLI produced, so existing z-score
        artifacts stay byte-identical.
        """
        return self.seed

    def parallel(self, cap: int | None = None) -> ParallelConfig | None:
        """The Monte Carlo fan-out this config requests, or ``None``.

        Args:
            cap: optional upper bound on resolved workers (the service
                uses this so one request cannot monopolise the host).
        """
        if self.workers is None:
            return None
        workers = resolve_workers(self.workers)
        if cap is not None:
            workers = max(1, min(workers, cap))
        return ParallelConfig(workers=workers, shard_size=self.shard_size)

    @property
    def disk_cache_enabled(self) -> bool:
        """Whether stage artifacts should persist to (and load from) disk."""
        if self.no_disk_cache:
            return False
        return self.cache_dir is not None or bool(
            os.environ.get(ENV_CACHE_DIR)
        )

    @property
    def resolved_cache_dir(self) -> Path:
        """The disk-cache directory this config would use."""
        raw = (
            self.cache_dir
            or os.environ.get(ENV_CACHE_DIR)
            or DEFAULT_CACHE_DIR
        )
        return Path(raw).expanduser()

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    def workspace_key(self) -> tuple[int, float, bool]:
        """The identity of the workspace this config builds."""
        return (self.corpus_seed, self.recipe_scale, self.include_world_only)


def config_parent_parser(
    fields: Sequence[str] | None = None,
) -> argparse.ArgumentParser:
    """An ``add_help=False`` parent parser generated from RunConfig.

    Args:
        fields: RunConfig field names to expose; ``None`` exposes every
            field that carries CLI metadata. Fields without metadata
            (``include_world_only``) are never exposed.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("run configuration")
    wanted = None if fields is None else set(fields)
    for field in dataclasses.fields(RunConfig):
        cli = dict(field.metadata.get("cli", ()))
        flags = cli.pop("flags", ())
        if not flags or (wanted is not None and field.name not in wanted):
            continue
        group.add_argument(
            *flags, dest=field.name, default=field.default, **cli
        )
    return parent


def config_from_args(args: argparse.Namespace) -> RunConfig:
    """The RunConfig a parsed namespace describes.

    Fields a subcommand did not expose keep their dataclass defaults, so
    one function serves every subcommand.
    """
    kwargs = {
        field.name: getattr(args, field.name)
        for field in dataclasses.fields(RunConfig)
        if hasattr(args, field.name)
    }
    return RunConfig(**kwargs)
