"""The artifact engine: two-tier cached resolution of the stage graph.

``Engine(config).artifact(name)`` returns the named stage's output for
that :class:`~repro.engine.config.RunConfig`, resolving dependencies
recursively and consulting two tiers before building:

1. an in-process LRU of recently used artifacts (shared by every engine
   instance, keyed by fingerprint — two configs that agree on the fields
   a stage reads share its artifact), then
2. the content-addressed disk store, when the config enables it.

Every resolution is traced (``engine.stage`` spans) and counted in the
metrics registry: ``engine_stage_hit_total{stage,tier}``,
``engine_stage_miss_total{stage}``, ``engine_stage_build_total{stage}``
and the ``engine_stage_load_ms``/``engine_stage_build_ms`` histograms —
which is how a warm restart can *prove* it built nothing.

Concurrent callers asking for the same artifact build it exactly once
(per-fingerprint locks that free themselves when the last waiter
leaves — the engine does not reintroduce the old lock-table leak).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any

from ..obs import get_logger, get_registry, span
from .config import RunConfig
from .fingerprint import stage_fingerprint
from .locks import KeyedLocks
from .stages import STAGE_ORDER, get_stage
from .store import MISSING, ArtifactStore

__all__ = [
    "MAX_MEMORY_ARTIFACTS",
    "Engine",
    "clear_memory_tier",
    "engine_cache_summary",
    "memory_tier_len",
]

_LOG = get_logger("repro.engine")

#: Artifacts retained in the shared in-memory tier. Four stages per
#: workspace — this holds the stage sets of a few recent configs.
MAX_MEMORY_ARTIFACTS = 16

_MemoryKey = tuple[str, str]  # (stage name, fingerprint)

_MEMORY: OrderedDict[_MemoryKey, Any] = OrderedDict()
_MEMORY_LOCK = threading.Lock()
_BUILD_LOCKS = KeyedLocks()


def _memory_get(key: _MemoryKey) -> Any:
    with _MEMORY_LOCK:
        if key not in _MEMORY:
            return MISSING
        _MEMORY.move_to_end(key)
        return _MEMORY[key]


def _memory_put(key: _MemoryKey, value: Any) -> None:
    with _MEMORY_LOCK:
        _MEMORY[key] = value
        _MEMORY.move_to_end(key)
        while len(_MEMORY) > MAX_MEMORY_ARTIFACTS:
            _MEMORY.popitem(last=False)


def clear_memory_tier() -> None:
    """Drop every in-memory artifact (tests use this to force disk/build)."""
    with _MEMORY_LOCK:
        _MEMORY.clear()
    _BUILD_LOCKS.clear()


def memory_tier_len() -> int:
    with _MEMORY_LOCK:
        return len(_MEMORY)


class Engine:
    """Resolves stage artifacts for one :class:`RunConfig`."""

    def __init__(
        self, config: RunConfig, store: ArtifactStore | None = None
    ) -> None:
        """
        Args:
            config: the run configuration artifacts derive from.
            store: explicit disk tier; defaults to the config's cache
                dir when the config enables disk caching, else no disk
                tier at all.
        """
        self._config = config
        if store is not None:
            self._store: ArtifactStore | None = store
        elif config.disk_cache_enabled:
            self._store = ArtifactStore(config.resolved_cache_dir)
        else:
            self._store = None
        self._fingerprints: dict[str, str] = {}
        self._registry = get_registry()

    @property
    def config(self) -> RunConfig:
        return self._config

    @property
    def store(self) -> ArtifactStore | None:
        return self._store

    # ------------------------------------------------------------------
    # fingerprints
    # ------------------------------------------------------------------
    def fingerprint(self, name: str) -> str:
        """The content address of one stage output under this config."""
        cached = self._fingerprints.get(name)
        if cached is not None:
            return cached
        stage = get_stage(name)
        upstream = {dep: self.fingerprint(dep) for dep in stage.deps}
        fingerprint = stage_fingerprint(stage, self._config, upstream)
        self._fingerprints[name] = fingerprint
        return fingerprint

    def fingerprints(self) -> dict[str, str]:
        """Stage name -> fingerprint for the whole graph, build order."""
        return {name: self.fingerprint(name) for name in STAGE_ORDER}

    def cache_states(self) -> list[dict[str, Any]]:
        """Per-stage readiness: fingerprint plus the warmest tier holding it.

        Non-resolving by design — probes the memory tier and the disk
        store without loading or building anything, so ``/readyz`` can
        call it on every poll. ``tier`` is ``memory``, ``disk`` or
        ``cold``; ``warm`` collapses that to a boolean.
        """
        states: list[dict[str, Any]] = []
        for name in STAGE_ORDER:
            fingerprint = self.fingerprint(name)
            if _memory_get((name, fingerprint)) is not MISSING:
                tier = "memory"
            elif self._store is not None and self._store.contains(
                name, fingerprint
            ):
                tier = "disk"
            else:
                tier = "cold"
            states.append(
                {
                    "stage": name,
                    "fingerprint": fingerprint,
                    "tier": tier,
                    "warm": tier != "cold",
                }
            )
        return states

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def artifact(self, name: str) -> Any:
        """The stage's output: memory tier, then disk tier, then build."""
        stage = get_stage(name)
        fingerprint = self.fingerprint(name)
        key = (name, fingerprint)
        value = _memory_get(key)
        if value is not MISSING:
            self._count_hit(name, "memory")
            return value
        with _BUILD_LOCKS.holding(key):
            value = _memory_get(key)  # resolved while we waited?
            if value is not MISSING:
                self._count_hit(name, "memory")
                return value
            return self._load_or_build(stage, fingerprint, key)

    def _load_or_build(self, stage, fingerprint: str, key: _MemoryKey) -> Any:
        with span(
            "engine.stage", stage=stage.name, fingerprint=fingerprint[:12]
        ) as trace:
            if self._store is not None:
                started = time.perf_counter()
                value = self._store.get(stage.name, fingerprint)
                if value is not MISSING:
                    elapsed = time.perf_counter() - started
                    self._count_hit(stage.name, "disk")
                    self._registry.histogram(
                        "engine_stage_load_ms", stage=stage.name
                    ).observe(elapsed * 1000)
                    trace.set("outcome", "disk")
                    _LOG.info(
                        "engine.stage.loaded",
                        stage=stage.name,
                        fingerprint=fingerprint[:12],
                        seconds=round(elapsed, 3),
                    )
                    _memory_put(key, value)
                    return value
            self._registry.counter(
                "engine_stage_miss_total", stage=stage.name
            ).incr()
            inputs = {dep: self.artifact(dep) for dep in stage.deps}
            started = time.perf_counter()
            value = stage.build(self._config, inputs)
            elapsed = time.perf_counter() - started
            self._registry.counter(
                "engine_stage_build_total", stage=stage.name
            ).incr()
            self._registry.histogram(
                "engine_stage_build_ms", stage=stage.name
            ).observe(elapsed * 1000)
            trace.set("outcome", "built")
            _LOG.info(
                "engine.stage.built",
                stage=stage.name,
                fingerprint=fingerprint[:12],
                seconds=round(elapsed, 3),
            )
            if self._store is not None:
                self._store.put(stage.name, fingerprint, value)
            _memory_put(key, value)
            return value

    def _count_hit(self, stage_name: str, tier: str) -> None:
        self._registry.counter(
            "engine_stage_hit_total", stage=stage_name, tier=tier
        ).incr()


def _sum_counter(name: str, **fixed_labels: str) -> float:
    """Sum one counter across every label combination it has."""
    registry = get_registry()
    total = 0.0
    for series in registry.collect():
        if series.name != name or series.kind != "counter":
            continue
        if any(
            series.labels.get(key) != value
            for key, value in fixed_labels.items()
        ):
            continue
        total += series.metric.value
    return total


def engine_cache_summary() -> str:
    """One line summarising this process's stage-cache activity.

    The CLI prints it after disk-cached runs; CI greps ``builds=0`` on
    the warm run to prove the whole graph loaded from the artifact
    store.
    """
    memory_hits = int(_sum_counter("engine_stage_hit_total", tier="memory"))
    disk_hits = int(_sum_counter("engine_stage_hit_total", tier="disk"))
    builds = int(_sum_counter("engine_stage_build_total"))
    return (
        f"engine cache: hits={memory_hits + disk_hits} "
        f"(memory {memory_hits}, disk {disk_hits}) builds={builds}"
    )
