"""Food-pairing analysis: the paper's primary contribution.

The N_s pairing score, cuisine means, the four randomised null models
(uniform-random, frequency-, category-, frequency+category-preserving),
Z-score significance, and leave-one-out ingredient contributions.
"""

from .contribution import (
    IngredientContribution,
    chi_values,
    contributions_from_chi,
    ingredient_contributions,
    top_contributors,
    verify_contribution,
)
from .models import (
    DEFAULT_CHUNK,
    NullModel,
    naive_sample_model_scores,
    sample_model_moments,
    sample_model_recipes,
    sample_model_scores,
)
from .moments import StreamingMoments
from .score import (
    BATCH_BLOCK_ELEMENTS,
    batch_scores,
    cuisine_mean_score,
    food_pairing_score,
    recipe_score_from_matrix,
    scores_for_recipes,
    scores_from_view,
    scores_from_view_reference,
)
from .views import CuisineView, build_cuisine_view
from .zscore import (
    PAPER_SAMPLE_COUNT,
    CuisinePairingResult,
    ModelComparison,
    analyze_cuisine,
    compare_to_model,
    comparison_from_moments,
)

__all__ = [
    "IngredientContribution",
    "chi_values",
    "contributions_from_chi",
    "ingredient_contributions",
    "top_contributors",
    "verify_contribution",
    "DEFAULT_CHUNK",
    "NullModel",
    "naive_sample_model_scores",
    "sample_model_moments",
    "sample_model_recipes",
    "sample_model_scores",
    "StreamingMoments",
    "BATCH_BLOCK_ELEMENTS",
    "batch_scores",
    "cuisine_mean_score",
    "food_pairing_score",
    "recipe_score_from_matrix",
    "scores_for_recipes",
    "scores_from_view",
    "scores_from_view_reference",
    "CuisineView",
    "build_cuisine_view",
    "PAPER_SAMPLE_COUNT",
    "CuisinePairingResult",
    "ModelComparison",
    "analyze_cuisine",
    "compare_to_model",
    "comparison_from_moments",
]
