"""The food-pairing score N_s (Section IV.B of the paper).

For a recipe R with n ingredients and flavor profiles F_i::

    N_s(R) = (2 / (n * (n - 1))) * sum_{i < j} |F_i ∩ F_j|

i.e. the mean number of flavor molecules shared by an ingredient pair of
the recipe. A cuisine's food pairing is the average of N_s over its
recipes. Two implementations are provided:

* :func:`food_pairing_score` — set-based, straight off the ingredient
  objects; the readable reference implementation.
* :func:`scores_from_view` / :func:`batch_scores` — matrix-based, used by
  the analyses and null models (``bench_ablation_overlap_backend``
  quantifies the difference).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..datamodel import Ingredient, ValidationError
from .views import CuisineView


def food_pairing_score(ingredients: Sequence[Ingredient]) -> float:
    """N_s of a recipe given its ingredient objects.

    Ingredients without flavor profiles are excluded first; the score is
    over the remaining pairable ingredients.

    Raises:
        ValidationError: when fewer than two pairable ingredients remain.
    """
    pairable = [
        ingredient for ingredient in ingredients if ingredient.has_flavor_profile
    ]
    n = len(pairable)
    if n < 2:
        raise ValidationError(
            "food pairing needs at least two ingredients with flavor profiles"
        )
    shared = 0
    for i in range(n):
        profile_i = pairable[i].flavor_profile
        for j in range(i + 1, n):
            shared += len(profile_i & pairable[j].flavor_profile)
    return 2.0 * shared / (n * (n - 1))


def recipe_score_from_matrix(
    overlap: np.ndarray, indices: np.ndarray
) -> float:
    """N_s of one recipe given a cuisine overlap matrix and local indices."""
    n = len(indices)
    if n < 2:
        raise ValidationError("recipe has fewer than two pairable ingredients")
    block = overlap[np.ix_(indices, indices)]
    return float(block.sum()) / (n * (n - 1))


def scores_for_recipes(
    overlap: np.ndarray, recipes: Sequence[np.ndarray]
) -> np.ndarray:
    """N_s for a ragged batch of recipes, grouped by size.

    Recipes of equal size are stacked and scored in one
    :func:`batch_scores` call instead of one ``np.ix_`` gather each; the
    per-recipe path (:func:`recipe_score_from_matrix` /
    :func:`scores_from_view_reference`) is kept as the reference
    implementation and cross-checked in tests.
    """
    sizes = np.asarray([len(recipe) for recipe in recipes], dtype=np.int64)
    scores = np.empty(len(recipes), dtype=np.float64)
    for size in np.unique(sizes):
        if size < 2:
            raise ValidationError(
                "recipe has fewer than two pairable ingredients"
            )
        rows = np.flatnonzero(sizes == size)
        stacked = np.stack([recipes[int(row)] for row in rows])
        scores[rows] = batch_scores(overlap, stacked)
    return scores


def scores_from_view(view: CuisineView) -> np.ndarray:
    """N_s for every recipe of a cuisine view (vectorised by size group)."""
    return scores_for_recipes(view.overlap, view.recipes)


def scores_from_view_reference(view: CuisineView) -> np.ndarray:
    """Per-recipe reference implementation of :func:`scores_from_view`."""
    return np.asarray(
        [
            recipe_score_from_matrix(view.overlap, recipe)
            for recipe in view.recipes
        ],
        dtype=np.float64,
    )


def cuisine_mean_score(view: CuisineView) -> float:
    """The cuisine's average flavor sharing <N_s> (Section IV.B)."""
    return float(scores_from_view(view).mean())


#: Float budget for one gathered ``(rows, n, n)`` overlap block inside
#: :func:`batch_scores` (~32 MB); bounds peak memory for large batches.
BATCH_BLOCK_ELEMENTS = 1 << 22


def batch_scores(
    overlap: np.ndarray, batch: np.ndarray
) -> np.ndarray:
    """N_s for a batch of same-size recipes.

    The ``(k, n, n)`` gather is accumulated in fixed-size row chunks —
    never more than :data:`BATCH_BLOCK_ELEMENTS` floats at once — so an
    8192-recipe sampling chunk of 60-ingredient recipes peaks at ~32 MB
    instead of ~240 MB. Chunking only splits the batch axis, so the
    per-recipe sums (and therefore the scores) are unchanged.

    Args:
        overlap: cuisine overlap matrix.
        batch: ``(k, n)`` array of local indices, one recipe per row.

    Returns:
        ``(k,)`` array of scores.
    """
    k, n = batch.shape
    if n < 2:
        raise ValidationError("batch recipes need at least two ingredients")
    sums = np.empty(k, dtype=np.float64)
    rows_per_chunk = max(1, BATCH_BLOCK_ELEMENTS // (n * n))
    for start in range(0, k, rows_per_chunk):
        stop = min(start + rows_per_chunk, k)
        chunk = batch[start:stop]
        blocks = overlap[chunk[:, :, None], chunk[:, None, :]]
        sums[start:stop] = blocks.sum(axis=(1, 2))
    return sums / (n * (n - 1))
