"""The food-pairing score N_s (Section IV.B of the paper).

For a recipe R with n ingredients and flavor profiles F_i::

    N_s(R) = (2 / (n * (n - 1))) * sum_{i < j} |F_i ∩ F_j|

i.e. the mean number of flavor molecules shared by an ingredient pair of
the recipe. A cuisine's food pairing is the average of N_s over its
recipes. Two implementations are provided:

* :func:`food_pairing_score` — set-based, straight off the ingredient
  objects; the readable reference implementation.
* :func:`scores_from_view` / :func:`batch_scores` — matrix-based, used by
  the analyses and null models (``bench_ablation_overlap_backend``
  quantifies the difference).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..datamodel import Ingredient, ValidationError
from .views import CuisineView


def food_pairing_score(ingredients: Sequence[Ingredient]) -> float:
    """N_s of a recipe given its ingredient objects.

    Ingredients without flavor profiles are excluded first; the score is
    over the remaining pairable ingredients.

    Raises:
        ValidationError: when fewer than two pairable ingredients remain.
    """
    pairable = [
        ingredient for ingredient in ingredients if ingredient.has_flavor_profile
    ]
    n = len(pairable)
    if n < 2:
        raise ValidationError(
            "food pairing needs at least two ingredients with flavor profiles"
        )
    shared = 0
    for i in range(n):
        profile_i = pairable[i].flavor_profile
        for j in range(i + 1, n):
            shared += len(profile_i & pairable[j].flavor_profile)
    return 2.0 * shared / (n * (n - 1))


def recipe_score_from_matrix(
    overlap: np.ndarray, indices: np.ndarray
) -> float:
    """N_s of one recipe given a cuisine overlap matrix and local indices."""
    n = len(indices)
    if n < 2:
        raise ValidationError("recipe has fewer than two pairable ingredients")
    block = overlap[np.ix_(indices, indices)]
    return float(block.sum()) / (n * (n - 1))


def scores_from_view(view: CuisineView) -> np.ndarray:
    """N_s for every recipe of a cuisine view."""
    return np.asarray(
        [
            recipe_score_from_matrix(view.overlap, recipe)
            for recipe in view.recipes
        ],
        dtype=np.float64,
    )


def cuisine_mean_score(view: CuisineView) -> float:
    """The cuisine's average flavor sharing <N_s> (Section IV.B)."""
    return float(scores_from_view(view).mean())


def batch_scores(
    overlap: np.ndarray, batch: np.ndarray
) -> np.ndarray:
    """N_s for a batch of same-size recipes.

    Args:
        overlap: cuisine overlap matrix.
        batch: ``(k, n)`` array of local indices, one recipe per row.

    Returns:
        ``(k,)`` array of scores.
    """
    k, n = batch.shape
    if n < 2:
        raise ValidationError("batch recipes need at least two ingredients")
    blocks = overlap[batch[:, :, None], batch[:, None, :]]
    return blocks.sum(axis=(1, 2)) / (n * (n - 1))
