"""Numeric cuisine views: recipes as index arrays over a pantry.

The pairing analyses are all built on the same numeric representation of a
cuisine, prepared once by :class:`CuisineView`:

* the cuisine's *pairable* ingredients (non-empty flavor profiles; the
  paper's four profile-free additives are excluded from scoring),
* a dense pairwise overlap matrix |F_i ∩ F_j| over those ingredients,
* each recipe as an ``int`` array of local indices,
* ingredient usage frequencies and category labels, which the null models
  preserve.
"""

from __future__ import annotations

import dataclasses
import functools
from collections import Counter

import numpy as np

from ..datamodel import Cuisine, Ingredient, ValidationError
from ..flavordb import IngredientCatalog


@dataclasses.dataclass(frozen=True)
class CuisineView:
    """Numeric representation of one cuisine, ready for analysis.

    Attributes:
        region_code: the cuisine's region.
        ingredients: pairable ingredients used by the cuisine (local index
            order).
        overlap: dense symmetric |F_i ∩ F_j| matrix, diagonal zero.
        recipes: local-index arrays, one per recipe with >= 2 pairable
            ingredients (others cannot contribute a pair).
        frequencies: recipe-usage count per local ingredient.
        categories: category name per local ingredient.

    Derived structures the null models need on every sampling call
    (recipe sizes, category pools, per-template category specs) are
    computed once per view and cached.

    A *kernel* view — one reconstructed in a worker process from shared
    memory (see :mod:`repro.parallel.sharedmem`) — carries an empty
    ``ingredients`` tuple because ingredient objects never cross the
    process boundary; ``ingredient_count`` therefore derives from
    ``categories`` (one label per local ingredient), which both full and
    kernel views populate.
    """

    region_code: str
    ingredients: tuple[Ingredient, ...]
    overlap: np.ndarray
    recipes: tuple[np.ndarray, ...]
    frequencies: np.ndarray
    categories: tuple[str, ...]

    @property
    def ingredient_count(self) -> int:
        return len(self.categories)

    @property
    def recipe_count(self) -> int:
        return len(self.recipes)

    def recipe_sizes(self) -> np.ndarray:
        return self._recipe_sizes

    @functools.cached_property
    def _recipe_sizes(self) -> np.ndarray:
        return np.asarray([len(recipe) for recipe in self.recipes], np.int64)

    @functools.cached_property
    def category_order(self) -> tuple[str, ...]:
        """The cuisine's categories, sorted — the canonical pool order."""
        return tuple(sorted(set(self.categories)))

    def category_pools(self) -> dict[str, np.ndarray]:
        """Local indices per category (for the category-preserving models)."""
        return self._category_pools

    @functools.cached_property
    def _category_pools(self) -> dict[str, np.ndarray]:
        pools: dict[str, list[int]] = {}
        for index, category in enumerate(self.categories):
            pools.setdefault(category, []).append(index)
        return {
            category: np.asarray(indices, dtype=np.int64)
            for category, indices in pools.items()
        }

    def template_specs(self) -> list[list[tuple[int, int, int]]]:
        """Per recipe: (category id, count, output offset), canonical order.

        Category ids index into :attr:`category_order`. The category-
        preserving samplers group recipes by these specs; computing them
        is O(total ingredients), so the result is cached on the view
        rather than rebuilt per sampling chunk.
        """
        return self._template_specs

    @functools.cached_property
    def _template_specs(self) -> list[list[tuple[int, int, int]]]:
        category_index = {
            name: i for i, name in enumerate(self.category_order)
        }
        specs: list[list[tuple[int, int, int]]] = []
        for recipe in self.recipes:
            counts: dict[int, int] = {}
            for local in recipe:
                cat_id = category_index[self.categories[int(local)]]
                counts[cat_id] = counts.get(cat_id, 0) + 1
            offset = 0
            spec: list[tuple[int, int, int]] = []
            for cat_id in sorted(counts):
                spec.append((cat_id, counts[cat_id], offset))
                offset += counts[cat_id]
            specs.append(spec)
        return specs


def build_cuisine_view(
    cuisine: Cuisine, catalog: IngredientCatalog
) -> CuisineView:
    """Prepare the numeric view of a cuisine.

    Raises:
        ValidationError: if no recipe has two or more pairable ingredients.
    """
    pairable_ids = sorted(
        ingredient_id
        for ingredient_id in cuisine.ingredient_ids
        if catalog.by_id(ingredient_id).has_flavor_profile
    )
    local_index = {
        ingredient_id: index for index, ingredient_id in enumerate(pairable_ids)
    }
    ingredients = tuple(
        catalog.by_id(ingredient_id) for ingredient_id in pairable_ids
    )

    overlap = _overlap_matrix(ingredients)

    recipes: list[np.ndarray] = []
    usage = Counter[int]()
    for recipe in cuisine:
        local = sorted(
            local_index[ingredient_id]
            for ingredient_id in recipe.ingredient_ids
            if ingredient_id in local_index
        )
        usage.update(local)
        if len(local) >= 2:
            recipes.append(np.asarray(local, dtype=np.int64))
    if not recipes:
        raise ValidationError(
            f"cuisine {cuisine.region_code!r} has no pairable recipes"
        )

    frequencies = np.zeros(len(ingredients), dtype=np.float64)
    for index, count in usage.items():
        frequencies[index] = count

    return CuisineView(
        region_code=cuisine.region_code,
        ingredients=ingredients,
        overlap=overlap,
        recipes=tuple(recipes),
        frequencies=frequencies,
        categories=tuple(
            ingredient.category.value for ingredient in ingredients
        ),
    )


def _overlap_matrix(ingredients: tuple[Ingredient, ...]) -> np.ndarray:
    if not ingredients:
        return np.zeros((0, 0), dtype=np.float64)
    max_molecule = max(
        max(ingredient.flavor_profile) for ingredient in ingredients
    )
    membership = np.zeros((len(ingredients), max_molecule + 1), np.float32)
    for row, ingredient in enumerate(ingredients):
        membership[row, list(ingredient.flavor_profile)] = 1.0
    matrix = (membership @ membership.T).astype(np.float64)
    np.fill_diagonal(matrix, 0.0)
    return matrix
