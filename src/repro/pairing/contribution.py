"""Ingredient contribution to a cuisine's food pairing (Section IV.C).

The contribution ``chi_i`` of ingredient ``i`` is the percentage change of
the cuisine's mean pairing score when ``i`` is removed from the cuisine::

    chi_i = 100 * (<N_s>_without_i - <N_s>) / <N_s>

Removing an ingredient shrinks every recipe containing it (recipes left
with fewer than two pairable ingredients drop out of the average). For a
cuisine following uniform pairing, the *most positive-contributing*
ingredients are those whose removal lowers the mean score most
(``chi_i`` strongly negative); Fig 5 reports the top three per cuisine.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .score import recipe_score_from_matrix, scores_from_view
from .views import CuisineView


@dataclasses.dataclass(frozen=True, slots=True)
class IngredientContribution:
    """Contribution of one ingredient to its cuisine's pairing score."""

    ingredient_name: str
    local_index: int
    usage: int
    chi_percent: float  # percentage change of <N_s> upon removal


def chi_values(view: CuisineView) -> np.ndarray:
    """``chi_i`` per local ingredient index — the numeric core.

    Touches only the view's numeric arrays (never ingredient objects), so
    it runs unchanged on a shared-memory kernel view inside a worker
    process; the fig5 sweep fans one call per region across the pool and
    re-attaches names in the parent.

    Complexity is O(total pair updates): per recipe, removing member ``i``
    reuses the recipe's pair-sum, so the full sweep costs about as much as
    scoring the cuisine once per average recipe size.
    """
    base_scores = scores_from_view(view)
    base_mean = float(base_scores.mean())

    # Per recipe: pair sum and size, for O(n) removal updates.
    pair_sums = np.empty(view.recipe_count, dtype=np.float64)
    sizes = view.recipe_sizes()
    for index, recipe in enumerate(view.recipes):
        n = len(recipe)
        pair_sums[index] = base_scores[index] * (n * (n - 1))  # = 2*sum_pairs

    # score_sum / count over all recipes, updated per removal candidate.
    total_score = float(base_scores.sum())
    recipe_total = view.recipe_count

    # For each ingredient, which recipes contain it.
    containing: dict[int, list[int]] = {}
    for recipe_index, recipe in enumerate(view.recipes):
        for local in recipe:
            containing.setdefault(int(local), []).append(recipe_index)

    chi = np.zeros(view.ingredient_count, dtype=np.float64)
    for local in range(view.ingredient_count):
        recipes_with = containing.get(local, [])
        score_sum = total_score
        count = recipe_total
        for recipe_index in recipes_with:
            recipe = view.recipes[recipe_index]
            n = len(recipe)
            old_score = base_scores[recipe_index]
            score_sum -= old_score
            count -= 1
            if n <= 2:
                continue  # recipe drops below pairability
            others = recipe[recipe != local]
            removed_pairs = 2.0 * float(view.overlap[local, others].sum())
            new_sum = pair_sums[recipe_index] - removed_pairs
            new_score = new_sum / ((n - 1) * (n - 2))
            score_sum += new_score
            count += 1
        if count == 0 or base_mean == 0.0:
            chi[local] = 0.0
        else:
            chi[local] = 100.0 * (score_sum / count - base_mean) / base_mean
    return chi


def contributions_from_chi(
    view: CuisineView, chi: np.ndarray
) -> list[IngredientContribution]:
    """Attach names/usage to a chi vector, most used first.

    ``view`` must be a full view (with ingredient objects); ``chi`` may
    come from :func:`chi_values` run anywhere — including a worker that
    only ever saw the kernel view.
    """
    results = [
        IngredientContribution(
            ingredient_name=view.ingredients[local].name,
            local_index=local,
            usage=int(view.frequencies[local]),
            chi_percent=float(chi[local]),
        )
        for local in range(view.ingredient_count)
    ]
    results.sort(key=lambda item: item.usage, reverse=True)
    return results


def ingredient_contributions(view: CuisineView) -> list[IngredientContribution]:
    """``chi_i`` for every ingredient of the cuisine, most used first."""
    return contributions_from_chi(view, chi_values(view))


def top_contributors(
    view: CuisineView,
    count: int = 3,
    positive_pairing: bool = True,
    contributions: list[IngredientContribution] | None = None,
) -> list[IngredientContribution]:
    """The ``count`` ingredients contributing most to the pairing pattern.

    For a uniform (positive) cuisine, the top contributors are those whose
    removal *decreases* the mean score the most (most negative ``chi``);
    for a contrasting cuisine, those whose removal *increases* it the most.
    Pass precomputed ``contributions`` (e.g. from the parallel sweep) to
    skip the leave-one-out recomputation.
    """
    if contributions is None:
        contributions = ingredient_contributions(view)
    ordered = sorted(
        contributions,
        key=lambda item: item.chi_percent,
        reverse=not positive_pairing,
    )
    return ordered[:count]


def verify_contribution(
    view: CuisineView, local_index: int
) -> float:
    """Slow reference computation of ``chi`` for one ingredient (tests)."""
    base_scores = scores_from_view(view)
    base_mean = float(base_scores.mean())
    new_scores = []
    for recipe in view.recipes:
        reduced = recipe[recipe != local_index]
        if len(reduced) < 2:
            continue
        new_scores.append(recipe_score_from_matrix(view.overlap, reduced))
    if not new_scores or base_mean == 0.0:
        return 0.0
    return 100.0 * (float(np.mean(new_scores)) - base_mean) / base_mean
