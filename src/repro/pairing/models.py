"""The four randomised-cuisine null models (Section IV.B).

Every model preserves the cuisine's exact ingredient set and its recipe
size distribution (each random recipe copies the size — and for the
category models, the category composition — of a uniformly chosen real
"template" recipe):

* ``RANDOM`` — ingredients drawn uniformly from the cuisine's set,
* ``FREQUENCY`` — drawn with probability proportional to their frequency
  of use in the real cuisine,
* ``CATEGORY`` — the template's category composition is preserved;
  ingredients drawn uniformly within each category,
* ``FREQUENCY_CATEGORY`` — category composition preserved and ingredients
  drawn frequency-weighted within each category.

Sampling is vectorised with the Gumbel top-k trick: drawing ``m`` items
without replacement with weights ``w`` is equivalent to taking the top-m
of ``log w + Gumbel noise``, which turns per-recipe rejection loops into
dense numpy operations. ``bench_ablation_sampler`` measures the win over
the naive loop.
"""

from __future__ import annotations

import enum
import time

import numpy as np

from ..datamodel import ConfigurationError
from ..obs import get_logger, span
from .moments import StreamingMoments
from .score import scores_for_recipes
from .views import CuisineView

#: Samples per chunk; bounds peak memory at ~chunk * ingredient_count floats.
DEFAULT_CHUNK = 8192

#: Seconds between progress heartbeat log records on long sampling loops.
HEARTBEAT_SECONDS = 5.0

_LOG = get_logger("repro.pairing")


class NullModel(enum.Enum):
    """The paper's four randomised-cuisine models."""

    RANDOM = "random"
    FREQUENCY = "frequency"
    CATEGORY = "category"
    FREQUENCY_CATEGORY = "frequency_category"

    @property
    def preserves_frequency(self) -> bool:
        return self in (NullModel.FREQUENCY, NullModel.FREQUENCY_CATEGORY)

    @property
    def preserves_category(self) -> bool:
        return self in (NullModel.CATEGORY, NullModel.FREQUENCY_CATEGORY)


def sample_model_scores(
    view: CuisineView,
    model: NullModel,
    n_samples: int,
    rng: np.random.Generator,
    chunk: int = DEFAULT_CHUNK,
) -> np.ndarray:
    """N_s scores of ``n_samples`` random recipes under ``model``.

    Args:
        view: the cuisine being randomised.
        model: which null model to draw from.
        n_samples: number of random recipes (the paper uses 100,000).
        rng: random generator (callers own seeding).
        chunk: batch size for the vectorised sampler.

    Returns:
        ``(n_samples,)`` array of food-pairing scores.
    """
    if n_samples <= 0:
        raise ConfigurationError("n_samples must be positive")
    with span(
        "pairing.sample_model",
        model=model.value,
        region=view.region_code,
        n_samples=n_samples,
    ) as trace:
        started = time.perf_counter()
        heartbeat = _Heartbeat(view, model, n_samples, started)
        scores = np.empty(n_samples, dtype=np.float64)
        position = 0
        while position < n_samples:
            take = min(chunk, n_samples - position)
            batch = sample_model_recipes(view, model, take, rng)
            scores[position : position + take] = _score_ragged(view, batch)
            position += take
            heartbeat.tick(position)
        elapsed = time.perf_counter() - started
        trace.incr("samples", n_samples)
        if elapsed > 0:
            trace.set("samples_per_sec", round(n_samples / elapsed))
        return scores


def sample_model_moments(
    view: CuisineView,
    model: NullModel,
    n_samples: int,
    rng: np.random.Generator,
    chunk: int = DEFAULT_CHUNK,
) -> StreamingMoments:
    """Streaming moments of ``n_samples`` random-recipe scores.

    Identical sampling to :func:`sample_model_scores`, but each chunk of
    scores is folded into a :class:`StreamingMoments` and discarded, so
    peak memory is one chunk of floats rather than the full score
    vector. The parallel engine's workers run this per shard.
    """
    if n_samples <= 0:
        raise ConfigurationError("n_samples must be positive")
    with span(
        "pairing.sample_moments",
        model=model.value,
        region=view.region_code,
        n_samples=n_samples,
    ) as trace:
        started = time.perf_counter()
        heartbeat = _Heartbeat(view, model, n_samples, started)
        moments = StreamingMoments()
        position = 0
        while position < n_samples:
            take = min(chunk, n_samples - position)
            batch = sample_model_recipes(view, model, take, rng)
            moments.update(_score_ragged(view, batch))
            position += take
            heartbeat.tick(position)
        elapsed = time.perf_counter() - started
        trace.incr("samples", n_samples)
        if elapsed > 0:
            trace.set("samples_per_sec", round(n_samples / elapsed))
        return moments


class _Heartbeat:
    """Progress log records every few seconds on long sampling loops."""

    __slots__ = ("_view", "_model", "_total", "_started", "_last")

    def __init__(
        self,
        view: CuisineView,
        model: NullModel,
        total: int,
        started: float,
    ) -> None:
        self._view = view
        self._model = model
        self._total = total
        self._started = started
        self._last = started

    def tick(self, done: int) -> None:
        now = time.perf_counter()
        if now - self._last >= HEARTBEAT_SECONDS and done < self._total:
            self._last = now
            _LOG.info(
                "sampling.progress",
                model=self._model.value,
                region=self._view.region_code,
                done=done,
                total=self._total,
                samples_per_sec=round(done / (now - self._started)),
            )


def sample_model_recipes(
    view: CuisineView,
    model: NullModel,
    n_samples: int,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Draw ``n_samples`` random recipes (local-index arrays)."""
    templates = rng.integers(0, view.recipe_count, size=n_samples)
    if model.preserves_category:
        return _sample_category_preserving(view, model, templates, rng)
    return _sample_size_preserving(view, model, templates, rng)


# ---------------------------------------------------------------------------
# size-preserving models (RANDOM, FREQUENCY)
# ---------------------------------------------------------------------------


def _sample_size_preserving(
    view: CuisineView,
    model: NullModel,
    templates: np.ndarray,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    sizes = view.recipe_sizes()[templates]
    weights = (
        view.frequencies if model.preserves_frequency else None
    )
    log_weights = _log_weights(weights, view.ingredient_count)
    out: list[np.ndarray | None] = [None] * len(templates)
    for size in np.unique(sizes):
        rows = np.flatnonzero(sizes == size)
        picks = _gumbel_top_m(
            log_weights[None, :], len(rows), int(size), rng
        )
        for row, pick in zip(rows, picks):
            out[int(row)] = pick
    return [recipe for recipe in out if recipe is not None]


# ---------------------------------------------------------------------------
# category-preserving models (CATEGORY, FREQUENCY_CATEGORY)
# ---------------------------------------------------------------------------


def _sample_category_preserving(
    view: CuisineView,
    model: NullModel,
    templates: np.ndarray,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    # Category pools and per-template specs (category counts + in-recipe
    # offsets, canonical order) are cached on the view: computed once per
    # cuisine, not once per sampling chunk.
    pools = view.category_pools()
    category_order = view.category_order
    template_specs = view.template_specs()

    sizes = view.recipe_sizes()[templates]
    max_size = int(sizes.max())
    out = np.full((len(templates), max_size), -1, dtype=np.int64)

    # Group (sample, category, count, offset) tuples by (category, count):
    # each group is one vectorised Gumbel draw.
    groups: dict[tuple[int, int], tuple[list[int], list[int]]] = {}
    for sample, template in enumerate(templates):
        for cat_id, count, offset in template_specs[int(template)]:
            rows, offsets = groups.setdefault((cat_id, count), ([], []))
            rows.append(sample)
            offsets.append(offset)

    weights = view.frequencies if model.preserves_frequency else None
    for (cat_id, count), (rows, offsets) in groups.items():
        pool = pools[category_order[cat_id]]
        pool_weights = None if weights is None else weights[pool]
        log_weights = _log_weights(pool_weights, len(pool))
        picks = _gumbel_top_m(log_weights[None, :], len(rows), count, rng)
        rows_arr = np.asarray(rows)[:, None]
        cols = np.asarray(offsets)[:, None] + np.arange(count)[None, :]
        out[rows_arr, cols] = pool[picks]

    return [out[sample, : sizes[sample]] for sample in range(len(templates))]


# ---------------------------------------------------------------------------
# sampling primitives
# ---------------------------------------------------------------------------


def _log_weights(weights: np.ndarray | None, count: int) -> np.ndarray:
    if weights is None:
        return np.zeros(count, dtype=np.float64)
    if len(weights) != count or np.any(weights <= 0):
        raise ConfigurationError("weights must be positive and aligned")
    return np.log(weights)


def _gumbel_top_m(
    log_weights: np.ndarray, k: int, m: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``m`` items without replacement, ``k`` times, weights shared.

    Args:
        log_weights: ``(1, P)`` log-weight row.
        k: number of independent draws (rows).
        m: items per draw.

    Returns:
        ``(k, m)`` integer array of item indices.
    """
    pool_size = log_weights.shape[1]
    if m > pool_size:
        raise ConfigurationError(
            f"cannot draw {m} distinct items from a pool of {pool_size}"
        )
    noise = rng.gumbel(size=(k, pool_size))
    keys = log_weights + noise
    if m == pool_size:
        return np.tile(np.arange(pool_size), (k, 1))
    return np.argpartition(keys, -m, axis=1)[:, -m:]


def _score_ragged(
    view: CuisineView, recipes: list[np.ndarray]
) -> np.ndarray:
    """Score a ragged batch by grouping equal-size recipes."""
    return scores_for_recipes(view.overlap, recipes)


def naive_sample_model_scores(
    view: CuisineView,
    model: NullModel,
    n_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Reference per-recipe-loop sampler (ablation baseline).

    Produces draws from the same distributions as
    :func:`sample_model_scores` via ``rng.choice`` per recipe; kept for the
    ``bench_ablation_sampler`` benchmark and cross-validation tests.
    """
    sizes = view.recipe_sizes()
    pools = view.category_pools()
    scores = np.empty(n_samples, dtype=np.float64)
    frequencies = view.frequencies
    for sample in range(n_samples):
        template = int(rng.integers(0, view.recipe_count))
        if model.preserves_category:
            picks: list[int] = []
            recipe = view.recipes[template]
            counts: dict[str, int] = {}
            for local in recipe:
                category = view.categories[int(local)]
                counts[category] = counts.get(category, 0) + 1
            for category in sorted(counts):
                pool = pools[category]
                if model.preserves_frequency:
                    weights = frequencies[pool]
                    weights = weights / weights.sum()
                else:
                    weights = None
                chosen = rng.choice(
                    pool, size=counts[category], replace=False, p=weights
                )
                picks.extend(int(c) for c in chosen)
            indices = np.asarray(picks)
        else:
            size = int(sizes[template])
            if model.preserves_frequency:
                weights = frequencies / frequencies.sum()
            else:
                weights = None
            indices = rng.choice(
                view.ingredient_count, size=size, replace=False, p=weights
            )
        n = len(indices)
        block = view.overlap[np.ix_(indices, indices)]
        scores[sample] = block.sum() / (n * (n - 1))
    return scores
