"""Z-score analysis of cuisine food pairing against the null models.

Implements the paper's statistic literally: with ``<N_s>`` the cuisine
mean pairing score, ``<N_s>_rand`` and ``sigma_rand`` the mean and standard
deviation of the pairing score over ``N`` random recipes (100,000 in the
paper)::

    Z = (<N_s> - <N_s>_rand) / (sigma_rand / sqrt(N))

Positive Z = uniform food pairing (similar-flavor blending), negative Z =
contrasting food pairing. The effect size in plain sigma units
(``(mean - rand_mean) / sigma``) is reported alongside, since Z scales
with ``sqrt(N)`` by construction.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..datamodel import Cuisine
from ..flavordb import IngredientCatalog, stable_seed
from ..obs import span
from .models import NullModel, sample_model_scores
from .score import cuisine_mean_score
from .views import CuisineView, build_cuisine_view

#: Random recipes per model, as in the paper.
PAPER_SAMPLE_COUNT = 100_000


@dataclasses.dataclass(frozen=True, slots=True)
class ModelComparison:
    """Comparison of a cuisine against one null model."""

    model: NullModel
    cuisine_mean: float
    random_mean: float
    random_std: float
    n_samples: int
    z_score: float
    effect_size: float  # (cuisine_mean - random_mean) / random_std

    @property
    def direction(self) -> str:
        """``"uniform"``, ``"contrasting"`` or ``"neutral"``."""
        if self.z_score > 0:
            return "uniform"
        if self.z_score < 0:
            return "contrasting"
        return "neutral"


@dataclasses.dataclass(frozen=True)
class CuisinePairingResult:
    """Full pairing analysis of one cuisine (all four models)."""

    region_code: str
    cuisine_mean: float
    recipe_count: int
    ingredient_count: int
    comparisons: dict[NullModel, ModelComparison]

    def z(self, model: NullModel = NullModel.RANDOM) -> float:
        return self.comparisons[model].z_score

    @property
    def direction(self) -> str:
        """Pairing character relative to the uniform-random model."""
        return self.comparisons[NullModel.RANDOM].direction


def compare_to_model(
    view: CuisineView,
    model: NullModel,
    n_samples: int = PAPER_SAMPLE_COUNT,
    rng: np.random.Generator | None = None,
) -> ModelComparison:
    """Compare one cuisine view against one null model."""
    if rng is None:
        rng = np.random.Generator(
            np.random.PCG64(
                stable_seed("null-model", view.region_code, model.value)
            )
        )
    with span(
        "pairing.zscore", region=view.region_code, model=model.value
    ):
        cuisine_mean = cuisine_mean_score(view)
        random_scores = sample_model_scores(view, model, n_samples, rng)
        random_mean = float(random_scores.mean())
        random_std = float(random_scores.std(ddof=1))
    if random_std == 0.0:
        z_score = 0.0
        effect = 0.0
    else:
        z_score = (cuisine_mean - random_mean) / (
            random_std / math.sqrt(n_samples)
        )
        effect = (cuisine_mean - random_mean) / random_std
    return ModelComparison(
        model=model,
        cuisine_mean=cuisine_mean,
        random_mean=random_mean,
        random_std=random_std,
        n_samples=n_samples,
        z_score=z_score,
        effect_size=effect,
    )


def analyze_cuisine(
    cuisine: Cuisine,
    catalog: IngredientCatalog,
    models: tuple[NullModel, ...] = tuple(NullModel),
    n_samples: int = PAPER_SAMPLE_COUNT,
    seed: int | None = None,
) -> CuisinePairingResult:
    """Run the full food-pairing analysis for one cuisine.

    Args:
        cuisine: the cuisine's resolved recipes.
        catalog: the ingredient catalog (flavor profiles).
        models: which null models to evaluate (all four by default).
        n_samples: random recipes per model.
        seed: extra seed mixed into the per-model generators; ``None``
            uses the deterministic default.
    """
    with span(
        "pairing.analyze_cuisine", region=cuisine.region_code
    ) as trace:
        view = build_cuisine_view(cuisine, catalog)
        comparisons: dict[NullModel, ModelComparison] = {}
        for model in models:
            rng = np.random.Generator(
                np.random.PCG64(
                    stable_seed(
                        "null-model",
                        view.region_code,
                        model.value,
                        str(seed) if seed is not None else "default",
                    )
                )
            )
            comparisons[model] = compare_to_model(view, model, n_samples, rng)
        trace.incr("models", len(comparisons))
    any_comparison = next(iter(comparisons.values()))
    return CuisinePairingResult(
        region_code=cuisine.region_code,
        cuisine_mean=any_comparison.cuisine_mean,
        recipe_count=len(cuisine),
        ingredient_count=len(cuisine.ingredient_ids),
        comparisons=comparisons,
    )
