"""Z-score analysis of cuisine food pairing against the null models.

Implements the paper's statistic literally: with ``<N_s>`` the cuisine
mean pairing score, ``<N_s>_rand`` and ``sigma_rand`` the mean and standard
deviation of the pairing score over ``N`` random recipes (100,000 in the
paper)::

    Z = (<N_s> - <N_s>_rand) / (sigma_rand / sqrt(N))

Positive Z = uniform food pairing (similar-flavor blending), negative Z =
contrasting food pairing. The effect size in plain sigma units
(``(mean - rand_mean) / sigma``) is reported alongside, since Z scales
with ``sqrt(N)`` by construction.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from typing import TYPE_CHECKING

from ..datamodel import Cuisine
from ..flavordb import IngredientCatalog, stable_seed
from ..obs import span
from .models import NullModel, sample_model_scores
from .moments import StreamingMoments
from .score import cuisine_mean_score
from .views import CuisineView, build_cuisine_view

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..parallel import ParallelConfig

#: Random recipes per model, as in the paper.
PAPER_SAMPLE_COUNT = 100_000


@dataclasses.dataclass(frozen=True, slots=True)
class ModelComparison:
    """Comparison of a cuisine against one null model."""

    model: NullModel
    cuisine_mean: float
    random_mean: float
    random_std: float
    n_samples: int
    z_score: float
    effect_size: float  # (cuisine_mean - random_mean) / random_std

    @property
    def direction(self) -> str:
        """``"uniform"``, ``"contrasting"`` or ``"neutral"``."""
        if self.z_score > 0:
            return "uniform"
        if self.z_score < 0:
            return "contrasting"
        return "neutral"


@dataclasses.dataclass(frozen=True)
class CuisinePairingResult:
    """Full pairing analysis of one cuisine (all four models)."""

    region_code: str
    cuisine_mean: float
    recipe_count: int
    ingredient_count: int
    comparisons: dict[NullModel, ModelComparison]

    def z(self, model: NullModel = NullModel.RANDOM) -> float:
        return self.comparisons[model].z_score

    @property
    def direction(self) -> str:
        """Pairing character relative to the uniform-random model."""
        return self.comparisons[NullModel.RANDOM].direction


def comparison_from_moments(
    cuisine_mean: float,
    model: NullModel,
    moments: StreamingMoments,
) -> ModelComparison:
    """Build a :class:`ModelComparison` from streaming score moments.

    The paper's Z statistic needs only the random-score mean and standard
    deviation, so the full score vector never has to exist — this is the
    reduction the parallel engine feeds.
    """
    random_mean = moments.mean
    random_std = moments.std(ddof=1)
    n_samples = moments.count
    if random_std == 0.0:
        z_score = 0.0
        effect = 0.0
    else:
        z_score = (cuisine_mean - random_mean) / (
            random_std / math.sqrt(n_samples)
        )
        effect = (cuisine_mean - random_mean) / random_std
    return ModelComparison(
        model=model,
        cuisine_mean=cuisine_mean,
        random_mean=random_mean,
        random_std=random_std,
        n_samples=n_samples,
        z_score=z_score,
        effect_size=effect,
    )


def compare_to_model(
    view: CuisineView,
    model: NullModel,
    n_samples: int = PAPER_SAMPLE_COUNT,
    rng: np.random.Generator | None = None,
    parallel: "ParallelConfig | None" = None,
    seed: int | None = None,
) -> ModelComparison:
    """Compare one cuisine view against one null model.

    With ``parallel`` set, sampling runs through the sharded Monte Carlo
    engine (:mod:`repro.parallel`): deterministic per-shard RNGs replace
    ``rng``, and the score distribution is reduced to streaming moments.
    Results are then bit-identical for any ``parallel.workers`` value,
    though not to the serial ``rng``-stream path below.
    """
    if parallel is not None:
        from ..parallel.montecarlo import model_moments

        cuisine_mean = cuisine_mean_score(view)
        moments = model_moments(view, model, n_samples, parallel, seed=seed)
        return comparison_from_moments(cuisine_mean, model, moments)
    if rng is None:
        rng = np.random.Generator(
            np.random.PCG64(
                stable_seed("null-model", view.region_code, model.value)
            )
        )
    with span(
        "pairing.zscore", region=view.region_code, model=model.value
    ):
        cuisine_mean = cuisine_mean_score(view)
        random_scores = sample_model_scores(view, model, n_samples, rng)
        random_mean = float(random_scores.mean())
        random_std = float(random_scores.std(ddof=1))
    if random_std == 0.0:
        z_score = 0.0
        effect = 0.0
    else:
        z_score = (cuisine_mean - random_mean) / (
            random_std / math.sqrt(n_samples)
        )
        effect = (cuisine_mean - random_mean) / random_std
    return ModelComparison(
        model=model,
        cuisine_mean=cuisine_mean,
        random_mean=random_mean,
        random_std=random_std,
        n_samples=n_samples,
        z_score=z_score,
        effect_size=effect,
    )


def analyze_cuisine(
    cuisine: Cuisine,
    catalog: IngredientCatalog,
    models: tuple[NullModel, ...] = tuple(NullModel),
    n_samples: int = PAPER_SAMPLE_COUNT,
    seed: int | None = None,
    parallel: "ParallelConfig | None" = None,
    view: "CuisineView | None" = None,
) -> CuisinePairingResult:
    """Run the full food-pairing analysis for one cuisine.

    Args:
        cuisine: the cuisine's resolved recipes.
        catalog: the ingredient catalog (flavor profiles).
        models: which null models to evaluate (all four by default).
        n_samples: random recipes per model.
        seed: extra seed mixed into the per-model generators; ``None``
            uses the deterministic default.
        parallel: when set, all models' sampling fans out through the
            sharded Monte Carlo engine in one sweep.
        view: a prebuilt numeric view of the cuisine (the engine's
            ``pairing_views`` stage artifact); built here when omitted.
    """
    with span(
        "pairing.analyze_cuisine", region=cuisine.region_code
    ) as trace:
        if view is None:
            view = build_cuisine_view(cuisine, catalog)
        comparisons: dict[NullModel, ModelComparison] = {}
        if parallel is not None:
            from ..parallel.montecarlo import sweep_pairing_moments

            cuisine_mean = cuisine_mean_score(view)
            moments_map = sweep_pairing_moments(
                {view.region_code: view}, models, n_samples, parallel, seed
            )
            for model in models:
                comparisons[model] = comparison_from_moments(
                    cuisine_mean,
                    model,
                    moments_map[(view.region_code, model)],
                )
        else:
            for model in models:
                rng = np.random.Generator(
                    np.random.PCG64(
                        stable_seed(
                            "null-model",
                            view.region_code,
                            model.value,
                            str(seed) if seed is not None else "default",
                        )
                    )
                )
                comparisons[model] = compare_to_model(
                    view, model, n_samples, rng
                )
        trace.incr("models", len(comparisons))
    any_comparison = next(iter(comparisons.values()))
    return CuisinePairingResult(
        region_code=cuisine.region_code,
        cuisine_mean=any_comparison.cuisine_mean,
        recipe_count=len(cuisine),
        ingredient_count=len(cuisine.ingredient_ids),
        comparisons=comparisons,
    )
