"""Streaming moment reduction for the Monte Carlo score distributions.

The null-model analyses only ever need four summary statistics of the
sampled score vector — count, mean, standard deviation, and the range —
so the parallel engine never materializes the 100,000-float array the
serial path used to build. Each worker folds its shard of samples into a
:class:`StreamingMoments` (count, sum, sum of squares, min/max) and the
parent merges the shards. Merging is a plain sum of the accumulators, so
for a fixed shard decomposition the result is bit-identical regardless of
how many workers produced the shards — only the (deterministic) merge
order matters, never the scheduling order.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np


@dataclasses.dataclass
class StreamingMoments:
    """Running (count, sum, sum-of-squares, min, max) of a sample stream.

    Attributes:
        count: number of values folded in.
        total: sum of the values.
        sum_squares: sum of the squared values.
        minimum: smallest value seen (``+inf`` when empty).
        maximum: largest value seen (``-inf`` when empty).
    """

    count: int = 0
    total: float = 0.0
    sum_squares: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    @classmethod
    def from_array(cls, values: np.ndarray) -> "StreamingMoments":
        """Moments of one shard of samples."""
        moments = cls()
        moments.update(values)
        return moments

    def update(self, values: np.ndarray) -> None:
        """Fold a chunk of samples into the accumulators in place."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        self.count += int(values.size)
        self.total += float(values.sum())
        self.sum_squares += float(np.square(values).sum())
        self.minimum = min(self.minimum, float(values.min()))
        self.maximum = max(self.maximum, float(values.max()))

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Combine two shards exactly; returns a new instance.

        The combination is a plain sum of the accumulators, so folding a
        fixed shard sequence left-to-right yields bit-identical results
        no matter which processes computed the shards.
        """
        return StreamingMoments(
            count=self.count + other.count,
            total=self.total + other.total,
            sum_squares=self.sum_squares + other.sum_squares,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def variance(self, ddof: int = 1) -> float:
        """Sample variance; 0.0 when fewer than ``ddof + 1`` values."""
        if self.count <= ddof:
            return 0.0
        centered = self.sum_squares - self.total * self.total / self.count
        return max(0.0, centered) / (self.count - ddof)

    def std(self, ddof: int = 1) -> float:
        return math.sqrt(self.variance(ddof))

    def as_dict(self) -> dict[str, float | int]:
        """JSON-ready summary (service and benchmark artifacts)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std(),
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }
