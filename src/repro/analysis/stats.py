"""Statistical characterisation of the corpus distributions (scipy).

Formal backing for the paper's descriptive claims:

* Fig 3a — the recipe-size distribution is "bounded and thin-tailed": fit
  a (shifted) Poisson and compare tail mass against exponential decay;
* Fig 3a — regional size distributions are mutually consistent:
  two-sample Kolmogorov–Smirnov tests between regions;
* Fig 3b — popularity curves follow a truncated power law: fit the Zipf
  exponent with a log-log linear model and report the goodness of fit.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import stats

from ..datamodel import ConfigurationError, Cuisine


@dataclasses.dataclass(frozen=True)
class PoissonFit:
    """Shifted-Poisson fit of a recipe-size sample.

    Attributes:
        shift: support offset (the minimum observed size).
        lam: fitted Poisson rate of ``size - shift``.
        pvalue: chi-square goodness-of-fit p-value (binned).
        tail_mass_beyond_20: observed P(size > 20).
    """

    shift: int
    lam: float
    pvalue: float
    tail_mass_beyond_20: float

    @property
    def mean(self) -> float:
        return self.shift + self.lam


def fit_recipe_sizes(sizes: np.ndarray) -> PoissonFit:
    """Fit a shifted Poisson to recipe sizes and test the fit.

    Raises:
        ConfigurationError: on an empty sample.
    """
    if len(sizes) == 0:
        raise ConfigurationError("no sizes to fit")
    sizes = np.asarray(sizes, dtype=np.int64)
    shift = int(sizes.min())
    lam = float((sizes - shift).mean())
    # Chi-square against the fitted Poisson, binning the tail at +4 sd.
    cutoff = int(np.ceil(lam + 4 * np.sqrt(max(lam, 1e-9))))
    observed = np.zeros(cutoff + 2)
    for size in sizes - shift:
        observed[min(int(size), cutoff + 1)] += 1
    expected = np.zeros_like(observed)
    probabilities = stats.poisson.pmf(np.arange(cutoff + 1), lam)
    expected[: cutoff + 1] = probabilities * len(sizes)
    expected[cutoff + 1] = max(
        (1 - probabilities.sum()) * len(sizes), 1e-9
    )
    keep = expected >= 5  # standard chi-square validity rule
    if keep.sum() < 3:
        pvalue = float("nan")
    else:
        observed_kept = observed[keep]
        expected_kept = expected[keep]
        expected_kept = expected_kept * (
            observed_kept.sum() / expected_kept.sum()
        )
        statistic, pvalue = stats.chisquare(observed_kept, expected_kept)
        pvalue = float(pvalue)
    return PoissonFit(
        shift=shift,
        lam=lam,
        pvalue=pvalue,
        tail_mass_beyond_20=float((sizes > 20).mean()),
    )


def size_distributions_consistent(
    left: Cuisine, right: Cuisine, alpha: float = 0.001
) -> tuple[bool, float]:
    """Two-sample KS test on recipe sizes of two cuisines.

    Returns:
        (consistent, pvalue): ``consistent`` is True when the KS test does
        NOT reject identity at level ``alpha`` — i.e. the Fig 3a claim
        that size statistics generalise across cuisines.
    """
    statistic, pvalue = stats.ks_2samp(
        np.asarray(left.recipe_sizes), np.asarray(right.recipe_sizes)
    )
    return bool(pvalue > alpha), float(pvalue)


@dataclasses.dataclass(frozen=True)
class ZipfFit:
    """Log-log linear fit of a popularity rank curve.

    Attributes:
        exponent: fitted Zipf exponent (positive).
        r_squared: goodness of the log-log linear fit.
        head_ranks: number of ranks used (power law holds before the
            finite-size cutoff).
    """

    exponent: float
    r_squared: float
    head_ranks: int


def fit_zipf(counts: np.ndarray, head_fraction: float = 0.5) -> ZipfFit:
    """Fit ``count ~ rank^-s`` on the head of a rank-frequency curve."""
    counts = np.asarray(counts, dtype=np.float64)
    if len(counts) < 8:
        raise ConfigurationError("need at least 8 ranks for a Zipf fit")
    head = max(8, int(len(counts) * head_fraction))
    ranks = np.arange(1, head + 1)
    log_rank = np.log(ranks)
    log_count = np.log(counts[:head])
    result = stats.linregress(log_rank, log_count)
    return ZipfFit(
        exponent=float(-result.slope),
        r_squared=float(result.rvalue**2),
        head_ranks=head,
    )
