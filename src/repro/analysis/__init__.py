"""Descriptive analytics over resolved cuisines.

Recipe-size statistics (Fig 3a), ingredient popularity scaling (Fig 3b),
category composition (Fig 2), plus the paper's discussed extensions:
flavor networks, higher-order n-tuple sharing and the copy-mutate culinary
evolution model.
"""

from .authenticity import (
    authenticity_scores,
    cuisine_similarity,
    ingredient_prevalence,
    most_authentic,
    similarity_matrix,
)
from .categories import (
    CATEGORY_ORDER,
    CategoryComposition,
    category_composition,
    composition_matrix,
    world_composition,
)
from .evolution import (
    EvolutionResult,
    copy_mutate_evolution,
    zipf_fit_exponent,
)
from .network import (
    backbone,
    cuisine_flavor_network,
    flavor_communities,
    flavor_network,
    popular_pair_strength,
)
from .ntuples import TupleSharing, cuisine_tuple_sharing, recipe_tuple_sharing
from .pairshare import PairShareDistribution, pair_share_distribution
from .robustness import (
    BootstrapResult,
    PerturbationResult,
    bootstrap_pairing_direction,
    perturb_flavor_profiles,
)
from .popularity import (
    PopularityCurve,
    popularity_curve,
    scaling_collapse_error,
)
from .sizes import SizeDistribution, pooled_size_distribution, size_distribution
from .stats import (
    PoissonFit,
    ZipfFit,
    fit_recipe_sizes,
    fit_zipf,
    size_distributions_consistent,
)

__all__ = [
    "authenticity_scores",
    "cuisine_similarity",
    "ingredient_prevalence",
    "most_authentic",
    "similarity_matrix",
    "CATEGORY_ORDER",
    "CategoryComposition",
    "category_composition",
    "composition_matrix",
    "world_composition",
    "EvolutionResult",
    "copy_mutate_evolution",
    "zipf_fit_exponent",
    "backbone",
    "cuisine_flavor_network",
    "flavor_communities",
    "flavor_network",
    "popular_pair_strength",
    "TupleSharing",
    "PairShareDistribution",
    "pair_share_distribution",
    "BootstrapResult",
    "PerturbationResult",
    "bootstrap_pairing_direction",
    "perturb_flavor_profiles",
    "cuisine_tuple_sharing",
    "recipe_tuple_sharing",
    "PopularityCurve",
    "popularity_curve",
    "scaling_collapse_error",
    "SizeDistribution",
    "pooled_size_distribution",
    "size_distribution",
    "PoissonFit",
    "ZipfFit",
    "fit_recipe_sizes",
    "fit_zipf",
    "size_distributions_consistent",
]
