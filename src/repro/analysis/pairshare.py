"""Distribution of shared flavor compounds over ingredient pairs.

The flavor-network literature the paper builds on (Ahn et al. [6])
characterises cuisines by the *distribution* of shared-compound counts
across the ingredient pairs actually used together, compared with the
distribution over all pantry pairs. A uniform-pairing cuisine's used-pair
distribution is shifted toward larger sharing; a contrasting cuisine's
toward smaller sharing — the histogram-level view of Fig 4's Z-scores.
"""

from __future__ import annotations

import dataclasses
import itertools

import numpy as np

from ..pairing.views import CuisineView


@dataclasses.dataclass(frozen=True)
class PairShareDistribution:
    """Shared-compound statistics for used vs possible ingredient pairs.

    Attributes:
        region_code: the cuisine analysed.
        used_counts: shared-compound count per (recipe, pair) occurrence.
        pantry_counts: shared-compound count per unordered pantry pair.
        used_mean / pantry_mean: their means.
        shift: ``used_mean - pantry_mean`` (positive = uniform pairing).
    """

    region_code: str
    used_counts: np.ndarray
    pantry_counts: np.ndarray
    used_mean: float
    pantry_mean: float

    @property
    def shift(self) -> float:
        return self.used_mean - self.pantry_mean

    def histogram(
        self, which: str = "used", bins: int = 20
    ) -> tuple[np.ndarray, np.ndarray]:
        """Normalised histogram of either distribution.

        Args:
            which: ``"used"`` or ``"pantry"``.
            bins: histogram bin count.

        Returns:
            (bin_edges, densities)
        """
        counts = self.used_counts if which == "used" else self.pantry_counts
        upper = max(
            float(self.used_counts.max(initial=1.0)),
            float(self.pantry_counts.max(initial=1.0)),
        )
        densities, edges = np.histogram(
            counts, bins=bins, range=(0.0, upper), density=True
        )
        return edges, densities


def pair_share_distribution(view: CuisineView) -> PairShareDistribution:
    """Compute used-pair vs pantry-pair sharing distributions."""
    used: list[float] = []
    for recipe in view.recipes:
        for left, right in itertools.combinations(recipe, 2):
            used.append(float(view.overlap[int(left), int(right)]))
    pantry = view.overlap[np.triu_indices(view.ingredient_count, k=1)]
    used_array = np.asarray(used, dtype=np.float64)
    pantry_array = np.asarray(pantry, dtype=np.float64)
    return PairShareDistribution(
        region_code=view.region_code,
        used_counts=used_array,
        pantry_counts=pantry_array,
        used_mean=float(used_array.mean()),
        pantry_mean=float(pantry_array.mean()),
    )
