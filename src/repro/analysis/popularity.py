"""Ingredient popularity scaling (Fig 3b).

For each cuisine the paper plots the frequency of use of ingredients,
normalised by the most popular ingredient, against popularity rank — an
"exceptionally consistent scaling phenomenon" across all regions — with a
cumulative-share inset.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..datamodel import Cuisine
from ..flavordb import IngredientCatalog


@dataclasses.dataclass(frozen=True)
class PopularityCurve:
    """Rank-ordered ingredient popularity of one cuisine.

    Attributes:
        region_code: cuisine identifier.
        names: ingredient names, most popular first.
        counts: recipe-usage count per ingredient (descending).
        normalized: ``counts / counts[0]`` (the Fig 3b y-axis).
        cumulative_share: running share of total mentions (the inset).
    """

    region_code: str
    names: tuple[str, ...]
    counts: np.ndarray
    normalized: np.ndarray
    cumulative_share: np.ndarray

    @property
    def ranks(self) -> np.ndarray:
        """1-based popularity ranks."""
        return np.arange(1, len(self.counts) + 1)

    def top(self, count: int) -> list[tuple[str, int]]:
        """The ``count`` most popular ingredients with usage counts."""
        return [
            (self.names[i], int(self.counts[i]))
            for i in range(min(count, len(self.names)))
        ]

    def rank_of(self, name: str) -> int:
        """1-based rank of an ingredient.

        Raises:
            ValueError: if the ingredient is not used by the cuisine.
        """
        try:
            return self.names.index(name) + 1
        except ValueError as exc:
            raise ValueError(
                f"{name!r} not used in cuisine {self.region_code!r}"
            ) from exc


def popularity_curve(
    cuisine: Cuisine, catalog: IngredientCatalog
) -> PopularityCurve:
    """Rank-frequency popularity curve of one cuisine."""
    usage = cuisine.ingredient_usage
    ordered = sorted(
        usage.items(),
        key=lambda item: (-item[1], catalog.by_id(item[0]).name),
    )
    names = tuple(catalog.by_id(ingredient_id).name for ingredient_id, _ in ordered)
    counts = np.asarray([count for _, count in ordered], dtype=np.float64)
    total = counts.sum()
    return PopularityCurve(
        region_code=cuisine.region_code,
        names=names,
        counts=counts,
        normalized=counts / counts[0],
        cumulative_share=np.cumsum(counts) / total,
    )


def scaling_collapse_error(curves: list[PopularityCurve]) -> float:
    """How tightly the normalised curves collapse onto each other.

    Evaluates every curve's normalised popularity at a shared set of
    absolute ranks (up to the shortest curve) and returns the mean
    inter-cuisine standard deviation — small values mean the Fig 3b
    "consistent scaling" holds.
    """
    shortest = min(len(curve.normalized) for curve in curves)
    positions = np.unique(
        np.logspace(0, np.log10(shortest - 1), 25).astype(int)
    )
    stacked = np.stack([curve.normalized[positions] for curve in curves])
    return float(stacked.std(axis=0).mean())
