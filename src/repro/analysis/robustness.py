"""Robustness of the food-pairing patterns (paper Section V, question 1).

The paper asks: *"How robust are the patterns to changes in recipes data
and flavor profiles?"* This module answers it with two perturbation
studies:

* :func:`bootstrap_pairing_direction` — resample the cuisine's recipes
  with replacement and re-run the pairing analysis; report how often the
  direction (uniform/contrasting) survives.
* :func:`perturb_flavor_profiles` — randomly delete a fraction of every
  ingredient's flavor molecules (emulating incomplete flavor data, which
  the paper flags as a key quality factor) and recompute the effect size.

Both operate on the numeric :class:`~repro.pairing.views.CuisineView`, so
they run in seconds even for large cuisines.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..datamodel import ConfigurationError, Cuisine
from ..flavordb import IngredientCatalog
from ..pairing import NullModel, compare_to_model
from ..pairing.views import CuisineView, build_cuisine_view


@dataclasses.dataclass(frozen=True)
class BootstrapResult:
    """Direction stability under recipe resampling.

    Attributes:
        region_code: the cuisine analysed.
        effect_sizes: effect size per bootstrap replicate.
        baseline_effect: effect size of the unperturbed cuisine.
        sign_stability: fraction of replicates whose direction matches the
            baseline direction.
    """

    region_code: str
    effect_sizes: np.ndarray
    baseline_effect: float
    sign_stability: float


def _resample_view(
    view: CuisineView, rng: np.random.Generator
) -> CuisineView:
    """Bootstrap-resample the view's recipes (ingredients unchanged)."""
    picks = rng.integers(0, view.recipe_count, size=view.recipe_count)
    recipes = tuple(view.recipes[int(pick)] for pick in picks)
    frequencies = np.zeros_like(view.frequencies)
    for recipe in recipes:
        frequencies[recipe] += 1
    # Ingredients that vanished from the resample keep a floor frequency
    # so the frequency-null stays well-defined.
    frequencies = np.maximum(frequencies, 1e-9)
    return CuisineView(
        region_code=view.region_code,
        ingredients=view.ingredients,
        overlap=view.overlap,
        recipes=recipes,
        frequencies=frequencies,
        categories=view.categories,
    )


def bootstrap_pairing_direction(
    cuisine: Cuisine,
    catalog: IngredientCatalog,
    replicates: int = 20,
    n_samples: int = 4000,
    seed: int = 0,
) -> BootstrapResult:
    """Re-run the pairing analysis on bootstrap resamples of the recipes."""
    if replicates < 1:
        raise ConfigurationError("need at least one bootstrap replicate")
    rng = np.random.Generator(np.random.PCG64(seed))
    view = build_cuisine_view(cuisine, catalog)
    baseline = compare_to_model(
        view, NullModel.RANDOM, n_samples=n_samples, rng=rng
    )
    effects = []
    matches = 0
    for _replicate in range(replicates):
        resampled = _resample_view(view, rng)
        comparison = compare_to_model(
            resampled, NullModel.RANDOM, n_samples=n_samples, rng=rng
        )
        effects.append(comparison.effect_size)
        if np.sign(comparison.effect_size) == np.sign(
            baseline.effect_size
        ):
            matches += 1
    return BootstrapResult(
        region_code=cuisine.region_code,
        effect_sizes=np.asarray(effects),
        baseline_effect=baseline.effect_size,
        sign_stability=matches / replicates,
    )


@dataclasses.dataclass(frozen=True)
class PerturbationResult:
    """Effect-size trajectory under flavor-profile thinning.

    Attributes:
        region_code: the cuisine analysed.
        deletion_fractions: fraction of molecules deleted per step.
        effect_sizes: effect size at each deletion fraction (index 0 is
            the unperturbed baseline).
    """

    region_code: str
    deletion_fractions: tuple[float, ...]
    effect_sizes: np.ndarray

    @property
    def sign_survives_all(self) -> bool:
        baseline_sign = np.sign(self.effect_sizes[0])
        return bool(np.all(np.sign(self.effect_sizes) == baseline_sign))


def _thin_overlap(
    view: CuisineView,
    deletion_fraction: float,
    catalog: IngredientCatalog,
    rng: np.random.Generator,
) -> np.ndarray:
    """Overlap matrix after deleting a fraction of each flavor profile."""
    profiles = []
    for ingredient in view.ingredients:
        molecules = np.asarray(sorted(ingredient.flavor_profile))
        keep = max(2, int(round(len(molecules) * (1 - deletion_fraction))))
        picks = rng.choice(len(molecules), size=keep, replace=False)
        profiles.append(frozenset(int(m) for m in molecules[picks]))
    max_molecule = max(max(profile) for profile in profiles if profile)
    membership = np.zeros((len(profiles), max_molecule + 1), np.float32)
    for row, profile in enumerate(profiles):
        membership[row, list(profile)] = 1.0
    matrix = (membership @ membership.T).astype(np.float64)
    np.fill_diagonal(matrix, 0.0)
    return matrix


def perturb_flavor_profiles(
    cuisine: Cuisine,
    catalog: IngredientCatalog,
    deletion_fractions: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5),
    n_samples: int = 4000,
    seed: int = 0,
) -> PerturbationResult:
    """Recompute the pairing effect size with thinned flavor profiles."""
    if not deletion_fractions or deletion_fractions[0] != 0.0:
        raise ConfigurationError(
            "deletion_fractions must start with 0.0 (the baseline)"
        )
    rng = np.random.Generator(np.random.PCG64(seed))
    view = build_cuisine_view(cuisine, catalog)
    effects = []
    for fraction in deletion_fractions:
        if fraction == 0.0:
            thinned = view
        else:
            thinned = CuisineView(
                region_code=view.region_code,
                ingredients=view.ingredients,
                overlap=_thin_overlap(view, fraction, catalog, rng),
                recipes=view.recipes,
                frequencies=view.frequencies,
                categories=view.categories,
            )
        comparison = compare_to_model(
            thinned, NullModel.RANDOM, n_samples=n_samples, rng=rng
        )
        effects.append(comparison.effect_size)
    return PerturbationResult(
        region_code=cuisine.region_code,
        deletion_fractions=deletion_fractions,
        effect_sizes=np.asarray(effects),
    )
