"""Flavor network construction and backbone extraction.

The food-pairing literature (Ahn et al. [6], which the paper builds on)
represents ingredients as a weighted network: nodes are ingredients, edge
weights are shared flavor-molecule counts. This module builds that network
for a catalog or for one cuisine's pantry, extracts a significance
backbone, and exposes simple structure metrics (flavor communities,
assortativity of popular ingredients) used by the examples and ablations.
"""

from __future__ import annotations

import itertools

import networkx as nx

from ..datamodel import Cuisine, Ingredient
from ..flavordb import IngredientCatalog


def flavor_network(
    ingredients: tuple[Ingredient, ...],
    min_shared: int = 1,
) -> nx.Graph:
    """Weighted flavor network over a set of ingredients.

    Args:
        ingredients: nodes; only those with flavor profiles are connected.
        min_shared: minimum shared-molecule count for an edge.

    Returns:
        Graph with node attributes ``category`` and ``profile_size`` and
        edge attribute ``shared`` (molecule count).
    """
    graph = nx.Graph()
    for ingredient in ingredients:
        graph.add_node(
            ingredient.name,
            category=ingredient.category.value,
            profile_size=len(ingredient.flavor_profile),
        )
    for left, right in itertools.combinations(ingredients, 2):
        if not left.flavor_profile or not right.flavor_profile:
            continue
        shared = left.shared_molecules(right)
        if shared >= min_shared:
            graph.add_edge(left.name, right.name, shared=shared)
    return graph


def cuisine_flavor_network(
    cuisine: Cuisine, catalog: IngredientCatalog, min_shared: int = 1
) -> nx.Graph:
    """Flavor network restricted to one cuisine's pantry, with node
    attribute ``usage`` (recipe count)."""
    usage = cuisine.ingredient_usage
    ingredients = tuple(
        catalog.by_id(ingredient_id) for ingredient_id in sorted(usage)
    )
    graph = flavor_network(ingredients, min_shared=min_shared)
    for ingredient in ingredients:
        graph.nodes[ingredient.name]["usage"] = usage[
            ingredient.ingredient_id
        ]
    return graph


def backbone(graph: nx.Graph, keep_fraction: float = 0.1) -> nx.Graph:
    """Keep the strongest ``keep_fraction`` of edges (weight backbone).

    The paper's Fig 1 pipeline sketches a pruned flavor network; this is
    the standard strongest-edges backbone, preserving all nodes.
    """
    if not 0 < keep_fraction <= 1:
        raise ValueError("keep_fraction must be in (0, 1]")
    edges = sorted(
        graph.edges(data="shared"), key=lambda edge: -edge[2]
    )
    keep = max(1, int(round(len(edges) * keep_fraction)))
    pruned = nx.Graph()
    pruned.add_nodes_from(graph.nodes(data=True))
    for left, right, shared in edges[:keep]:
        pruned.add_edge(left, right, shared=shared)
    return pruned


def flavor_communities(graph: nx.Graph) -> list[frozenset[str]]:
    """Greedy-modularity communities of the (weighted) flavor network."""
    if graph.number_of_edges() == 0:
        return [frozenset(component) for component in nx.connected_components(graph)]
    communities = nx.algorithms.community.greedy_modularity_communities(
        graph, weight="shared"
    )
    return [frozenset(community) for community in communities]


def popular_pair_strength(graph: nx.Graph, top: int = 20) -> float:
    """Mean edge weight among the ``top`` most-used ingredients.

    Requires ``usage`` node attributes (see :func:`cuisine_flavor_network`).
    A uniform-pairing cuisine scores high, a contrasting one low — the
    network-level restatement of the paper's Fig 4.
    """
    ranked = sorted(
        graph.nodes(data="usage"), key=lambda node: -(node[1] or 0)
    )[:top]
    names = [name for name, _usage in ranked]
    weights = []
    for left, right in itertools.combinations(names, 2):
        if graph.has_edge(left, right):
            weights.append(graph[left][right]["shared"])
        else:
            weights.append(0)
    if not weights:
        return 0.0
    return float(sum(weights) / len(weights))
