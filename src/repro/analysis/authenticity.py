"""Ingredient authenticity: which ingredients make a cuisine *its own*.

The flavor-network literature the paper builds on (Ahn et al. [6])
quantifies an ingredient's *authenticity* for a cuisine as its relative
prevalence: how much more of the cuisine's recipes use it than the
average cuisine does. Authentic ingredients are the cuisine's signature
("every region has its special ingredients that are most popular and
dominate the cuisine", Section II.B); the paper's culinary-fingerprint
framing rests on exactly this property.

* :func:`ingredient_prevalence` — fraction of a cuisine's recipes using
  each ingredient;
* :func:`authenticity_scores` — prevalence in the target cuisine minus
  the mean prevalence in all other cuisines;
* :func:`most_authentic` — the top signature ingredients per cuisine;
* :func:`cuisine_similarity` — cosine similarity of prevalence vectors,
  a cuisine-to-cuisine distance the examples use to draw the "map" of
  world cuisines.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..datamodel import ConfigurationError, Cuisine, LookupFailure
from ..flavordb import IngredientCatalog


def ingredient_prevalence(cuisine: Cuisine) -> dict[int, float]:
    """Fraction of the cuisine's recipes containing each ingredient."""
    total = len(cuisine)
    if total == 0:
        raise ConfigurationError(
            f"cuisine {cuisine.region_code!r} has no recipes"
        )
    return {
        ingredient_id: count / total
        for ingredient_id, count in cuisine.ingredient_usage.items()
    }


def authenticity_scores(
    cuisines: Mapping[str, Cuisine], target_code: str
) -> dict[int, float]:
    """Relative prevalence of every target-cuisine ingredient.

    ``authenticity(i) = prevalence_target(i) - mean_other prevalence(i)``;
    positive values mark ingredients used distinctively often by the
    target cuisine.

    Raises:
        LookupFailure: if ``target_code`` is not among ``cuisines``.
        ConfigurationError: with fewer than two cuisines.
    """
    if target_code not in cuisines:
        raise LookupFailure(f"unknown cuisine {target_code!r}")
    if len(cuisines) < 2:
        raise ConfigurationError(
            "authenticity needs at least two cuisines to compare"
        )
    target_prevalence = ingredient_prevalence(cuisines[target_code])
    others = [
        ingredient_prevalence(cuisine)
        for code, cuisine in cuisines.items()
        if code != target_code
    ]
    scores: dict[int, float] = {}
    for ingredient_id, prevalence in target_prevalence.items():
        elsewhere = sum(
            other.get(ingredient_id, 0.0) for other in others
        ) / len(others)
        scores[ingredient_id] = prevalence - elsewhere
    return scores


def most_authentic(
    cuisines: Mapping[str, Cuisine],
    target_code: str,
    catalog: IngredientCatalog,
    top: int = 10,
) -> list[tuple[str, float]]:
    """The cuisine's most authentic ingredients, by name."""
    scores = authenticity_scores(cuisines, target_code)
    ranked = sorted(scores.items(), key=lambda item: -item[1])[:top]
    return [
        (catalog.by_id(ingredient_id).name, score)
        for ingredient_id, score in ranked
    ]


def cuisine_similarity(left: Cuisine, right: Cuisine) -> float:
    """Cosine similarity of two cuisines' prevalence vectors (0..1)."""
    left_prevalence = ingredient_prevalence(left)
    right_prevalence = ingredient_prevalence(right)
    ids = sorted(set(left_prevalence) | set(right_prevalence))
    left_vector = np.asarray(
        [left_prevalence.get(ingredient_id, 0.0) for ingredient_id in ids]
    )
    right_vector = np.asarray(
        [right_prevalence.get(ingredient_id, 0.0) for ingredient_id in ids]
    )
    denominator = np.linalg.norm(left_vector) * np.linalg.norm(right_vector)
    if denominator == 0:
        return 0.0
    return float(left_vector @ right_vector / denominator)


def similarity_matrix(
    cuisines: Mapping[str, Cuisine],
) -> tuple[list[str], np.ndarray]:
    """Pairwise cuisine similarity (symmetric, unit diagonal)."""
    codes = sorted(cuisines)
    size = len(codes)
    matrix = np.eye(size)
    for i in range(size):
        for j in range(i + 1, size):
            value = cuisine_similarity(
                cuisines[codes[i]], cuisines[codes[j]]
            )
            matrix[i, j] = value
            matrix[j, i] = value
    return codes, matrix
