"""Category-composition analysis (Fig 2).

For each region, the share of ingredient mentions falling in each of the
21 categories. The paper's heat-map highlights: at the WORLD level (with
the Additive category excluded, "data not shown") Vegetable, Spice, Dairy,
Herb, Plant, Meat and Fruit are used most; France, the British Isles and
Scandinavia use dairy more prominently than vegetables; the Indian
Subcontinent, Africa, the Middle East and the Caribbean are spice-forward.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

import numpy as np

from ..datamodel import Category, Cuisine, WORLD_CODE
from ..flavordb import IngredientCatalog

#: Canonical category order for heat-map rows/columns.
CATEGORY_ORDER: tuple[Category, ...] = tuple(Category)


@dataclasses.dataclass(frozen=True)
class CategoryComposition:
    """Category usage shares of one cuisine.

    Attributes:
        region_code: cuisine identifier.
        mentions: raw ingredient-mention counts per category.
        shares: mention fractions per category (sums to 1).
    """

    region_code: str
    mentions: dict[Category, int]
    shares: dict[Category, float]

    def share(self, category: Category) -> float:
        return self.shares.get(category, 0.0)

    def ranked(
        self, exclude: tuple[Category, ...] = (Category.ADDITIVE,)
    ) -> list[tuple[Category, float]]:
        """Categories by descending share, Additive excluded by default
        (the paper excludes it from Fig 2)."""
        return sorted(
            (
                (category, share)
                for category, share in self.shares.items()
                if category not in exclude
            ),
            key=lambda item: -item[1],
        )


def category_composition(
    cuisine: Cuisine, catalog: IngredientCatalog
) -> CategoryComposition:
    """Category composition of one cuisine."""
    mentions: Counter[Category] = Counter()
    for ingredient_id, count in cuisine.ingredient_usage.items():
        mentions[catalog.by_id(ingredient_id).category] += count
    total = sum(mentions.values())
    shares = {
        category: count / total for category, count in mentions.items()
    }
    return CategoryComposition(
        region_code=cuisine.region_code,
        mentions=dict(mentions),
        shares=shares,
    )


def world_composition(
    cuisines: dict[str, Cuisine], catalog: IngredientCatalog
) -> CategoryComposition:
    """Aggregate category composition over all cuisines (WORLD row)."""
    mentions: Counter[Category] = Counter()
    for cuisine in cuisines.values():
        for ingredient_id, count in cuisine.ingredient_usage.items():
            mentions[catalog.by_id(ingredient_id).category] += count
    total = sum(mentions.values())
    return CategoryComposition(
        region_code=WORLD_CODE,
        mentions=dict(mentions),
        shares={
            category: count / total for category, count in mentions.items()
        },
    )


def composition_matrix(
    cuisines: dict[str, Cuisine], catalog: IngredientCatalog
) -> tuple[list[str], np.ndarray]:
    """The Fig 2 heat-map: rows = regions (+WORLD last), cols = categories.

    Returns:
        (row labels, shares matrix) with columns in :data:`CATEGORY_ORDER`.
    """
    rows: list[str] = []
    data: list[list[float]] = []
    for code in sorted(cuisines):
        composition = category_composition(cuisines[code], catalog)
        rows.append(code)
        data.append(
            [composition.share(category) for category in CATEGORY_ORDER]
        )
    world = world_composition(cuisines, catalog)
    rows.append(WORLD_CODE)
    data.append([world.share(category) for category in CATEGORY_ORDER])
    return rows, np.asarray(data, dtype=np.float64)
