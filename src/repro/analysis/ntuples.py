"""Higher-order flavor sharing: triples and quadruples.

Section V of the paper asks, as an open question, what the food-pairing
patterns look like at "higher order n-tuples (i.e. instead of pairs what
if one were to compute triples and quadruples of ingredients)". This
module implements that extension with two natural generalisations of the
pairing score:

* *common sharing* — the number of molecules common to ALL k ingredients
  of a tuple, averaged over every k-subset of a recipe;
* *mean pairwise sharing* — the ordinary pair score averaged over the
  pairs inside each k-subset (a consistency check: for k = 2 both
  definitions coincide with N_s).
"""

from __future__ import annotations

import dataclasses
import itertools

import numpy as np

from ..datamodel import Cuisine, ValidationError
from ..flavordb import IngredientCatalog


@dataclasses.dataclass(frozen=True, slots=True)
class TupleSharing:
    """Cuisine-level higher-order sharing statistics for one k."""

    region_code: str
    k: int
    mean_common: float  # molecules shared by all k, recipe-averaged
    mean_pairwise: float  # mean pair overlap within k-subsets


def recipe_tuple_sharing(
    profiles: list[frozenset[int]], k: int
) -> tuple[float, float]:
    """(common, pairwise) sharing of one recipe's k-subsets.

    Raises:
        ValidationError: if the recipe has fewer than ``k`` profiles.
    """
    if k < 2:
        raise ValidationError("tuple order k must be >= 2")
    if len(profiles) < k:
        raise ValidationError(
            f"recipe has {len(profiles)} pairable ingredients, needs >= {k}"
        )
    common_total = 0.0
    pairwise_total = 0.0
    subsets = 0
    for subset in itertools.combinations(profiles, k):
        intersection = frozenset.intersection(*subset)
        common_total += len(intersection)
        pair_sum = 0
        for left, right in itertools.combinations(subset, 2):
            pair_sum += len(left & right)
        pairwise_total += 2.0 * pair_sum / (k * (k - 1))
        subsets += 1
    return common_total / subsets, pairwise_total / subsets


def cuisine_tuple_sharing(
    cuisine: Cuisine,
    catalog: IngredientCatalog,
    k: int,
    max_recipes: int | None = None,
    rng: np.random.Generator | None = None,
) -> TupleSharing:
    """Average k-tuple sharing over a cuisine's recipes.

    Recipes with fewer than ``k`` pairable ingredients are skipped. With
    ``max_recipes`` set, a deterministic subsample (or ``rng``-driven one)
    bounds the cost for large cuisines.
    """
    recipes = list(cuisine.recipes)
    if max_recipes is not None and len(recipes) > max_recipes:
        if rng is None:
            recipes = recipes[:max_recipes]
        else:
            indices = rng.choice(len(recipes), max_recipes, replace=False)
            recipes = [recipes[int(index)] for index in indices]
    commons: list[float] = []
    pairwise: list[float] = []
    for recipe in recipes:
        profiles = [
            catalog.by_id(ingredient_id).flavor_profile
            for ingredient_id in sorted(recipe.ingredient_ids)
            if catalog.by_id(ingredient_id).has_flavor_profile
        ]
        if len(profiles) < k:
            continue
        common, pair = recipe_tuple_sharing(profiles, k)
        commons.append(common)
        pairwise.append(pair)
    if not commons:
        raise ValidationError(
            f"cuisine {cuisine.region_code!r} has no recipes of order {k}"
        )
    return TupleSharing(
        region_code=cuisine.region_code,
        k=k,
        mean_common=float(np.mean(commons)),
        mean_pairwise=float(np.mean(pairwise)),
    )
