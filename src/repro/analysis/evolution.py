"""Copy-mutate culinary evolution model (reference [10] of the paper).

The paper's conclusions note that "a simple copy-mutate model has been
shown to explain such patterns" (Jain & Bagler, Physica A 2018). The model
evolves a cuisine as follows: starting from a few seed recipes, each step
copies a uniformly chosen existing recipe and mutates it by replacing a
random ingredient with one drawn from the ingredient pool (with a small
probability of drawing a brand-new ingredient). Popular ingredients
propagate through copies, producing the Zipf-like rank-frequency curves of
Fig 3b without any explicit popularity weighting.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

import numpy as np

from ..datamodel import ConfigurationError


@dataclasses.dataclass(frozen=True)
class EvolutionResult:
    """Final state of one copy-mutate run.

    Attributes:
        recipes: evolved recipes, each a frozenset of ingredient indices.
        usage_counts: descending recipe-usage counts (rank-frequency).
        distinct_ingredients: number of ingredients ever used.
    """

    recipes: tuple[frozenset[int], ...]
    usage_counts: np.ndarray
    distinct_ingredients: int

    def normalized_popularity(self) -> np.ndarray:
        """Rank-frequency curve normalised by the most popular ingredient."""
        return self.usage_counts / self.usage_counts[0]


def copy_mutate_evolution(
    rng: np.random.Generator,
    steps: int,
    pool_size: int,
    recipe_size: int = 9,
    seed_recipes: int = 5,
    mutation_rate: float = 0.3,
    innovation_rate: float = 0.05,
) -> EvolutionResult:
    """Run the copy-mutate model.

    Args:
        rng: random generator.
        steps: recipes to evolve after the seeds.
        pool_size: size of the latent ingredient pool.
        recipe_size: ingredients per recipe.
        seed_recipes: initial random recipes.
        mutation_rate: probability each copied ingredient is replaced.
        innovation_rate: probability a replacement is a never-used
            ingredient rather than one sampled from current usage.

    Returns:
        The evolved cuisine with its rank-frequency statistics.
    """
    if recipe_size >= pool_size:
        raise ConfigurationError("pool must exceed the recipe size")
    if not 0 <= mutation_rate <= 1 or not 0 <= innovation_rate <= 1:
        raise ConfigurationError("rates must be in [0, 1]")

    usage: Counter[int] = Counter()
    unused: set[int] = set(range(pool_size))
    recipes: list[frozenset[int]] = []

    def record(recipe: frozenset[int]) -> None:
        recipes.append(recipe)
        usage.update(recipe)
        unused.difference_update(recipe)

    for _seed in range(seed_recipes):
        members = rng.choice(pool_size, size=recipe_size, replace=False)
        record(frozenset(int(member) for member in members))

    for _step in range(steps):
        template = recipes[int(rng.integers(len(recipes)))]
        members = set(template)
        for ingredient in tuple(members):
            if rng.random() >= mutation_rate:
                continue
            members.discard(ingredient)
            replacement = _draw_replacement(
                rng, usage, unused, members, innovation_rate, pool_size
            )
            members.add(replacement)
        record(frozenset(members))

    counts = np.asarray(
        sorted(usage.values(), reverse=True), dtype=np.float64
    )
    return EvolutionResult(
        recipes=tuple(recipes),
        usage_counts=counts,
        distinct_ingredients=len(usage),
    )


def _draw_replacement(
    rng: np.random.Generator,
    usage: Counter[int],
    unused: set[int],
    exclude: set[int],
    innovation_rate: float,
    pool_size: int,
) -> int:
    if unused and rng.random() < innovation_rate:
        candidates = sorted(unused - exclude)
        if candidates:
            return int(candidates[int(rng.integers(len(candidates)))])
    # Preferential attachment: draw proportionally to current usage.
    names = [name for name in usage if name not in exclude]
    if not names:
        return int(rng.integers(pool_size))
    weights = np.asarray([usage[name] for name in names], dtype=np.float64)
    weights /= weights.sum()
    return int(names[int(rng.choice(len(names), p=weights))])


def zipf_fit_exponent(counts: np.ndarray) -> float:
    """Least-squares slope of log(count) vs log(rank) (a Zipf exponent).

    Restricted to the top half of ranks where the power law holds before
    the finite-size cutoff.
    """
    if len(counts) < 4:
        raise ConfigurationError("need at least 4 ranks to fit")
    half = max(4, len(counts) // 2)
    ranks = np.arange(1, half + 1, dtype=np.float64)
    values = counts[:half]
    slope, _intercept = np.polyfit(np.log(ranks), np.log(values), 1)
    return float(-slope)
