"""Recipe-size statistics (Fig 3a).

The paper reports a bounded, thin-tailed recipe size distribution with an
average of nine ingredients per recipe, consistent across all 22 regions,
with a cumulative inset. :func:`size_distribution` produces exactly the
series plotted there.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..datamodel import Cuisine


@dataclasses.dataclass(frozen=True)
class SizeDistribution:
    """Recipe-size histogram of one cuisine.

    Attributes:
        region_code: cuisine identifier.
        sizes: support of the histogram (distinct recipe sizes, ascending).
        probability: fraction of recipes at each size (sums to 1).
        cumulative: running sum of ``probability`` (the Fig 3a inset).
        mean: average recipe size.
        std: standard deviation of recipe size.
    """

    region_code: str
    sizes: np.ndarray
    probability: np.ndarray
    cumulative: np.ndarray
    mean: float
    std: float

    def probability_at(self, size: int) -> float:
        """P(recipe size == size); 0 outside the support."""
        matches = np.flatnonzero(self.sizes == size)
        if len(matches) == 0:
            return 0.0
        return float(self.probability[matches[0]])


def size_distribution(cuisine: Cuisine) -> SizeDistribution:
    """Recipe-size distribution of one cuisine."""
    raw_sizes = np.asarray(cuisine.recipe_sizes, dtype=np.int64)
    values, counts = np.unique(raw_sizes, return_counts=True)
    probability = counts / counts.sum()
    return SizeDistribution(
        region_code=cuisine.region_code,
        sizes=values,
        probability=probability,
        cumulative=np.cumsum(probability),
        mean=float(raw_sizes.mean()),
        std=float(raw_sizes.std(ddof=0)),
    )


def pooled_size_distribution(
    cuisines: dict[str, Cuisine], region_code: str = "WORLD"
) -> SizeDistribution:
    """Size distribution pooled over several cuisines (the WORLD curve)."""
    pooled: list[int] = []
    for cuisine in cuisines.values():
        pooled.extend(cuisine.recipe_sizes)
    raw_sizes = np.asarray(pooled, dtype=np.int64)
    values, counts = np.unique(raw_sizes, return_counts=True)
    probability = counts / counts.sum()
    return SizeDistribution(
        region_code=region_code,
        sizes=values,
        probability=probability,
        cumulative=np.cumsum(probability),
        mean=float(raw_sizes.mean()),
        std=float(raw_sizes.std(ddof=0)),
    )
