"""Value-canonical object graphs for byte-stable pickled artifacts.

Pickle output depends on *object identity*, not just values: the second
occurrence of the same object becomes a memo backreference, while an
equal-but-distinct object is written out in full. Process decomposition
changes exactly that — a serial build shares compile-time-interned
strings and catalog-singleton objects across the whole graph, whereas
results assembled from pool workers arrive through per-task pickle
round-trips that cut every cross-task sharing edge. Equal values,
different bytes.

:func:`canonicalize` removes the dependence on construction history by
rebuilding a graph bottom-up so that

* equal immutable values (strings, tuples, frozen dataclasses, ...)
  become *the same object* via a value-interning table,
* unordered collections (``set``/``frozenset``) are rebuilt in a sorted,
  deterministic layout,
* mutable containers are rebuilt preserving insertion order and
  identity-sharing (the same dict referenced twice stays one dict).

Two graphs with equal values therefore canonicalize to structurally
identical graphs and pickle to identical bytes — which is what lets the
corpus and aliasing engine stages guarantee bit-identical ``.art`` files
for any worker count.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any

import numpy as np

__all__ = ["canonicalize"]

#: Types pickled purely by value (or by module reference): identity
#: sharing never changes their bytes, so they pass through untouched.
_ATOMIC = (type(None), bool, int, float, complex, bytes, enum.Enum, type)


def _sort_key(element: Any) -> Any:
    """Deterministic total order for heterogeneous set elements."""
    return (type(element).__name__, repr(element))


class _Canonicalizer:
    def __init__(self) -> None:
        # (type, value) -> the one canonical object for that value.
        self._interned: dict[Any, Any] = {}
        # id(original) -> rebuilt object, for unhashable/mutable nodes.
        self._memo: dict[int, Any] = {}
        # The memo keys ids, so originals must outlive the walk.
        self._keepalive: list[Any] = []

    def _intern(self, rebuilt: Any) -> Any:
        try:
            return self._interned.setdefault((type(rebuilt), rebuilt), rebuilt)
        except TypeError:  # unhashable somewhere inside — identity only
            return rebuilt

    def _remember(self, original: Any, rebuilt: Any) -> Any:
        self._memo[id(original)] = rebuilt
        self._keepalive.append(original)
        return rebuilt

    def _merge(self, original: Any, rebuilt: Any, value_key: Any) -> Any:
        """Merge a rebuilt *mutable* container with an equal earlier one.

        Distinct-but-equal mutable containers (a module-constant dict
        referenced by several profiles, say) share identity in a serial
        build but not after per-task pickle round-trips; value-merging
        makes both paths agree. Containers whose contents are unhashable
        (including self-referential ones) stay identity-only.
        """
        try:
            canonical = self._interned.setdefault(
                (type(rebuilt), value_key), rebuilt
            )
        except TypeError:
            return rebuilt
        if canonical is not rebuilt:
            self._memo[id(original)] = canonical
        return canonical

    def walk(self, value: Any) -> Any:
        if isinstance(value, str):
            return self._interned.setdefault(value, value)
        if isinstance(value, _ATOMIC):
            return value
        try:
            return self._memo[id(value)]
        except KeyError:
            pass
        if isinstance(value, tuple):
            return self._remember(
                value, self._intern(tuple(self.walk(v) for v in value))
            )
        if isinstance(value, (frozenset, set)):
            elements = [self.walk(v) for v in value]
            try:
                elements.sort()
            except TypeError:
                elements.sort(key=_sort_key)
            rebuilt: Any = type(value)(elements)
            return self._remember(value, self._intern(rebuilt))
        if isinstance(value, dict):
            # Covers Counter/OrderedDict/defaultdict-free subclasses;
            # insertion order is part of the value and is preserved.
            rebuilt = type(value)()
            self._remember(value, rebuilt)
            for key, item in value.items():
                rebuilt[self.walk(key)] = self.walk(item)
            return self._merge(value, rebuilt, tuple(rebuilt.items()))
        if isinstance(value, list):
            rebuilt = type(value)()
            self._remember(value, rebuilt)
            rebuilt.extend(self.walk(v) for v in value)
            return self._merge(value, rebuilt, tuple(rebuilt))
        if isinstance(value, np.ndarray):
            # Array *data* pickles by value, but the dtype rides along as
            # an object — and unpickled arrays can carry equal-but-
            # distinct dtype instances, which changes memo
            # backreferences. Rebuild through the process-local dtype
            # singleton (and C-contiguous layout) instead.
            rebuilt = value.astype(np.dtype(value.dtype.str), copy=True)
            self._remember(value, rebuilt)
            return self._merge(
                value, rebuilt, (rebuilt.dtype.str, rebuilt.shape, rebuilt.tobytes())
            )
        if dataclasses.is_dataclass(value):
            fields = dataclasses.fields(value)
            if all(field.init for field in fields):
                rebuilt = type(value)(
                    **{
                        field.name: self.walk(getattr(value, field.name))
                        for field in fields
                    }
                )
                return self._remember(value, self._intern(rebuilt))
            return self._remember(value, value)
        instance_dict = getattr(value, "__dict__", None)
        if instance_dict is not None and type(value).__module__.startswith(
            "repro."
        ):
            # Plain repro objects (e.g. MatchReport): rebuild attribute
            # by attribute without re-running __init__.
            rebuilt = object.__new__(type(value))
            self._remember(value, rebuilt)
            for key, item in instance_dict.items():
                setattr(rebuilt, self.walk(key), self.walk(item))
            return rebuilt
        # Unknown foreign type: left untouched (its pickle bytes are its
        # own responsibility).
        return self._remember(value, value)


def canonicalize(value: Any) -> Any:
    """Rebuild ``value`` into its canonical form (equal, byte-stable).

    The result compares equal to the input; pickling it yields the same
    bytes for *any* equal-valued input graph, however it was assembled
    (serially, or merged from process-pool workers).
    """
    return _Canonicalizer().walk(value)
