"""Process-pool fan-out with a serial fallback and per-task retry.

:func:`run_tasks` is the execution core of the parallel engine: it maps a
picklable worker function over a list of task payloads, either serially
(``workers=1`` — same code path, no pool, useful both as a fallback and
as the deterministic baseline) or across a ``ProcessPoolExecutor``.
Results always come back in payload order, so callers can zip them
against their task keys regardless of scheduling order.

Failure handling is graceful-degradation by design: a task whose future
fails — including every outstanding future of a broken pool (a worker
crashed hard) — is retried serially in the parent process rather than
lost. Only a task that *also* fails serially propagates its error.
"""

from __future__ import annotations

import dataclasses
import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, TypeVar

from ..datamodel import ConfigurationError
from ..obs import get_logger, span

#: Default Monte Carlo samples per shard: large enough that pool overhead
#: amortises, small enough that 100k samples split across 4+ workers.
DEFAULT_SHARD_SIZE = 25_000

_LOG = get_logger("repro.parallel")

_T = TypeVar("_T")


@dataclasses.dataclass(frozen=True)
class ParallelConfig:
    """How a sampling workload fans out.

    Attributes:
        workers: process count; ``1`` runs every shard serially in the
            parent (no pool), which by construction produces the exact
            same results as any other worker count.
        shard_size: Monte Carlo samples per work unit. Results are
            bit-identical for a fixed ``(seed, n_samples, shard_size)``
            regardless of ``workers``; changing ``shard_size`` changes
            the shard RNG streams and therefore the sampled values.
    """

    workers: int = 1
    shard_size: int = DEFAULT_SHARD_SIZE

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.shard_size < 1:
            raise ConfigurationError("shard_size must be >= 1")

    @property
    def is_parallel(self) -> bool:
        return self.workers > 1


def resolve_workers(requested: int | None = None) -> int:
    """Worker count for a request; ``None``/``0`` means all CPU cores."""
    if not requested:
        return os.cpu_count() or 1
    return requested


def shard_sizes(n_samples: int, shard_size: int) -> list[int]:
    """Split ``n_samples`` into full shards plus a remainder shard."""
    if n_samples <= 0:
        raise ConfigurationError("n_samples must be positive")
    full, remainder = divmod(n_samples, shard_size)
    return [shard_size] * full + ([remainder] if remainder else [])


def run_tasks(
    fn: Callable[[Any], _T],
    payloads: Iterable[Any],
    workers: int = 1,
    label: str = "parallel.run",
) -> list[_T]:
    """Map ``fn`` over ``payloads``; results in payload order.

    ``workers <= 1`` (or a single payload) runs serially in-process. A
    pool that cannot be created (no process support) degrades to the
    serial path; an individual task failure is retried serially before
    the error is allowed to propagate.
    """
    items: Sequence[Any] = list(payloads)
    with span(label, workers=workers, tasks=len(items)) as trace:
        if workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        results: list[Any] = [None] * len(items)
        done: set[int] = set()
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(items))
            )
        except (OSError, NotImplementedError) as error:
            _LOG.warning("parallel.pool_unavailable", error=str(error))
            return [fn(item) for item in items]
        try:
            with pool:
                futures = {
                    pool.submit(fn, items[index]): index
                    for index in range(len(items))
                }
                for future in as_completed(futures):
                    index = futures[future]
                    try:
                        results[index] = future.result()
                        done.add(index)
                    except Exception as error:  # noqa: BLE001 - retried
                        _LOG.warning(
                            "parallel.task_failed",
                            task=index,
                            error=f"{type(error).__name__}: {error}",
                        )
        except Exception as error:  # noqa: BLE001 - pool-level failure
            _LOG.warning(
                "parallel.pool_broken",
                error=f"{type(error).__name__}: {error}",
            )
        # A crashed worker's shard is retried serially, not lost.
        for index in range(len(items)):
            if index in done:
                continue
            trace.incr("retried")
            _LOG.info("parallel.retry_serial", task=index)
            results[index] = fn(items[index])
        return results
