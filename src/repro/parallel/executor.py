"""Process-pool fan-out with a serial fallback, retry and telemetry.

:func:`run_tasks` is the execution core of the parallel engine: it maps a
picklable worker function over a list of task payloads, either serially
(``workers=1`` — same code path, no pool, useful both as a fallback and
as the deterministic baseline) or across a ``ProcessPoolExecutor``.
Results always come back in payload order, so callers can zip them
against their task keys regardless of scheduling order.

Telemetry crosses the process boundary (see :mod:`repro.obs.snapshot`):
each pooled task carries a :class:`~repro.obs.snapshot.TraceContext` and
returns a :class:`~repro.obs.snapshot.TelemetrySnapshot` alongside its
result. The parent merges snapshots in shard order, so ``--trace``
output shows worker-side spans under the submitting ``run_tasks`` span
(one ``<label>.task`` span per shard, tagged with shard index and pid)
and every ``repro_*`` counter/histogram recorded inside a worker is
exact at any worker count.

Failure handling is graceful-degradation by design: a task whose future
fails — including every outstanding future of a broken pool (a worker
crashed hard) — is retried serially in the parent process rather than
lost. Only a task that *also* fails serially propagates its error. The
retried shard indices are recorded on the span (``retried_shards``), in
a structured ``parallel.shards_retried`` log line, and in the
``repro_parallel_shard_retries_total`` counter.
"""

from __future__ import annotations

import dataclasses
import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, TypeVar

from ..datamodel import ConfigurationError
from ..obs import get_logger, get_registry, span
from ..obs.snapshot import (
    TelemetrySnapshot,
    TraceContext,
    begin_worker_capture,
    capture_context,
    finish_worker_capture,
    merge_snapshots,
)

#: Default Monte Carlo samples per shard: large enough that pool overhead
#: amortises, small enough that 100k samples split across 4+ workers.
DEFAULT_SHARD_SIZE = 25_000

_LOG = get_logger("repro.parallel")

_T = TypeVar("_T")


@dataclasses.dataclass(frozen=True)
class ParallelConfig:
    """How a sampling workload fans out.

    Attributes:
        workers: process count; ``1`` runs every shard serially in the
            parent (no pool), which by construction produces the exact
            same results as any other worker count.
        shard_size: Monte Carlo samples per work unit. Results are
            bit-identical for a fixed ``(seed, n_samples, shard_size)``
            regardless of ``workers``; changing ``shard_size`` changes
            the shard RNG streams and therefore the sampled values.
    """

    workers: int = 1
    shard_size: int = DEFAULT_SHARD_SIZE

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.shard_size < 1:
            raise ConfigurationError("shard_size must be >= 1")

    @property
    def is_parallel(self) -> bool:
        return self.workers > 1


def resolve_workers(requested: int | None = None) -> int:
    """Worker count for a request; ``None``/``0`` means all CPU cores."""
    if not requested:
        return os.cpu_count() or 1
    return requested


def shard_sizes(n_samples: int, shard_size: int) -> list[int]:
    """Split ``n_samples`` into full shards plus a remainder shard."""
    if n_samples <= 0:
        raise ConfigurationError("n_samples must be positive")
    full, remainder = divmod(n_samples, shard_size)
    return [shard_size] * full + ([remainder] if remainder else [])


@dataclasses.dataclass(frozen=True)
class _TaskEnvelope:
    """A pooled task's result plus the telemetry it recorded."""

    result: Any
    snapshot: TelemetrySnapshot


def _run_pooled_task(
    bundle: tuple[Callable[[Any], Any], Any, int, str, TraceContext],
) -> _TaskEnvelope:
    """Worker entry point: run one task under telemetry capture.

    Opens a ``<label>.task`` span (shard index + pid attributes) so a
    traced run always shows worker-side spans even when the task
    function itself records none.
    """
    fn, payload, index, label, context = bundle
    capture = begin_worker_capture(context)
    try:
        with span(f"{label}.task", shard=index, pid=os.getpid()):
            result = fn(payload)
    finally:
        snapshot = finish_worker_capture(capture)
    return _TaskEnvelope(result=result, snapshot=snapshot)


def run_tasks(
    fn: Callable[[Any], _T],
    payloads: Iterable[Any],
    workers: int = 1,
    label: str = "parallel.run",
) -> list[_T]:
    """Map ``fn`` over ``payloads``; results in payload order.

    ``workers <= 1`` (or a single payload) runs serially in-process. A
    pool that cannot be created (no process support) degrades to the
    serial path; an individual task failure is retried serially before
    the error is allowed to propagate. Worker telemetry snapshots are
    merged in shard order after all results are in.
    """
    items: Sequence[Any] = list(payloads)
    with span(label, workers=workers, tasks=len(items)) as trace:
        if workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        results: list[Any] = [None] * len(items)
        snapshots: list[TelemetrySnapshot | None] = [None] * len(items)
        done: set[int] = set()
        context = capture_context()
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(items))
            )
        except (OSError, NotImplementedError) as error:
            _LOG.warning("parallel.pool_unavailable", error=str(error))
            return [fn(item) for item in items]
        try:
            with pool:
                futures = {
                    pool.submit(
                        _run_pooled_task,
                        (fn, items[index], index, label, context),
                    ): index
                    for index in range(len(items))
                }
                for future in as_completed(futures):
                    index = futures[future]
                    try:
                        envelope = future.result()
                        results[index] = envelope.result
                        snapshots[index] = envelope.snapshot
                        done.add(index)
                    except Exception as error:  # noqa: BLE001 - retried
                        _LOG.warning(
                            "parallel.task_failed",
                            task=index,
                            error=f"{type(error).__name__}: {error}",
                        )
        except Exception as error:  # noqa: BLE001 - pool-level failure
            _LOG.warning(
                "parallel.pool_broken",
                error=f"{type(error).__name__}: {error}",
            )
        # A crashed worker's shard is retried serially, not lost — and
        # the exact shard indices are recorded for the operator.
        retried = [index for index in range(len(items)) if index not in done]
        if retried:
            get_registry().counter(
                "repro_parallel_shard_retries_total", label=label
            ).incr(len(retried))
            trace.incr("retried", len(retried))
            trace.set("retried_shards", ",".join(map(str, retried)))
            _LOG.warning(
                "parallel.shards_retried",
                label=label,
                count=len(retried),
                shards=",".join(map(str, retried)),
            )
        for index in retried:
            _LOG.info("parallel.retry_serial", task=index)
            results[index] = fn(items[index])
        # Shard-order merge: worker spans graft under this run's span and
        # metric deltas add exactly (retried shards recorded in-process).
        merge_snapshots(snapshots, context)
        return results
