"""``repro.parallel`` — the process-pool Monte Carlo execution engine.

Three layers, bottom-up:

* :mod:`repro.parallel.executor` — generic fan-out: map a worker function
  over task payloads across a ``ProcessPoolExecutor`` with a serial
  fallback at ``workers=1`` and serial retry of any shard whose worker
  crashed.
* :mod:`repro.parallel.sharedmem` — zero-copy transport: each cuisine's
  overlap matrix, recipe index arrays, frequency vector and category ids
  live in named shared-memory blocks; task payloads carry block names +
  shapes only (a few hundred bytes), never the matrices.
* :mod:`repro.parallel.montecarlo` — the sampling drivers: shard
  decomposition with ``SeedSequence.spawn`` determinism, streaming
  :class:`~repro.pairing.moments.StreamingMoments` reduction, and the
  fig4/fig5 sweeps.

Results are **bit-identical across worker counts** for a fixed
``(seed, n_samples, shard_size)``: shard RNG streams depend only on the
decomposition, and shard moments merge in shard-index order.
"""

from .canonical import canonicalize
from .executor import (
    DEFAULT_SHARD_SIZE,
    ParallelConfig,
    resolve_workers,
    run_tasks,
    shard_sizes,
)
from .montecarlo import (
    ContributionTask,
    ShardResult,
    ShardTask,
    model_moments,
    run_contribution_task,
    run_shard,
    shard_tasks,
    sweep_contributions,
    sweep_pairing_moments,
)
from .sharedmem import (
    AttachedView,
    BlockSpec,
    SharedViewSpec,
    SharedViewStore,
)

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "canonicalize",
    "ParallelConfig",
    "resolve_workers",
    "run_tasks",
    "shard_sizes",
    "ContributionTask",
    "ShardResult",
    "ShardTask",
    "model_moments",
    "run_contribution_task",
    "run_shard",
    "shard_tasks",
    "sweep_contributions",
    "sweep_pairing_moments",
    "AttachedView",
    "BlockSpec",
    "SharedViewSpec",
    "SharedViewStore",
]
