"""Zero-copy cuisine views over ``multiprocessing.shared_memory``.

The sampling workloads are dominated by reads of a few per-cuisine
arrays — the O(ingredients²) overlap matrix above all. Pickling those
into every task payload would copy the matrix once per shard; instead the
parent publishes each cuisine's numeric arrays into named shared-memory
blocks once (:class:`SharedViewStore`) and task payloads carry only a
:class:`SharedViewSpec` — block names, shapes and dtypes plus two small
string tuples — which is a few hundred bytes however large the cuisine.

Workers attach with :class:`AttachedView`, which maps the blocks and
rebuilds a *kernel* :class:`~repro.pairing.views.CuisineView`: the
``overlap``/``frequencies`` arrays and every recipe index array are numpy
views directly over the shared buffers (zero copy), while ``ingredients``
is empty — ingredient objects never cross the process boundary (see the
``CuisineView`` docstring). The kernel view supports everything the
samplers and the contribution sweep touch.

Lifetime: the store owns the blocks and unlinks them on ``close()`` (or
context-manager exit); attachments only ever ``close()`` their mapping.
Attachments bypass ``resource_tracker`` registration because the parent
is the sole owner — otherwise every worker's tracker would try to unlink
the parent's blocks at interpreter shutdown.
"""

from __future__ import annotations

import dataclasses
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..pairing.views import CuisineView


@dataclasses.dataclass(frozen=True)
class BlockSpec:
    """One shared-memory block: its name and array layout."""

    name: str
    shape: tuple[int, ...]
    dtype: str


@dataclasses.dataclass(frozen=True)
class SharedViewSpec:
    """Everything a worker needs to attach one cuisine view.

    Deliberately tiny: block descriptors plus the region code and the
    canonical category-name order (category *membership* travels as an
    ``int64`` array in shared memory, not as strings).
    """

    region_code: str
    category_order: tuple[str, ...]
    blocks: dict[str, BlockSpec]


class SharedViewStore:
    """Parent-side owner of the shared blocks for a set of cuisine views."""

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []

    def publish(self, view: CuisineView) -> SharedViewSpec:
        """Copy a view's numeric arrays into shared memory once."""
        sizes = view.recipe_sizes()
        offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        flat_recipes = (
            np.concatenate(view.recipes)
            if view.recipes
            else np.zeros(0, dtype=np.int64)
        ).astype(np.int64, copy=False)
        category_order = view.category_order
        category_index = {
            name: i for i, name in enumerate(category_order)
        }
        category_ids = np.asarray(
            [category_index[name] for name in view.categories],
            dtype=np.int64,
        )
        blocks = {
            "overlap": self._create_block(view.overlap),
            "flat_recipes": self._create_block(flat_recipes),
            "recipe_offsets": self._create_block(offsets),
            "frequencies": self._create_block(view.frequencies),
            "category_ids": self._create_block(category_ids),
        }
        return SharedViewSpec(
            region_code=view.region_code,
            category_order=category_order,
            blocks=blocks,
        )

    def _create_block(self, array: np.ndarray) -> BlockSpec:
        array = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes)
        )
        self._segments.append(segment)
        if array.size:
            destination = np.ndarray(
                array.shape, dtype=array.dtype, buffer=segment.buf
            )
            destination[...] = array
        return BlockSpec(
            name=segment.name,
            shape=tuple(array.shape),
            dtype=array.dtype.str,
        )

    def close(self) -> None:
        """Unmap and unlink every published block."""
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - arrays still exported
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedViewStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AttachedView:
    """Worker-side attachment: a kernel ``CuisineView`` over shared blocks.

    The arrays of :attr:`view` alias the shared buffers — drop every
    reference to the view before (or via) :meth:`close`.
    """

    def __init__(self, spec: SharedViewSpec) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        arrays: dict[str, np.ndarray] = {}
        for key, block in spec.blocks.items():
            segment = _attach_untracked(block.name)
            self._segments.append(segment)
            arrays[key] = np.ndarray(
                block.shape, dtype=np.dtype(block.dtype), buffer=segment.buf
            )
        offsets = arrays["recipe_offsets"]
        flat = arrays["flat_recipes"]
        recipes = tuple(
            flat[offsets[index] : offsets[index + 1]]
            for index in range(len(offsets) - 1)
        )
        categories = tuple(
            spec.category_order[int(cat_id)]
            for cat_id in arrays["category_ids"]
        )
        self.view = CuisineView(
            region_code=spec.region_code,
            ingredients=(),
            overlap=arrays["overlap"],
            recipes=recipes,
            frequencies=arrays["frequencies"],
            categories=categories,
        )

    def close(self) -> None:
        """Drop the view and unmap the blocks (never unlinks)."""
        self.view = None  # type: ignore[assignment]
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - lingering array ref
                pass
        self._segments = []

    def __enter__(self) -> "AttachedView":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a block without registering it with the resource tracker.

    ``SharedMemory(name=...)`` registers even plain attachments, so every
    worker's tracker would race the parent to unlink blocks it doesn't
    own (and spam ``KeyError`` warnings once the parent unlinks them
    first). Python 3.13 grew ``track=False`` for exactly this; here the
    registration hook is silenced for the duration of the attach instead.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
