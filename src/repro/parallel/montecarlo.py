"""Sharded Monte Carlo drivers for the pairing workloads.

This is the layer fig4/fig5 (and the service's ``/montecarlo`` endpoint)
sit on. A sampling request for ``(region, model, n_samples)`` becomes
``ceil(n_samples / shard_size)`` :class:`ShardTask` units; each worker
attaches the cuisine's shared-memory view, draws its shard with its own
spawned RNG, and returns a :class:`~repro.pairing.moments.StreamingMoments`
— never the raw score vector.

Determinism is by construction: per-shard generators derive from
``np.random.SeedSequence(stable_seed("null-model", region, model,
seed)).spawn(n_shards)``, so for a fixed ``(seed, n_samples,
shard_size)`` the shard streams — and the shard-index-ordered moment
merge — are identical regardless of worker count or scheduling order.
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections.abc import Mapping, Sequence

import numpy as np

from ..flavordb import stable_seed
from ..obs import get_registry, span
from ..pairing.models import (
    DEFAULT_CHUNK,
    NullModel,
    sample_model_moments,
)
from ..pairing.moments import StreamingMoments
from ..pairing.views import CuisineView
from .executor import ParallelConfig, run_tasks, shard_sizes
from .sharedmem import AttachedView, SharedViewSpec, SharedViewStore


@dataclasses.dataclass(frozen=True)
class ShardTask:
    """One Monte Carlo work unit: a shard of one (region, model) request.

    Carries only the shared-memory spec, the model name, the shard's
    spawned seed sequence and two integers — a test caps its pickled
    size to guarantee no worker ever receives an overlap matrix.
    """

    spec: SharedViewSpec
    model_value: str
    seed_seq: np.random.SeedSequence
    n_samples: int
    chunk: int = DEFAULT_CHUNK


@dataclasses.dataclass(frozen=True)
class ShardResult:
    """A worker's shard: its moments plus throughput bookkeeping."""

    moments: StreamingMoments
    samples: int
    elapsed: float
    pid: int


def run_shard(task: ShardTask) -> ShardResult:
    """Worker entry point: attach, sample one shard, return its moments.

    Records ``repro_montecarlo_*`` series *in the worker*; the executor
    harvests them back as deltas, so the merged registry reads the same
    totals (and the same histogram window, merged in shard order) at any
    worker count.
    """
    started = time.perf_counter()
    with span(
        "montecarlo.shard",
        region=task.spec.region_code,
        model=task.model_value,
    ) as trace:
        attached = AttachedView(task.spec)
        try:
            rng = np.random.Generator(np.random.PCG64(task.seed_seq))
            moments = sample_model_moments(
                attached.view,
                NullModel(task.model_value),
                task.n_samples,
                rng,
                chunk=task.chunk,
            )
        finally:
            attached.close()
        trace.incr("samples", task.n_samples)
    registry = get_registry()
    registry.counter("repro_montecarlo_shards_total").incr()
    registry.counter(
        "repro_montecarlo_samples_total", model=task.model_value
    ).incr(task.n_samples)
    registry.histogram("repro_montecarlo_shard_samples").observe(
        float(task.n_samples)
    )
    return ShardResult(
        moments=moments,
        samples=task.n_samples,
        elapsed=time.perf_counter() - started,
        pid=os.getpid(),
    )


def shard_tasks(
    spec: SharedViewSpec,
    model: NullModel,
    n_samples: int,
    config: ParallelConfig,
    seed: int | None = None,
    chunk: int = DEFAULT_CHUNK,
) -> list[ShardTask]:
    """The deterministic shard decomposition of one (region, model)."""
    seed_label = "default" if seed is None else str(seed)
    root = np.random.SeedSequence(
        stable_seed(
            "null-model", spec.region_code, model.value, seed_label
        )
    )
    sizes = shard_sizes(n_samples, config.shard_size)
    return [
        ShardTask(
            spec=spec,
            model_value=model.value,
            seed_seq=child,
            n_samples=size,
            chunk=chunk,
        )
        for child, size in zip(root.spawn(len(sizes)), sizes)
    ]


def sweep_pairing_moments(
    views: Mapping[str, CuisineView],
    models: Sequence[NullModel],
    n_samples: int,
    config: ParallelConfig,
    seed: int | None = None,
    chunk: int = DEFAULT_CHUNK,
) -> dict[tuple[str, NullModel], StreamingMoments]:
    """Null-model score moments for every (region, model) pair.

    All shards of all pairs go through one pool, so slow regions overlap
    with fast ones. Shard moments merge in shard-index order per key —
    results are independent of completion order and worker count.
    """
    with span(
        "parallel.sweep",
        regions=len(views),
        models=len(models),
        n_samples=n_samples,
        workers=config.workers,
        shard_size=config.shard_size,
    ) as trace:
        with SharedViewStore() as store:
            tasks: list[ShardTask] = []
            keys: list[tuple[str, NullModel]] = []
            for region_code, view in views.items():
                spec = store.publish(view)
                for model in models:
                    for task in shard_tasks(
                        spec, model, n_samples, config, seed, chunk
                    ):
                        tasks.append(task)
                        keys.append((region_code, model))
            results = run_tasks(
                run_shard,
                tasks,
                workers=config.workers,
                label="parallel.montecarlo",
            )
        merged: dict[tuple[str, NullModel], StreamingMoments] = {}
        for key, result in zip(keys, results):
            previous = merged.get(key)
            merged[key] = (
                result.moments
                if previous is None
                else previous.merge(result.moments)
            )
        _surface_throughput(trace, results)
        return merged


def model_moments(
    view: CuisineView,
    model: NullModel,
    n_samples: int,
    config: ParallelConfig,
    seed: int | None = None,
    chunk: int = DEFAULT_CHUNK,
) -> StreamingMoments:
    """Moments for a single (region, model) request (service batch path)."""
    sweep = sweep_pairing_moments(
        {view.region_code: view}, (model,), n_samples, config, seed, chunk
    )
    return sweep[(view.region_code, model)]


# ---------------------------------------------------------------------------
# fig5: leave-one-out contribution sweep
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ContributionTask:
    """One region's full leave-one-out chi sweep."""

    spec: SharedViewSpec


def run_contribution_task(task: ContributionTask) -> np.ndarray:
    """Worker entry point: chi_i for every ingredient of one cuisine."""
    from ..pairing.contribution import chi_values

    attached = AttachedView(task.spec)
    try:
        chi = np.array(chi_values(attached.view), copy=True)
    finally:
        attached.close()
    return chi


def sweep_contributions(
    views: Mapping[str, CuisineView], config: ParallelConfig
) -> dict[str, np.ndarray]:
    """Per-region chi vectors, one worker task per region.

    The computation is exact (no sampling), so the parallel result is
    identical to the serial one; workers return bare ``float64`` vectors
    and the parent re-attaches ingredient names.
    """
    with span(
        "parallel.contributions", regions=len(views), workers=config.workers
    ):
        with SharedViewStore() as store:
            codes = list(views)
            tasks = [
                ContributionTask(spec=store.publish(views[code]))
                for code in codes
            ]
            results = run_tasks(
                run_contribution_task,
                tasks,
                workers=config.workers,
                label="parallel.chi",
            )
        return dict(zip(codes, results))


def _surface_throughput(trace, results: Sequence[ShardResult]) -> None:
    """Per-worker throughput counters on the parent sweep span."""
    by_pid: dict[int, list[float]] = {}
    total_samples = 0
    for result in results:
        samples, elapsed = by_pid.setdefault(result.pid, [0, 0.0])
        by_pid[result.pid] = [samples + result.samples, elapsed + result.elapsed]
        total_samples += result.samples
    trace.incr("shards", len(results))
    trace.incr("samples", total_samples)
    trace.set("workers_used", len(by_pid))
    for slot, pid in enumerate(sorted(by_pid)):
        samples, elapsed = by_pid[pid]
        rate = round(samples / elapsed) if elapsed > 0 else 0
        trace.set(f"worker{slot}.samples_per_sec", rate)
