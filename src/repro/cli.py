"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — list available experiments.
* ``run <id>`` — run one experiment and print its table
  (``--scale``/``--samples`` control corpus size and null-model samples).
* ``fig4`` / ``fig5`` — shortcuts for ``run fig4`` / ``run fig5``.
* ``build-db --out DIR`` — generate the corpus, alias it, build CulinaryDB
  and persist it as CSV.
* ``query --db DIR "SELECT ..."`` — run SQL against a persisted database.
* ``serve`` — build a workspace once and serve it over the HTTP JSON API
  (see :mod:`repro.service`); ``--transport async|thread`` picks the
  event-loop front door (default, with admission control and graceful
  drain) or the threaded reference; ``--preload`` fully warms the
  service before the socket binds.
* ``loadtest URL`` — drive a running server with keep-alive
  connections (``--mix smoke|hot|spread``) and report throughput and
  latency percentiles; exits nonzero on any transport error or 5xx.
* ``similar TARGET`` — top-k flavor-sharing ingredients from the
  retrieval index (``--cuisine`` ranks nearest cuisines instead; see
  :mod:`repro.retrieval`).
* ``recommend --region X`` — index-backed novel recipe proposals plus
  the region's nearest cuisines.
* ``cache ls|info|clear`` — inspect or empty the stage-artifact disk
  cache (see :mod:`repro.engine`).
* ``obs check`` — the perf-regression watchdog: compare fresh
  ``BENCH_*.json`` results against the committed baselines and exit
  nonzero on a regression (see :mod:`repro.obs.watchdog`).

Every run parameter flows through one :class:`repro.engine.RunConfig`:
the ``--seed``/``--scale``/``--samples``/``--workers``/``--shard-size``/
``--cache-dir`` flags are *generated* from its field metadata
(:func:`repro.engine.config_parent_parser`), so each flag has a single
definition shared by all subcommands. Passing ``--cache-dir`` (or
setting ``$REPRO_CACHE_DIR``) enables the on-disk stage-artifact cache:
a second run warm-loads the corpus/aliasing/cuisines/pairing-view
artifacts instead of rebuilding them, and prints a cache summary line to
stderr (``engine cache: hits=... builds=...``).

``--workers N`` fans work across a process pool (``0`` = one per CPU
core): Monte Carlo shards for the sampling commands
(``run``/``fig4``/``fig5``/``report``, with ``--shard-size`` setting
the shard decomposition; see :mod:`repro.parallel`) and the cold
corpus-generation/aliasing stage builds for every command that builds a
workspace (including ``build-db``). Without ``--workers`` everything
runs serially, unchanged. Results never depend on the worker count:
stage artifacts are byte-identical for any ``--workers`` value, and
``fig4 --z-out PATH`` writes full-precision Z-scores that depend only
on ``(seed, samples, shard-size)`` — which is what the CI determinism
checks diff.

Every command accepts the global observability flags (see
:mod:`repro.obs`): ``--trace`` prints a span timing tree on exit,
``--trace-out PATH`` writes the trace artifact (``.json`` = Chrome
trace-event format, anything else = JSONL), ``--log-json`` switches the
structured logs to JSON lines, and ``--log-level`` sets their threshold.
``--profile`` runs the whole command under the sampling profiler
(:mod:`repro.obs.profile`) and prints the hottest stacks on exit;
``--profile-out PATH`` writes the capture (``.json`` = speedscope,
anything else = collapsed stacks). ``--metrics-out PATH`` dumps the
final metrics-registry snapshot as JSON. With ``--trace`` and
``--workers N`` together, worker-side spans and counters are harvested
back into the parent (see :mod:`repro.obs.snapshot`), so the printed
tree and the metrics dump are complete at any worker count.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from .engine import (
    RunConfig,
    config_from_args,
    config_parent_parser,
    positive_float,
    positive_int,
)
from .experiments import EXPERIMENTS, workspace_for
from .experiments.fig4 import run_fig4
from .obs import configure_logging, configure_tracing, get_tracer
from .retrieval import DEFAULT_TOPK, MAX_TOPK


def _topk_int(value: str) -> int:
    """Positive int capped at :data:`repro.retrieval.MAX_TOPK`.

    The same ceiling the service applies to ``/pairings``' partner limit
    and the retrieval endpoints' ``k``.
    """
    k = positive_int(value)
    if k > MAX_TOPK:
        raise argparse.ArgumentTypeError(
            f"must be at most {MAX_TOPK}, got {k}"
        )
    return k


def _observability_flags() -> argparse.ArgumentParser:
    """Shared parent parser: the global tracing/logging flags."""
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("observability")
    group.add_argument(
        "--trace",
        action="store_true",
        help="collect spans and print the timing tree on exit",
    )
    group.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "write the trace to PATH (.json = Chrome trace-event format, "
            "otherwise JSONL); implies --trace"
        ),
    )
    group.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured logs as JSON lines instead of key=value",
    )
    group.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="minimum structured-log level (default: info)",
    )
    group.add_argument(
        "--profile",
        action="store_true",
        help=(
            "sample the command under the wall-clock profiler and print "
            "the hottest stacks on exit"
        ),
    )
    group.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help=(
            "write the profile to PATH (.json = speedscope, otherwise "
            "collapsed stacks); implies --profile"
        ),
    )
    group.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the final metrics-registry snapshot as JSON",
    )
    return common


def _build_parser() -> argparse.ArgumentParser:
    obs_flags = _observability_flags()
    # One generated parent per flag set; every subcommand below reuses
    # these, so flag names/validators/help live only on RunConfig.
    run_flags = config_parent_parser()
    corpus_flags = config_parent_parser(
        fields=("seed", "recipe_scale", "workers", "cache_dir", "no_disk_cache")
    )
    serve_flags = config_parent_parser(
        fields=(
            "seed",
            "recipe_scale",
            "workers",
            "shard_size",
            "cache_dir",
            "no_disk_cache",
        )
    )
    cache_flags = config_parent_parser(fields=("cache_dir",))

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Data-driven investigations of culinary "
            "patterns in traditional recipes across the world' (ICDE 2018)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list", help="list available experiments", parents=[obs_flags]
    )

    run = sub.add_parser(
        "run",
        help="run one experiment",
        parents=[obs_flags, run_flags],
    )
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))

    fig4 = sub.add_parser(
        "fig4",
        help="shortcut for 'run fig4' (Z-scores vs the null models)",
        parents=[obs_flags, run_flags],
    )
    fig4.add_argument(
        "--z-out",
        metavar="PATH",
        default=None,
        help=(
            "write the full-precision Z-scores as JSON "
            "(independent of --workers; used by the CI determinism check)"
        ),
    )

    sub.add_parser(
        "fig5",
        help="shortcut for 'run fig5' (top contributing ingredients)",
        parents=[obs_flags, run_flags],
    )

    build = sub.add_parser(
        "build-db",
        help="generate corpus and persist CulinaryDB as CSV",
        parents=[obs_flags, corpus_flags],
    )
    build.add_argument("--out", required=True, help="output directory")

    query = sub.add_parser(
        "query", help="run SQL against a persisted DB", parents=[obs_flags]
    )
    query.add_argument("--db", required=True, help="database directory")
    query.add_argument("sql", help="SELECT statement")

    report = sub.add_parser(
        "report",
        help="run every experiment and write text tables",
        parents=[obs_flags, run_flags],
    )
    report.add_argument("--out", required=True, help="output directory")
    report.add_argument(
        "--csv",
        action="store_true",
        help="also write the raw figure series as CSV",
    )

    alias = sub.add_parser(
        "alias",
        help="alias a raw ingredient phrase against the catalog",
        parents=[obs_flags],
    )
    alias.add_argument("phrase", nargs="+", help="the ingredient line")
    alias.add_argument(
        "--fuzzy", action="store_true", help="enable typo correction"
    )

    serve = sub.add_parser(
        "serve",
        help="serve the workspace over an HTTP JSON API",
        parents=[obs_flags, serve_flags],
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port (0 picks a free port)",
    )
    serve.add_argument(
        "--cache-size",
        type=positive_int,
        default=1024,
        help="result-cache capacity in entries",
    )
    serve.add_argument(
        "--ttl",
        type=positive_float,
        default=None,
        help="result-cache entry lifetime in seconds (default: no expiry)",
    )
    serve.add_argument(
        "--no-warm",
        action="store_true",
        help="skip pre-building the classifier and CulinaryDB at start-up",
    )
    serve.add_argument(
        "--preload",
        action="store_true",
        help=(
            "fully warm the service (workspace, classifier, CulinaryDB, "
            "every region's pairing view) before binding the socket"
        ),
    )
    serve.add_argument(
        "--stats",
        action="store_true",
        help="print the per-endpoint metrics summary on shutdown",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve.add_argument(
        "--transport",
        choices=("async", "thread"),
        default="async",
        help=(
            "front door: the asyncio event loop (default) or the "
            "original one-thread-per-connection server"
        ),
    )
    serve.add_argument(
        "--max-connections",
        type=positive_int,
        default=1024,
        help="concurrent connections before shedding (async transport)",
    )
    serve.add_argument(
        "--max-inflight",
        type=positive_int,
        default=64,
        help="per-endpoint concurrent executions (async transport)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=256,
        help=(
            "per-endpoint admission queue beyond --max-inflight; "
            "excess requests get 503 overloaded (async transport)"
        ),
    )
    serve.add_argument(
        "--rate-limit",
        type=positive_float,
        default=None,
        help=(
            "per-endpoint requests/second token bucket; excess gets "
            "429 rate_limited (async transport; default: off)"
        ),
    )
    serve.add_argument(
        "--drain-timeout",
        type=positive_float,
        default=10.0,
        help="seconds to wait for in-flight requests on shutdown",
    )
    serve.add_argument(
        "--executor-workers",
        type=positive_int,
        default=None,
        help="dispatch thread-pool size (async transport; default: auto)",
    )

    loadtest = sub.add_parser(
        "loadtest",
        help="replay an endpoint mix against a running server",
        parents=[obs_flags],
    )
    loadtest.add_argument(
        "url", help="server base URL (e.g. http://127.0.0.1:8080)"
    )
    loadtest.add_argument(
        "--mix",
        choices=("smoke", "hot", "spread"),
        default="smoke",
        help=(
            "request mix: every endpoint (smoke), one hot cacheable "
            "key (hot), or distinct cache keys (spread)"
        ),
    )
    loadtest.add_argument(
        "--connections",
        type=positive_int,
        default=8,
        help="concurrent keep-alive connections",
    )
    loadtest.add_argument(
        "--requests",
        type=positive_int,
        default=200,
        help="total requests across all connections",
    )
    loadtest.add_argument(
        "--timeout",
        type=positive_float,
        default=30.0,
        help="per-request timeout in seconds",
    )
    loadtest.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the report as a BENCH-style JSON document",
    )

    similar = sub.add_parser(
        "similar",
        help="top-k similar ingredients (or cuisines, with --cuisine)",
        parents=[obs_flags, corpus_flags],
    )
    similar.add_argument(
        "target",
        nargs="+",
        help="ingredient phrase (or a region code with --cuisine)",
    )
    similar.add_argument(
        "--cuisine",
        action="store_true",
        help="treat TARGET as a region code and rank nearest cuisines",
    )
    similar.add_argument(
        "-k",
        "--top",
        type=_topk_int,
        default=DEFAULT_TOPK,
        help=f"results to show (default {DEFAULT_TOPK}, max {MAX_TOPK})",
    )
    similar.add_argument(
        "--fuzzy", action="store_true", help="enable typo correction"
    )

    recommend = sub.add_parser(
        "recommend",
        help="index-backed novel recipe proposals for one region",
        parents=[obs_flags, corpus_flags],
    )
    recommend.add_argument(
        "--region", required=True, help="region code (e.g. ITA)"
    )
    recommend.add_argument(
        "--count",
        type=positive_int,
        default=3,
        help="proposals to generate (default 3)",
    )
    recommend.add_argument(
        "--size",
        type=positive_int,
        default=None,
        help="recipe size (default: sampled from the cuisine's own sizes)",
    )
    recommend.add_argument(
        "--proposal-seed",
        type=int,
        default=0,
        help="RNG seed for the proposals (default 0)",
    )
    recommend.add_argument(
        "-k",
        "--top",
        type=_topk_int,
        default=5,
        help=f"nearest cuisines to list (default 5, max {MAX_TOPK})",
    )

    cache = sub.add_parser(
        "cache",
        help="inspect or empty the stage-artifact disk cache",
        parents=[obs_flags, cache_flags],
    )
    cache.add_argument(
        "action",
        choices=("ls", "info", "clear"),
        help="ls = list artifacts, info = summary, clear = remove all",
    )

    obs = sub.add_parser(
        "obs",
        help="observability utilities (perf-regression watchdog)",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    check = obs_sub.add_parser(
        "check",
        help="compare fresh BENCH_*.json results against baselines",
        parents=[obs_flags],
    )
    check.add_argument(
        "--baseline-dir",
        default=".",
        help="directory holding the committed BENCH_*.json (default: .)",
    )
    check.add_argument(
        "--results-dir",
        default=None,
        help=(
            "directory holding fresh results; default is the baseline "
            "directory itself (self-comparison, trivially passing)"
        ),
    )
    check.add_argument(
        "--tolerance",
        type=positive_float,
        default=None,
        help="allowed relative slip in the bad direction (default 0.30)",
    )
    check.add_argument(
        "--tolerance-for",
        metavar="METRIC=FRACTION",
        action="append",
        default=[],
        help=(
            "per-metric tolerance override (dotted path or leaf name); "
            "repeatable"
        ),
    )
    check.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the machine-readable verdict JSON to PATH",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    configure_logging(level=args.log_level, json_mode=args.log_json)
    profiler = None
    if args.profile or args.profile_out:
        from .obs import SamplingProfiler

        profiler = SamplingProfiler().start()
    try:
        exit_code = _run_traced(args)
    finally:
        if profiler is not None:
            profiler.stop()
            print(f"\n# profile\n{profiler.render_top()}", file=sys.stderr)
            if args.profile_out:
                profiler.write(args.profile_out)
                print(
                    f"profile written to {args.profile_out}", file=sys.stderr
                )
    if args.metrics_out:
        _write_metrics_snapshot(args.metrics_out)
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    return exit_code


def _run_traced(args: argparse.Namespace) -> int:
    """Run the command, under the span tracer when ``--trace`` asks."""
    tracing = bool(args.trace or args.trace_out)
    if not tracing:
        return _run_command(args)
    tracer = configure_tracing(True)
    tracer.reset()
    try:
        with tracer.span(f"cli.{args.command}"):
            exit_code = _run_command(args)
        print(f"\n# trace\n{tracer.render_tree()}", file=sys.stderr)
        if args.trace_out:
            tracer.write(args.trace_out)
            print(f"trace written to {args.trace_out}", file=sys.stderr)
        return exit_code
    finally:
        configure_tracing(False)
        tracer.reset()


def _write_metrics_snapshot(path: str) -> None:
    """The final registry snapshot as sorted JSON (CI diffs these)."""
    import json

    from .obs import get_registry

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            get_registry().snapshot(), handle, indent=2, sort_keys=True
        )
        handle.write("\n")


def _print_cache_summary(config: RunConfig) -> None:
    """One stderr line summarising engine cache traffic (CI greps it)."""
    if not config.disk_cache_enabled:
        return
    from .engine import engine_cache_summary

    print(engine_cache_summary(), file=sys.stderr)


def _run_command(args: argparse.Namespace) -> int:
    if args.command == "list":
        for name, (_runner, description) in sorted(EXPERIMENTS.items()):
            print(f"{name:8s} {description}")
        return 0

    if args.command in ("run", "fig4", "fig5"):
        experiment = (
            args.experiment if args.command == "run" else args.command
        )
        started = time.perf_counter()
        config = config_from_args(args)
        workspace = workspace_for(config)
        runner, description = EXPERIMENTS[experiment]
        print(f"# {experiment}: {description}")
        result = _run_experiment(runner, workspace, config)
        print(result.render())
        z_out = getattr(args, "z_out", None)
        if z_out is not None:
            _write_z_scores(result, z_out)
            print(f"z-scores written to {z_out}")
        print(f"\n[{time.perf_counter() - started:.1f}s]")
        _print_cache_summary(config)
        return 0

    if args.command == "build-db":
        from .culinarydb import CulinaryDB, build_culinarydb

        config = config_from_args(args)
        workspace = workspace_for(config)
        database = build_culinarydb(
            workspace.recipes,
            workspace.catalog,
            raw_recipes=workspace.corpus.raw_recipes,
        )
        CulinaryDB(database).save(args.out)
        print(f"wrote {database!r} to {args.out}")
        _print_cache_summary(config)
        return 0

    if args.command == "query":
        from .culinarydb import CulinaryDB
        from .reporting import render_dict_table

        culinary = CulinaryDB.load(args.db)
        rows = culinary.db.sql(args.sql)
        print(render_dict_table(rows))
        return 0

    if args.command == "report":
        from pathlib import Path

        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        config = config_from_args(args)
        workspace = workspace_for(config)
        csv_exporters = {}
        if args.csv:
            from .reporting import (
                export_fig2,
                export_fig3a,
                export_fig3b,
                export_fig4,
                export_fig5,
            )

            csv_exporters = {
                "fig2": export_fig2,
                "fig3a": export_fig3a,
                "fig3b": export_fig3b,
                "fig4": export_fig4,
                "fig5": export_fig5,
            }
        for name, (runner, description) in sorted(EXPERIMENTS.items()):
            started = time.perf_counter()
            result = _run_experiment(runner, workspace, config)
            text = f"# {name}: {description}\n\n{result.render()}\n"
            (out / f"{name}.txt").write_text(text, encoding="utf-8")
            exporter = csv_exporters.get(name)
            if exporter is not None:
                exporter(result, out)
            print(f"{name}: written ({time.perf_counter() - started:.1f}s)")
        _print_cache_summary(config)
        return 0

    if args.command == "alias":
        from .aliasing import AliasingPipeline

        pipeline = AliasingPipeline(fuzzy=args.fuzzy)
        resolution = pipeline.resolve_phrase(" ".join(args.phrase))
        names = ", ".join(i.name for i in resolution.ingredients) or "(none)"
        print(f"kind: {resolution.kind.value}")
        print(f"ingredients: {names}")
        if resolution.leftover_tokens:
            print(f"leftover: {' '.join(resolution.leftover_tokens)}")
        return 0

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "loadtest":
        return _run_loadtest(args)

    if args.command == "similar":
        return _run_similar(args)

    if args.command == "recommend":
        return _run_recommend(args)

    if args.command == "cache":
        return _run_cache(args)

    if args.command == "obs":
        return _run_obs(args)

    return 1  # pragma: no cover - argparse enforces the choices


def _run_obs(args: argparse.Namespace) -> int:
    """``repro obs check`` — the perf-regression watchdog."""
    import json

    from .obs.watchdog import DEFAULT_TOLERANCE, check_benchmarks

    overrides: dict[str, float] = {}
    for spec in args.tolerance_for:
        metric, _, value = spec.partition("=")
        if not metric or not value:
            print(
                f"error: --tolerance-for expects METRIC=FRACTION, "
                f"got {spec!r}",
                file=sys.stderr,
            )
            return 2
        try:
            overrides[metric] = float(value)
        except ValueError:
            print(
                f"error: invalid tolerance {value!r} for {metric!r}",
                file=sys.stderr,
            )
            return 2
    tolerance = (
        DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    )
    report = check_benchmarks(
        baseline_dir=args.baseline_dir,
        results_dir=args.results_dir,
        tolerance=tolerance,
        overrides=overrides,
    )
    print(report.render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"verdict written to {args.out}", file=sys.stderr)
    return 0 if report.ok else 1


def _run_serve(args: argparse.Namespace) -> int:
    from .service import QueryService, ResultCache, ServiceApp

    config = config_from_args(args)
    started = time.perf_counter()
    print(
        f"building workspace (scale={config.recipe_scale}) ...", flush=True
    )
    workspace = workspace_for(config)
    service = QueryService(workspace, config)
    if args.preload:
        service.preload()
    elif not args.no_warm:
        service.warm()
    warm_seconds = time.perf_counter() - started
    app = ServiceApp(
        service,
        cache=ResultCache(capacity=args.cache_size, ttl=args.ttl),
    )

    # Warm-up happens entirely before the socket binds: the first
    # request never pays a build, and with --cache-dir a restart
    # warm-loads the stage artifacts instead of regenerating them.
    def banner(url: str) -> None:
        print(
            f"serving {len(workspace.recipes)} recipes at {url} "
            f"({warm_seconds:.1f}s to warm, transport={args.transport}); "
            "Ctrl-C to stop",
            flush=True,
        )
        _print_cache_summary(config)

    if args.transport == "thread":
        code = _serve_threaded(args, app, banner)
    else:
        code = _serve_async(args, app, banner)
    if args.stats:
        print("\n" + app.metrics.render_summary())
    return code


def _serve_threaded(
    args: argparse.Namespace, app: Any, banner: Any
) -> int:
    from .service import create_server

    server = create_server(
        app, host=args.host, port=args.port, verbose=args.verbose
    )
    banner(server.url)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    return 0


def _serve_async(args: argparse.Namespace, app: Any, banner: Any) -> int:
    import asyncio

    from .service import AdmissionLimits, AsyncServiceServer

    server = AsyncServiceServer(
        app,
        host=args.host,
        port=args.port,
        limits=AdmissionLimits(
            max_inflight=args.max_inflight,
            max_queue=args.queue_depth,
            rate_limit=args.rate_limit,
        ),
        max_connections=args.max_connections,
        executor_workers=args.executor_workers,
        drain_timeout=args.drain_timeout,
        verbose=args.verbose,
    )
    try:
        clean = asyncio.run(
            server.run(on_started=lambda: banner(server.url))
        )
    except KeyboardInterrupt:
        # Loops without signal-handler support (or a second Ctrl-C
        # during drain) land here; the socket is gone either way.
        return 1
    print(
        "drained cleanly"
        if clean
        else "drain timed out; in-flight requests were abandoned",
        flush=True,
    )
    return 0 if clean else 1


def _run_loadtest(args: argparse.Namespace) -> int:
    """``repro loadtest`` — replay a mix against a running server."""
    import json

    from .service.loadtest import run_loadtest

    report = run_loadtest(
        args.url,
        mix=args.mix,
        connections=args.connections,
        requests=args.requests,
        timeout=args.timeout,
    )
    print(report.render())
    if args.output:
        # Mix reports nest under "mixes" so the top level stays free
        # for the BENCH-doc conventions (e.g. the "smoke" bool flag).
        doc = {"benchmark": "service_load", "mixes": {args.mix: report.as_dict()}}
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.output}", file=sys.stderr)
    return 0 if report.errors == 0 else 1


def _run_similar(args: argparse.Namespace) -> int:
    """``repro similar`` — top-k neighbors off the retrieval index."""
    from .retrieval import nearest_cuisines, similar_ingredients

    config = config_from_args(args)
    workspace = workspace_for(config)
    index = workspace.retrieval()
    target = " ".join(args.target)
    if args.cuisine:
        code = target.upper()
        if code not in index.cuisine_row:
            known = ", ".join(index.cuisine_codes)
            print(
                f"error: unknown region {code!r} (known: {known})",
                file=sys.stderr,
            )
            return 2
        print(f"# cuisines nearest {code}")
        for match in nearest_cuisines(index, code, args.top):
            print(f"{match.region_code:6s} {match.similarity:.6f}")
        _print_cache_summary(config)
        return 0
    from .aliasing import AliasingPipeline

    pipeline = AliasingPipeline(workspace.catalog, fuzzy=args.fuzzy)
    resolution = pipeline.resolve_phrase(target)
    if not resolution.ingredients:
        print(
            f"error: unrecognised ingredient {target!r}", file=sys.stderr
        )
        return 2
    ingredient = resolution.ingredients[0]
    if not ingredient.has_flavor_profile:
        print(
            f"error: {ingredient.name!r} has no flavor profile to pair on",
            file=sys.stderr,
        )
        return 2
    print(f"# ingredients most similar to {ingredient.name}")
    matches = similar_ingredients(
        index, workspace.catalog, ingredient, args.top
    )
    for match in matches:
        print(f"{match.shared_molecules:4d}  {match.name}")
    _print_cache_summary(config)
    return 0


def _run_recommend(args: argparse.Namespace) -> int:
    """``repro recommend`` — index-backed proposals for one region."""
    import numpy as np

    from .generation import RecipeDesigner
    from .retrieval import nearest_cuisines

    config = config_from_args(args)
    workspace = workspace_for(config)
    index = workspace.retrieval()
    code = args.region.upper()
    views = workspace.views()
    view = views.get(code)
    if view is None:
        known = ", ".join(sorted(views))
        print(
            f"error: unknown region {code!r} (known: {known})",
            file=sys.stderr,
        )
        return 2
    designer = RecipeDesigner(view, index=index)
    rng = np.random.default_rng(args.proposal_seed)
    print(
        f"# {args.count} proposal(s) for {code} "
        f"(seed {args.proposal_seed})"
    )
    for number in range(1, args.count + 1):
        proposal = designer.propose(rng, size=args.size)
        novelty = 1.0 - proposal.max_overlap
        print(
            f"\n[{number}] N_s={proposal.pairing_score:.3f} "
            f"style={proposal.style_score:.3f} novelty={novelty:.2f}"
        )
        print("    " + ", ".join(proposal.ingredient_names))
    if code in index.cuisine_row:
        print("\n# nearest cuisines")
        for match in nearest_cuisines(index, code, args.top):
            print(f"{match.region_code:6s} {match.similarity:.6f}")
    _print_cache_summary(config)
    return 0


def _run_cache(args: argparse.Namespace) -> int:
    """``repro cache ls|info|clear`` over the artifact store."""
    import json

    from .engine import ArtifactStore

    config = config_from_args(args)
    store = ArtifactStore(config.resolved_cache_dir)
    if args.action == "ls":
        entries = sorted(
            store.entries(), key=lambda entry: (entry.stage, -entry.modified)
        )
        if not entries:
            print(f"(empty) {store.root}")
            return 0
        for entry in entries:
            print(
                f"{entry.stage:16s} {entry.fingerprint[:16]} "
                f"{entry.size:>12,d} B  "
                f"{time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(entry.modified))}"
            )
        print(f"{len(entries)} artifact(s), {store.total_bytes():,d} B total")
        return 0
    if args.action == "info":
        print(json.dumps(store.info(), indent=2, sort_keys=True))
        return 0
    removed = store.clear()
    print(f"removed {removed} artifact(s) from {store.root}")
    return 0


def _run_experiment(runner, workspace, config: RunConfig):
    """Invoke one experiment runner with the flags it understands."""
    from .experiments.fig5 import run_fig5

    if runner is run_fig4:
        return runner(
            workspace,
            n_samples=config.n_samples,
            parallel=config.parallel(),
            seed=config.sampling_seed,
        )
    if runner is run_fig5:
        return runner(workspace, parallel=config.parallel())
    return runner(workspace)


def _write_z_scores(result, path: str) -> None:
    """Full-precision fig4 Z-scores as JSON, for determinism diffs.

    Deliberately records the sampling inputs (``n_samples``) but nothing
    about the execution (worker count, shard scheduling), so two runs
    with different ``--workers`` produce byte-identical files.
    """
    import json

    from .pairing import NullModel

    payload = {
        "n_samples": result.n_samples,
        "regions": {
            code: {
                model.value: detail.comparisons[model].z_score
                for model in NullModel
                if model in detail.comparisons
            }
            for code, detail in sorted(result.details.items())
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
