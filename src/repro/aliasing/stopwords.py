"""Stopword, unit and measure-word lists for ingredient-phrase parsing.

The paper removes "stopwords, including some culinary stopwords" with NLTK;
NLTK is not available offline, so we carry our own lists:

* :data:`ENGLISH_STOPWORDS` — ordinary function words,
* :data:`CULINARY_STOPWORDS` — preparation/state descriptors ("chopped",
  "fresh", "to taste") that never distinguish ingredients,
* :data:`UNITS` — measurement units ("cup", "tbsp", "g"),
* :data:`MEASURE_WORDS` — countable containers and portions ("can",
  "bunch", "head") that precede the actual ingredient.

All entries are lower-case and singular; the normaliser singularises tokens
before checking membership, so "cups" and "cloves" are caught too.
"""

from __future__ import annotations

ENGLISH_STOPWORDS: frozenset[str] = frozenset(
    """
    a about after all an and any as at be been before both but by each for
    from had has have if in into is it its more most no not of off on only
    or other out over own per plus same so some such than that the their
    them then there these they this to too under until up very when which
    while with without you your
    """.split()
)

CULINARY_STOPWORDS: frozenset[str] = frozenset(
    """
    additional approximately assorted baked beaten blanched boiled boiling
    boneless bottled braised brewed bruised chilled chopped coarse coarsely
    cold cooked cooled cored crumbled crushed cubed cut deboned deseeded
    deveined diced divided drained dry fine finely firm firmly
    flaked fresh freshly frozen garnish grated halved heaping
    julienned jumbo large lean lightly medium melted mild minced mixed more
    needed optional packed peeled pitted plain prepared pressed pureed
    quartered ripe roasted room rough roughly scrubbed seeded seedless
    separated shaved shelled shredded shucked sifted skinless slit sliced
    slivered small soaked softened stemmed storebought strained
    temperature taste tender thawed thick thickly thin thinly toasted torn
    trimmed uncooked unsalted unsweetened warm washed well zested
    rinsed removed reserved serving preferably garnishing thread threads
    """.split()
)

#: Measurement units, singular. Checked after singularisation.
UNITS: frozenset[str] = frozenset(
    """
    cup tablespoon tbsp tbs teaspoon tsp ounce oz fluid fl pound lb lbs
    gram g kilogram kg milligram mg milliliter ml millilitre liter litre l
    quart qt pint pt gallon gal dash pinch drop splash shot jigger gill
    inch cm centimeter millimeter mm
    """.split()
)

#: Container / portion words that precede ingredients ("a can of beans").
MEASURE_WORDS: frozenset[str] = frozenset(
    """
    bag bar block bottle box bunch can carton container cube ear envelope
    fillet handful head jar knob loaf pack package packet pat piece rasher
    scoop sheet slab slice sprig stalk stick strip tin tub wedge
    """.split()
)

#: Words that look like units only in a specific context: "2 cloves garlic"
#: uses "clove" as a measure word, while "1 tsp cloves" is the spice. The
#: normaliser drops these when the named ingredient follows them.
CONTEXTUAL_MEASURES: dict[str, frozenset[str]] = {
    "clove": frozenset({"garlic"}),
    "head": frozenset({"cabbage", "lettuce", "cauliflower", "broccoli", "garlic"}),
    "ear": frozenset({"corn"}),
    "stick": frozenset({"butter", "celery"}),
}


#: Vulgar-fraction characters accepted by :func:`is_quantity_token`.
_VULGAR_CHARS: frozenset[str] = frozenset("½⅓⅔¼¾⅛⅜⅝⅞")


def is_quantity_token(token: str) -> bool:
    """Whether a token is purely numeric/fractional ("2", "1/2", "2.5",
    "2-3", unicode vulgar fractions)."""
    if not token:
        return False
    cleaned = token.replace("/", "").replace(".", "").replace("-", "")
    if cleaned.isdigit():
        return True
    return all(char.isdigit() or char in _VULGAR_CHARS for char in token)
