"""Token-trie longest-match aliasing: the fast path of the matcher.

:class:`TrieMatcher` is a drop-in replacement for
:class:`~repro.aliasing.matcher.NGramMatcher` built for the cold-build
hot loop. The n-gram matcher probes candidates longest-first, allocating
one ``" ".join`` string per candidate length at every position; the trie
compiles the normalised vocabulary once into nested token dictionaries
and then walks each token sequence left to right, tracking the deepest
terminal node seen. Longest-match resolution therefore needs **zero**
candidate-string allocations — the only strings built are the surfaces
of actual matches, and even those are interned at compile time.

Equivalence with the reference matcher (same matches, same leftovers,
same surfaces, for any token sequence and any ``max_ngram``, including
after curation updates via :meth:`TrieMatcher.add_name`) is asserted by
a hypothesis property test (``tests/test_aliasing_trie.py``); the
ablation benchmark keeps running the reference implementation so the
speedup stays measured, not assumed.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ..datamodel import Ingredient
from .matcher import MAX_NGRAM, MatchOutcome, TokenMatch

__all__ = ["TrieMatcher"]

#: Key under which a trie node stores its terminal payload. An empty
#: string can never collide with a real token (tokens are non-empty
#: words), so children and payload share one dict per node.
_TERMINAL = ""


class TrieMatcher:
    """Greedy longest-match via a token-level trie over the vocabulary.

    The constructor signature mirrors :class:`NGramMatcher` so the
    pipeline can swap matchers freely: ``resolve`` maps a surface form
    to its ingredient (the trie snapshots the resolution at insert
    time — the pipeline never rebinds an existing key), ``known_names``
    seeds the trie.
    """

    __slots__ = ("_resolve", "_root", "_max_ngram")

    def __init__(
        self,
        resolve: Callable[[str], Ingredient | None],
        known_names: frozenset[str],
        max_ngram: int = MAX_NGRAM,
    ) -> None:
        """
        Args:
            resolve: maps a candidate surface form to an ingredient, or
                ``None``; consulted once per inserted name.
            known_names: every resolvable surface form.
            max_ngram: longest token run to match (names longer than
                this are stored but can never match, exactly like the
                reference matcher never probes them).
        """
        self._resolve = resolve
        self._root: dict = {}
        self._max_ngram = max_ngram
        for name in known_names:
            self.add_name(name)

    def add_name(self, name: str) -> None:
        """Insert a resolvable surface form (curation workflow).

        The ingredient is resolved now and stored at the terminal node;
        an unresolvable or empty name is ignored.
        """
        tokens = name.split(" ")
        if not name or not all(tokens):
            return
        ingredient = self._resolve(name)
        if ingredient is None:
            return
        node = self._root
        for token in tokens:
            child = node.get(token)
            if child is None:
                child = {}
                node[token] = child
            node = child
        # First write wins, matching the pipeline's canonical-precedence
        # rule (register_alias never rebinds an existing key either).
        node.setdefault(_TERMINAL, (name, ingredient))

    def match(self, tokens: Sequence[str]) -> MatchOutcome:
        """Scan ``tokens`` and return matches plus leftovers.

        Identical semantics to :meth:`NGramMatcher.match`: at each
        position take the longest known name starting there (within
        ``max_ngram``), else emit the token as a leftover and advance
        one.
        """
        matches: list[TokenMatch] = []
        leftovers: list[str] = []
        root = self._root
        max_ngram = self._max_ngram
        position = 0
        count = len(tokens)
        while position < count:
            node = root.get(tokens[position])
            best: tuple[str, Ingredient] | None = None
            best_length = 0
            if node is not None and max_ngram >= 1:
                payload = node.get(_TERMINAL)
                if payload is not None:
                    best, best_length = payload, 1
                depth = 1
                limit = min(max_ngram, count - position)
                while depth < limit:
                    node = node.get(tokens[position + depth])
                    if node is None:
                        break
                    depth += 1
                    payload = node.get(_TERMINAL)
                    if payload is not None:
                        best, best_length = payload, depth
            if best is None:
                leftovers.append(tokens[position])
                position += 1
            else:
                matches.append(
                    TokenMatch(position, best_length, best[0], best[1])
                )
                position += best_length
        return MatchOutcome(tuple(matches), tuple(leftovers))
