"""Rule-based English singularisation.

The paper uses the ``inflect`` package to convert phrase tokens to singular
form; ``inflect`` is unavailable offline, so this module implements the
subset of English pluralisation that actually occurs in ingredient phrases:

* an irregular table (``leaves`` → ``leaf``, ``geese`` → ``goose``),
* an invariant table for words that end in ``s`` but are singular
  (``asparagus``, ``couscous``, ``molasses``),
* suffix rules: ``-ies`` → ``-y``, ``-oes`` → ``-o``,
  ``-(s|x|z|ch|sh)es`` → drop ``es``, default ``-s`` → drop ``s``.

The rules are conservative: when unsure, a token is left untouched, because
a false singularisation ("swiss" → "swis") breaks matching while a missed
plural merely leaves one token unmatched.
"""

from __future__ import annotations

import functools

#: Irregular plural -> singular.
IRREGULAR_PLURALS: dict[str, str] = {
    "leaves": "leaf",
    "loaves": "loaf",
    "halves": "half",
    "calves": "calf",
    "knives": "knife",
    "wives": "wife",
    "geese": "goose",
    "feet": "foot",
    "teeth": "tooth",
    "mice": "mouse",
    "children": "child",
    "men": "man",
    "women": "woman",
    "people": "person",
    "anchovies": "anchovy",
    "cookies": "cookie",
    "brownies": "brownie",
    "smoothies": "smoothie",
    "cherries": "cherry",
    "berries": "berry",
}

#: Words ending in 's' (or other plural-looking suffixes) that are singular
#: or identical in both numbers and must never be trimmed.
INVARIANT_WORDS: frozenset[str] = frozenset(
    """
    asparagus couscous molasses swiss citrus hummus grits bass sea-bass
    watercress cress brussels chassis analysis dashi wasabi octopus
    lemongrass schnapps dill pus us gas christmas paris texas swordfish
    shellfish cuttlefish whitefish catfish monkfish species series
    sugarsnaps hollandaise mayonnaise bearnaise anise
    """.split()
)

# Stems whose plural appends "es". A single trailing "s" is NOT in this
# list: "cheeses" singularises to "cheese" (drop one "s"), while "glasses"
# (double-s stem) drops the whole "es".
_ES_STEMS = ("ss", "x", "z", "ch", "sh")


@functools.lru_cache(maxsize=16384)
def singularize(token: str) -> str:
    """Singularise one lower-case token; unknown forms pass through.

    Pure and called once per raw token of every phrase, so results are
    memoised — corpus token vocabularies are a few thousand strings,
    which fits the cache many times over.
    """
    if len(token) < 3:
        return token
    irregular = IRREGULAR_PLURALS.get(token)
    if irregular is not None:
        return irregular
    if token in INVARIANT_WORDS:
        return token
    if token.endswith("ies") and len(token) > 4:
        return token[:-3] + "y"
    if token.endswith("oes") and len(token) > 4:
        return token[:-2]
    if token.endswith("es") and len(token) > 4:
        stem = token[:-2]
        if any(stem.endswith(suffix) for suffix in _ES_STEMS):
            return stem
        # 'es' after other letters is usually just 's' plural: grapes, limes
        return token[:-1]
    if token.endswith("ss") or token.endswith("us") or token.endswith("is"):
        return token
    if token.endswith("s"):
        return token[:-1]
    return token


def singularize_phrase(tokens: list[str]) -> list[str]:
    """Singularise every token of a phrase."""
    return [singularize(token) for token in tokens]
