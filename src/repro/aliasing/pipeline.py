"""The end-to-end ingredient aliasing pipeline.

Maps raw recipe records onto resolved :class:`~repro.datamodel.Recipe`
objects: each ingredient phrase is normalised
(:mod:`repro.aliasing.normalize`), matched against the catalog
(:mod:`repro.aliasing.matcher` / :mod:`repro.aliasing.trie`), and
classified as exact / partial / unrecognised. Partial and unrecognised
phrases feed a :class:`MatchReport` that surfaces the most frequent
unmatched n-grams — the paper's mechanism for discovering ingredients
"either not present in the database or variations of existing entities"
for manual curation.

Cold-build fast path: matching runs on the token trie by default (the
n-gram matcher stays available as the ablation reference), repeated
phrases hit a bounded phrase→resolution memo
(``repro_aliasing_phrase_cache_{hits,misses}_total`` count its traffic;
:class:`MatchReport` occurrence counting is never cached), and
:meth:`AliasingPipeline.resolve_corpus` can fan recipe shards across the
:mod:`repro.parallel` process pool — each worker builds the pipeline
once, aliases its shard, and returns recipes plus a mergeable
:class:`MatchReport`; shard-order merging keeps the result bit-identical
to the serial path for any worker count.
"""

from __future__ import annotations

import dataclasses
import enum
import time
from collections import Counter, OrderedDict
from collections.abc import Iterable, Sequence

from ..datamodel import Ingredient, RawRecipe, Recipe
from ..flavordb import IngredientCatalog, default_catalog
from ..obs import get_registry, span
from .matcher import MAX_NGRAM, MatchOutcome, NGramMatcher
from .normalize import normalize_phrase
from .trie import TrieMatcher

#: Raw recipes per aliasing shard. Deliberately independent of the
#: worker count (and of ``RunConfig.shard_size``, which means Monte
#: Carlo samples): results do not depend on the decomposition at all —
#: shard-order merging reproduces the serial output exactly — but a
#: worker-independent constant keeps the task layout predictable.
ALIASING_SHARD_SIZE = 1024

#: Default bound on the phrase→resolution memo. Generated corpora draw
#: phrases from a finite renderer vocabulary, so tens of thousands of
#: distinct strings cover the full corpus; entries are tiny (a frozen
#: dataclass of tuples).
DEFAULT_PHRASE_CACHE = 65536


class MatchKind(enum.Enum):
    """Classification of one phrase's aliasing outcome."""

    EXACT = "exact"  # every content token consumed (soft leftovers allowed)
    PARTIAL = "partial"  # matched something, hard leftovers remain
    UNRECOGNIZED = "unrecognized"  # nothing matched


@dataclasses.dataclass(frozen=True, slots=True)
class PhraseResolution:
    """Result of aliasing one ingredient phrase."""

    phrase: str
    content_tokens: tuple[str, ...]
    ingredients: tuple[Ingredient, ...]
    leftover_tokens: tuple[str, ...]
    kind: MatchKind


class MatchReport:
    """Aggregate aliasing statistics plus a curation queue.

    Collects, per the paper's protocol, n-grams (up to 6) built from the
    leftover tokens of partial/unrecognised phrases, ranked by frequency,
    so a curator can spot missing ingredients or unmapped variants.
    """

    def __init__(self) -> None:
        self.phrase_counts: Counter[MatchKind] = Counter()
        self.recipes_total = 0
        self.recipes_resolved = 0
        self._unmatched_ngrams: Counter[str] = Counter()

    def record_phrase(self, resolution: PhraseResolution) -> None:
        self.phrase_counts[resolution.kind] += 1
        if resolution.kind is MatchKind.EXACT:
            return
        tokens = resolution.leftover_tokens
        for length in range(1, min(MAX_NGRAM, len(tokens)) + 1):
            for start in range(len(tokens) - length + 1):
                self._unmatched_ngrams[
                    " ".join(tokens[start : start + length])
                ] += 1

    def record_recipe(self, resolved: bool) -> None:
        self.recipes_total += 1
        if resolved:
            self.recipes_resolved += 1

    def merge(self, other: "MatchReport") -> "MatchReport":
        """Fold another report into this one (sharded aliasing).

        Counts add; the unmatched-n-gram counter keeps this report's
        insertion order and appends ``other``'s new keys in its order,
        so merging shard reports *in shard order* reproduces the serial
        report exactly — including ``top_unmatched`` tie-breaking, which
        follows first-occurrence order.
        """
        self.phrase_counts.update(other.phrase_counts)
        self.recipes_total += other.recipes_total
        self.recipes_resolved += other.recipes_resolved
        self._unmatched_ngrams.update(other._unmatched_ngrams)
        return self

    @property
    def phrases_total(self) -> int:
        return sum(self.phrase_counts.values())

    def exact_rate(self) -> float:
        """Fraction of phrases aliased exactly (0 when nothing processed)."""
        total = self.phrases_total
        if total == 0:
            return 0.0
        return self.phrase_counts[MatchKind.EXACT] / total

    def top_unmatched(self, limit: int = 20) -> list[tuple[str, int]]:
        """Most frequent unmatched n-grams, for manual curation."""
        return self._unmatched_ngrams.most_common(limit)

    def __repr__(self) -> str:
        return (
            f"MatchReport(phrases={self.phrases_total}, "
            f"exact={self.phrase_counts[MatchKind.EXACT]}, "
            f"partial={self.phrase_counts[MatchKind.PARTIAL]}, "
            f"unrecognized={self.phrase_counts[MatchKind.UNRECOGNIZED]}, "
            f"recipes={self.recipes_resolved}/{self.recipes_total})"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class AliasingResult:
    """Output of aliasing a corpus: resolved recipes plus the report."""

    recipes: tuple[Recipe, ...]
    report: MatchReport


class AliasingPipeline:
    """Normalise, match and resolve ingredient phrases against a catalog."""

    def __init__(
        self,
        catalog: IngredientCatalog | None = None,
        max_ngram: int = MAX_NGRAM,
        use_first_token_index: bool = True,
        fuzzy: bool = False,
        matcher: str | None = None,
        phrase_cache_size: int = DEFAULT_PHRASE_CACHE,
    ) -> None:
        """
        Args:
            catalog: ingredient catalog (defaults to the shared one).
            max_ngram: longest n-gram tried by the matcher.
            use_first_token_index: n-gram matcher acceleration toggle;
                passing ``False`` selects the reference n-gram matcher
                (the flag is meaningless for the trie), as the ablation
                benchmark does.
            fuzzy: enable conservative single-edit typo correction for
                tokens the exact matcher leaves over (see
                :mod:`repro.aliasing.fuzzy`).
            matcher: ``"trie"`` (default — the fast path) or ``"ngram"``
                (the reference implementation, kept for ablations).
            phrase_cache_size: bound on the phrase→resolution memo;
                ``0`` disables memoisation entirely.
        """
        self._catalog = catalog if catalog is not None else default_catalog()
        # Key every resolvable surface form by its *normalised* token string
        # so names containing stopwords ("hearts of palm" -> "heart palm")
        # still match the normalised phrase stream. Canonical names take
        # precedence over synonyms on collision.
        self._normalized_map: dict[str, Ingredient] = {}
        canonical_names = [i.name for i in self._catalog.ingredients]
        synonyms = sorted(self._catalog.known_names() - set(canonical_names))
        for surface in canonical_names + synonyms:
            key = " ".join(normalize_phrase(surface))
            if key and key not in self._normalized_map:
                self._normalized_map[key] = self._catalog.get(surface)
        if matcher is None:
            matcher = "trie" if use_first_token_index else "ngram"
        if matcher == "trie":
            self._matcher: TrieMatcher | NGramMatcher = TrieMatcher(
                self._normalized_map.get,
                frozenset(self._normalized_map),
                max_ngram=max_ngram,
            )
        elif matcher == "ngram":
            self._matcher = NGramMatcher(
                self._normalized_map.get,
                frozenset(self._normalized_map),
                max_ngram=max_ngram,
                use_first_token_index=use_first_token_index,
            )
        else:
            raise ValueError(
                f"unknown matcher {matcher!r} (expected 'trie' or 'ngram')"
            )
        self._corrector = None
        if fuzzy:
            from .fuzzy import TokenCorrector, vocabulary_from_names

            self._corrector = TokenCorrector(
                vocabulary_from_names(self._normalized_map)
            )
        self._phrase_cache: OrderedDict[str, PhraseResolution] = OrderedDict()
        self._phrase_cache_size = max(0, phrase_cache_size)
        # Shard workers rebuild the pipeline from defaults, so the
        # parallel corpus path is only taken when this pipeline is
        # exactly reproducible from them.
        self._default_spec = (
            self._catalog is default_catalog()
            and max_ngram == MAX_NGRAM
            and self._corrector is None
            and matcher == "trie"
        )
        self._curated = False
        registry = get_registry()
        self._cache_hits = registry.counter(
            "repro_aliasing_phrase_cache_hits_total"
        )
        self._cache_misses = registry.counter(
            "repro_aliasing_phrase_cache_misses_total"
        )

    @property
    def catalog(self) -> IngredientCatalog:
        return self._catalog

    @property
    def matcher_kind(self) -> str:
        """Which matcher implementation this pipeline runs on."""
        return "trie" if isinstance(self._matcher, TrieMatcher) else "ngram"

    def normalized_names(self) -> frozenset[str]:
        """All normalised surface forms the matcher can resolve."""
        return frozenset(self._normalized_map)

    def phrase_cache_info(self) -> tuple[int, int]:
        """(entries, capacity) of the phrase memo — observability hook."""
        return len(self._phrase_cache), self._phrase_cache_size

    def register_alias(self, normalized_key: str, ingredient: Ingredient) -> None:
        """Add a runtime alias: a normalised surface form -> ingredient.

        Used by the manual-curation workflow
        (:class:`repro.aliasing.curation.CurationSession`). Existing keys
        are not overwritten — canonical mappings win. Memoised phrase
        resolutions are dropped: a new alias can change any phrase's
        outcome.
        """
        if normalized_key not in self._normalized_map:
            self._normalized_map[normalized_key] = ingredient
            self._matcher.add_name(normalized_key)
            self._phrase_cache.clear()
            self._curated = True

    def resolve_phrase(self, phrase: str) -> PhraseResolution:
        """Alias one raw ingredient line.

        Resolutions are frozen and phrase-deterministic, so repeats are
        served from a bounded LRU memo; :class:`MatchReport` counting
        happens per occurrence at the call sites, never here.
        """
        if self._phrase_cache_size:
            cached = self._phrase_cache.get(phrase)
            if cached is not None:
                self._phrase_cache.move_to_end(phrase)
                self._cache_hits.incr()
                return cached
            self._cache_misses.incr()
        resolution = self._resolve_phrase_uncached(phrase)
        if self._phrase_cache_size:
            self._phrase_cache[phrase] = resolution
            if len(self._phrase_cache) > self._phrase_cache_size:
                self._phrase_cache.popitem(last=False)
        return resolution

    def _resolve_phrase_uncached(self, phrase: str) -> PhraseResolution:
        tokens = tuple(normalize_phrase(phrase))
        outcome: MatchOutcome = self._matcher.match(tokens)
        if self._corrector is not None and outcome.hard_leftovers:
            corrected = self._correct_tokens(tokens, outcome)
            if corrected != tokens:
                retried = self._matcher.match(corrected)
                # Accept the correction only if it strictly improves the
                # match (paper: minimise false positives).
                if len(retried.matches) > len(outcome.matches) or (
                    len(retried.matches) == len(outcome.matches)
                    and len(retried.hard_leftovers)
                    < len(outcome.hard_leftovers)
                ):
                    tokens = corrected
                    outcome = retried
        ingredients = tuple(match.ingredient for match in outcome.matches)
        if not ingredients:
            kind = MatchKind.UNRECOGNIZED
        elif outcome.hard_leftovers:
            kind = MatchKind.PARTIAL
        else:
            kind = MatchKind.EXACT
        return PhraseResolution(
            phrase=phrase,
            content_tokens=tokens,
            ingredients=ingredients,
            leftover_tokens=outcome.leftover_tokens,
            kind=kind,
        )

    def _correct_tokens(
        self, tokens: tuple[str, ...], outcome: MatchOutcome
    ) -> tuple[str, ...]:
        """Fuzzy-correct only the tokens the matcher left over.

        Tokens inside a match are by definition vocabulary tokens, so
        correcting them is a guaranteed no-op — skipping them saves the
        corrector probes entirely.
        """
        assert self._corrector is not None
        consumed = bytearray(len(tokens))
        for match in outcome.matches:
            for index in range(match.start, match.start + match.length):
                consumed[index] = 1
        corrected = list(tokens)
        for index, token in enumerate(tokens):
            if consumed[index]:
                continue
            replacement = self._corrector.correct(token)
            if replacement is not None:
                corrected[index] = replacement
        return tuple(corrected)

    def resolve_recipe(
        self, raw: RawRecipe, report: MatchReport | None = None
    ) -> Recipe | None:
        """Alias one raw recipe; ``None`` when no ingredient resolved.

        Matched ingredients from partial phrases are kept (the paper
        maximises information retrieval while labelling partial matches for
        curation); duplicate ingredient mentions collapse.
        """
        ingredient_ids: set[int] = set()
        for phrase in raw.ingredient_phrases:
            resolution = self.resolve_phrase(phrase)
            if report is not None:
                report.record_phrase(resolution)
            ingredient_ids.update(
                ingredient.ingredient_id
                for ingredient in resolution.ingredients
            )
        resolved = bool(ingredient_ids)
        if report is not None:
            report.record_recipe(resolved)
        if not resolved:
            return None
        return Recipe(
            recipe_id=raw.recipe_id,
            region_code=raw.region_code,
            ingredient_ids=frozenset(ingredient_ids),
            title=raw.title,
            source=raw.source,
        )

    def _resolve_shard(
        self, raws: Sequence[RawRecipe]
    ) -> tuple[list[Recipe], MatchReport]:
        """Alias one shard of raw recipes: resolved recipes + report."""
        report = MatchReport()
        recipes = []
        for raw in raws:
            recipe = self.resolve_recipe(raw, report)
            if recipe is not None:
                recipes.append(recipe)
        return recipes, report

    def resolve_corpus(
        self,
        raws: Iterable[RawRecipe],
        workers: int = 1,
        shard_size: int = ALIASING_SHARD_SIZE,
    ) -> AliasingResult:
        """Alias a whole corpus, collecting the curation report.

        Args:
            raws: the raw recipes, in corpus order.
            workers: alias shards across this many processes (``1`` =
                serial in-process). The result is bit-identical for any
                worker count: shards are merged in corpus order.
            shard_size: raw recipes per shard in the parallel path.
        """
        raw_list: Sequence[RawRecipe] = (
            raws if isinstance(raws, (list, tuple)) else list(raws)
        )
        parallel = (
            workers > 1
            and len(raw_list) > shard_size
            # Workers rebuild the pipeline from defaults; a custom
            # catalog/matcher/fuzzy setup or curated aliases must stay
            # on the serial path to produce identical results.
            and self._default_spec
            and not self._curated
        )
        with span(
            "aliasing.resolve_corpus", workers=workers if parallel else 1
        ) as trace:
            started = time.perf_counter()
            if parallel:
                recipes, report = self._resolve_corpus_sharded(
                    raw_list, workers, shard_size
                )
            else:
                recipes, report = self._resolve_shard(raw_list)
            elapsed = time.perf_counter() - started
            registry = get_registry()
            for kind in MatchKind:
                count = report.phrase_counts[kind]
                trace.incr(f"phrases_{kind.value}", count)
                if count:
                    registry.counter(
                        "repro_aliasing_phrases_total", kind=kind.value
                    ).incr(count)
            trace.incr("recipes_resolved", report.recipes_resolved)
            trace.incr("recipes_total", report.recipes_total)
            if elapsed > 0:
                trace.set(
                    "recipes_per_sec", round(report.recipes_total / elapsed, 1)
                )
            registry.counter("repro_aliasing_recipes_total").incr(
                report.recipes_total
            )
            return AliasingResult(tuple(recipes), report)

    def _resolve_corpus_sharded(
        self, raws: Sequence[RawRecipe], workers: int, shard_size: int
    ) -> tuple[list[Recipe], MatchReport]:
        """Fan shards over the process pool; merge in shard order."""
        from ..parallel.executor import run_tasks

        shards = [
            tuple(raws[start : start + shard_size])
            for start in range(0, len(raws), shard_size)
        ]
        results = run_tasks(
            _alias_shard_worker,
            shards,
            workers=workers,
            label="aliasing.shards",
        )
        recipes: list[Recipe] = []
        report = MatchReport()
        for shard_recipes, shard_report in results:
            recipes.extend(shard_recipes)
            report.merge(shard_report)
        return recipes, report


#: Per-process pipeline for shard workers: built on the first shard a
#: worker sees, reused (with its warm phrase memo) for every later one.
_WORKER_PIPELINE: AliasingPipeline | None = None


def _alias_shard_worker(
    raws: tuple[RawRecipe, ...],
) -> tuple[list[Recipe], MatchReport]:
    """Alias one shard in a pool worker (or inline on serial retry)."""
    global _WORKER_PIPELINE
    if _WORKER_PIPELINE is None:
        _WORKER_PIPELINE = AliasingPipeline(default_catalog())
    return _WORKER_PIPELINE._resolve_shard(raws)
