"""The end-to-end ingredient aliasing pipeline.

Maps raw recipe records onto resolved :class:`~repro.datamodel.Recipe`
objects: each ingredient phrase is normalised
(:mod:`repro.aliasing.normalize`), matched against the catalog
(:mod:`repro.aliasing.matcher`), and classified as exact / partial /
unrecognised. Partial and unrecognised phrases feed a
:class:`MatchReport` that surfaces the most frequent unmatched n-grams —
the paper's mechanism for discovering ingredients "either not present in
the database or variations of existing entities" for manual curation.
"""

from __future__ import annotations

import dataclasses
import enum
import time
from collections import Counter
from collections.abc import Iterable, Sequence

from ..datamodel import Ingredient, RawRecipe, Recipe
from ..flavordb import IngredientCatalog, default_catalog
from ..obs import get_registry, span
from .matcher import MAX_NGRAM, MatchOutcome, NGramMatcher
from .normalize import normalize_phrase


class MatchKind(enum.Enum):
    """Classification of one phrase's aliasing outcome."""

    EXACT = "exact"  # every content token consumed (soft leftovers allowed)
    PARTIAL = "partial"  # matched something, hard leftovers remain
    UNRECOGNIZED = "unrecognized"  # nothing matched


@dataclasses.dataclass(frozen=True, slots=True)
class PhraseResolution:
    """Result of aliasing one ingredient phrase."""

    phrase: str
    content_tokens: tuple[str, ...]
    ingredients: tuple[Ingredient, ...]
    leftover_tokens: tuple[str, ...]
    kind: MatchKind


class MatchReport:
    """Aggregate aliasing statistics plus a curation queue.

    Collects, per the paper's protocol, n-grams (up to 6) built from the
    leftover tokens of partial/unrecognised phrases, ranked by frequency,
    so a curator can spot missing ingredients or unmapped variants.
    """

    def __init__(self) -> None:
        self.phrase_counts: Counter[MatchKind] = Counter()
        self.recipes_total = 0
        self.recipes_resolved = 0
        self._unmatched_ngrams: Counter[str] = Counter()

    def record_phrase(self, resolution: PhraseResolution) -> None:
        self.phrase_counts[resolution.kind] += 1
        if resolution.kind is MatchKind.EXACT:
            return
        tokens = resolution.leftover_tokens
        for length in range(1, min(MAX_NGRAM, len(tokens)) + 1):
            for start in range(len(tokens) - length + 1):
                self._unmatched_ngrams[
                    " ".join(tokens[start : start + length])
                ] += 1

    def record_recipe(self, resolved: bool) -> None:
        self.recipes_total += 1
        if resolved:
            self.recipes_resolved += 1

    @property
    def phrases_total(self) -> int:
        return sum(self.phrase_counts.values())

    def exact_rate(self) -> float:
        """Fraction of phrases aliased exactly (0 when nothing processed)."""
        total = self.phrases_total
        if total == 0:
            return 0.0
        return self.phrase_counts[MatchKind.EXACT] / total

    def top_unmatched(self, limit: int = 20) -> list[tuple[str, int]]:
        """Most frequent unmatched n-grams, for manual curation."""
        return self._unmatched_ngrams.most_common(limit)

    def __repr__(self) -> str:
        return (
            f"MatchReport(phrases={self.phrases_total}, "
            f"exact={self.phrase_counts[MatchKind.EXACT]}, "
            f"partial={self.phrase_counts[MatchKind.PARTIAL]}, "
            f"unrecognized={self.phrase_counts[MatchKind.UNRECOGNIZED]}, "
            f"recipes={self.recipes_resolved}/{self.recipes_total})"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class AliasingResult:
    """Output of aliasing a corpus: resolved recipes plus the report."""

    recipes: tuple[Recipe, ...]
    report: MatchReport


class AliasingPipeline:
    """Normalise, match and resolve ingredient phrases against a catalog."""

    def __init__(
        self,
        catalog: IngredientCatalog | None = None,
        max_ngram: int = MAX_NGRAM,
        use_first_token_index: bool = True,
        fuzzy: bool = False,
    ) -> None:
        """
        Args:
            catalog: ingredient catalog (defaults to the shared one).
            max_ngram: longest n-gram tried by the matcher.
            use_first_token_index: matcher acceleration toggle (ablation).
            fuzzy: enable conservative single-edit typo correction for
                tokens the exact matcher leaves over (see
                :mod:`repro.aliasing.fuzzy`).
        """
        self._catalog = catalog if catalog is not None else default_catalog()
        # Key every resolvable surface form by its *normalised* token string
        # so names containing stopwords ("hearts of palm" -> "heart palm")
        # still match the normalised phrase stream. Canonical names take
        # precedence over synonyms on collision.
        self._normalized_map: dict[str, Ingredient] = {}
        canonical_names = [i.name for i in self._catalog.ingredients]
        synonyms = sorted(self._catalog.known_names() - set(canonical_names))
        for surface in canonical_names + synonyms:
            key = " ".join(normalize_phrase(surface))
            if key and key not in self._normalized_map:
                self._normalized_map[key] = self._catalog.get(surface)
        self._matcher = NGramMatcher(
            self._normalized_map.get,
            frozenset(self._normalized_map),
            max_ngram=max_ngram,
            use_first_token_index=use_first_token_index,
        )
        self._corrector = None
        if fuzzy:
            from .fuzzy import TokenCorrector, vocabulary_from_names

            self._corrector = TokenCorrector(
                vocabulary_from_names(self._normalized_map)
            )

    @property
    def catalog(self) -> IngredientCatalog:
        return self._catalog

    def normalized_names(self) -> frozenset[str]:
        """All normalised surface forms the matcher can resolve."""
        return frozenset(self._normalized_map)

    def register_alias(self, normalized_key: str, ingredient: Ingredient) -> None:
        """Add a runtime alias: a normalised surface form -> ingredient.

        Used by the manual-curation workflow
        (:class:`repro.aliasing.curation.CurationSession`). Existing keys
        are not overwritten — canonical mappings win.
        """
        if normalized_key not in self._normalized_map:
            self._normalized_map[normalized_key] = ingredient
            self._matcher.add_name(normalized_key)

    def resolve_phrase(self, phrase: str) -> PhraseResolution:
        """Alias one raw ingredient line."""
        tokens = tuple(normalize_phrase(phrase))
        outcome: MatchOutcome = self._matcher.match(list(tokens))
        if self._corrector is not None and outcome.hard_leftovers:
            corrected = self._correct_tokens(tokens)
            if corrected != tokens:
                retried = self._matcher.match(list(corrected))
                # Accept the correction only if it strictly improves the
                # match (paper: minimise false positives).
                if len(retried.matches) > len(outcome.matches) or (
                    len(retried.matches) == len(outcome.matches)
                    and len(retried.hard_leftovers)
                    < len(outcome.hard_leftovers)
                ):
                    tokens = corrected
                    outcome = retried
        ingredients = tuple(match.ingredient for match in outcome.matches)
        if not ingredients:
            kind = MatchKind.UNRECOGNIZED
        elif outcome.hard_leftovers:
            kind = MatchKind.PARTIAL
        else:
            kind = MatchKind.EXACT
        return PhraseResolution(
            phrase=phrase,
            content_tokens=tokens,
            ingredients=ingredients,
            leftover_tokens=outcome.leftover_tokens,
            kind=kind,
        )

    def _correct_tokens(self, tokens: tuple[str, ...]) -> tuple[str, ...]:
        assert self._corrector is not None
        corrected = []
        for token in tokens:
            replacement = self._corrector.correct(token)
            corrected.append(replacement if replacement is not None else token)
        return tuple(corrected)

    def resolve_recipe(
        self, raw: RawRecipe, report: MatchReport | None = None
    ) -> Recipe | None:
        """Alias one raw recipe; ``None`` when no ingredient resolved.

        Matched ingredients from partial phrases are kept (the paper
        maximises information retrieval while labelling partial matches for
        curation); duplicate ingredient mentions collapse.
        """
        ingredient_ids: set[int] = set()
        for phrase in raw.ingredient_phrases:
            resolution = self.resolve_phrase(phrase)
            if report is not None:
                report.record_phrase(resolution)
            ingredient_ids.update(
                ingredient.ingredient_id
                for ingredient in resolution.ingredients
            )
        resolved = bool(ingredient_ids)
        if report is not None:
            report.record_recipe(resolved)
        if not resolved:
            return None
        return Recipe(
            recipe_id=raw.recipe_id,
            region_code=raw.region_code,
            ingredient_ids=frozenset(ingredient_ids),
            title=raw.title,
            source=raw.source,
        )

    def resolve_corpus(self, raws: Iterable[RawRecipe]) -> AliasingResult:
        """Alias a whole corpus, collecting the curation report."""
        with span("aliasing.resolve_corpus") as trace:
            started = time.perf_counter()
            report = MatchReport()
            recipes = []
            for raw in raws:
                recipe = self.resolve_recipe(raw, report)
                if recipe is not None:
                    recipes.append(recipe)
            elapsed = time.perf_counter() - started
            registry = get_registry()
            for kind in MatchKind:
                count = report.phrase_counts[kind]
                trace.incr(f"phrases_{kind.value}", count)
                if count:
                    registry.counter(
                        "repro_aliasing_phrases_total", kind=kind.value
                    ).incr(count)
            trace.incr("recipes_resolved", report.recipes_resolved)
            trace.incr("recipes_total", report.recipes_total)
            if elapsed > 0:
                trace.set(
                    "recipes_per_sec", round(report.recipes_total / elapsed, 1)
                )
            registry.counter("repro_aliasing_recipes_total").incr(
                report.recipes_total
            )
            return AliasingResult(tuple(recipes), report)
