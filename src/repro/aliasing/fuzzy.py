"""Typo-tolerant token correction for the aliasing pipeline.

The paper's protocol involves "robust string processing to take into
account variations in writing ingredient spellings" while taking "care
... to minimize the false positives" (Section IV.A). This module adds a
conservative fallback for tokens the exact matcher could not place:

* a candidate correction must be within Damerau–Levenshtein distance 1
  (one insertion, deletion, substitution or adjacent transposition) of a
  known vocabulary token,
* short tokens (< :data:`MIN_TOKEN_LENGTH` characters) are never
  corrected — nearly everything is within distance 1 of a 3-letter word,
* a token with two or more distinct candidate corrections is left alone
  (ambiguity means risk of a false positive),
* the correction must itself be a token of some catalog surface form, so
  corrected phrases re-enter the ordinary n-gram matching path.

:class:`TokenCorrector` is deterministic and index-based: candidate
lookups run against a precomputed deletion-neighbourhood map (the
SymSpell idea), so correcting a token is a handful of dictionary probes
rather than a scan of the vocabulary.
"""

from __future__ import annotations

from collections.abc import Iterable

#: Tokens shorter than this are never fuzzy-corrected.
MIN_TOKEN_LENGTH = 5


def _deletions(token: str) -> set[str]:
    """All strings obtained by deleting exactly one character."""
    return {token[:i] + token[i + 1 :] for i in range(len(token))}


def damerau_levenshtein_within_one(left: str, right: str) -> bool:
    """Whether two strings are within Damerau–Levenshtein distance 1."""
    if left == right:
        return True
    len_left, len_right = len(left), len(right)
    if abs(len_left - len_right) > 1:
        return False
    if len_left == len_right:
        # substitution or adjacent transposition
        diffs = [i for i in range(len_left) if left[i] != right[i]]
        if len(diffs) == 1:
            return True
        if len(diffs) == 2 and diffs[1] == diffs[0] + 1:
            i, j = diffs
            return left[i] == right[j] and left[j] == right[i]
        return False
    # insertion/deletion: align the longer against the shorter
    longer, shorter = (left, right) if len_left > len_right else (right, left)
    for i in range(len(longer)):
        if longer[:i] + longer[i + 1 :] == shorter:
            return True
    return False


class TokenCorrector:
    """Single-edit token correction against a fixed vocabulary."""

    def __init__(self, vocabulary: Iterable[str]) -> None:
        self._vocabulary = frozenset(
            token for token in vocabulary if len(token) >= MIN_TOKEN_LENGTH
        )
        # Deletion-neighbourhood index: delete-1 form -> vocabulary tokens.
        self._neighbourhood: dict[str, set[str]] = {}
        for token in self._vocabulary:
            self._add(token, token)
            for deleted in _deletions(token):
                self._add(deleted, token)
        # correct() is deterministic for a fixed vocabulary and corpora
        # repeat their typo tokens, so verdicts are memoised (bounded —
        # adversarial token streams must not grow it without limit).
        self._verdicts: dict[str, str | None] = {}

    def _add(self, key: str, token: str) -> None:
        self._neighbourhood.setdefault(key, set()).add(token)

    def __len__(self) -> int:
        return len(self._vocabulary)

    def candidates(self, token: str) -> set[str]:
        """Vocabulary tokens within edit distance 1 of ``token``."""
        if len(token) < MIN_TOKEN_LENGTH:
            return set()
        probes = {token} | _deletions(token)
        found: set[str] = set()
        for probe in probes:
            for candidate in self._neighbourhood.get(probe, ()):
                if damerau_levenshtein_within_one(token, candidate):
                    found.add(candidate)
        return found

    def correct(self, token: str) -> str | None:
        """The unique single-edit correction, or ``None``.

        Returns ``None`` when the token is already in the vocabulary
        (nothing to correct), too short, unmatched, or ambiguous.
        """
        if token in self._vocabulary:
            return None
        try:
            return self._verdicts[token]
        except KeyError:
            pass
        found = self.candidates(token)
        verdict = next(iter(found)) if len(found) == 1 else None
        if len(self._verdicts) < 65536:
            self._verdicts[token] = verdict
        return verdict


def vocabulary_from_names(names: Iterable[str]) -> frozenset[str]:
    """All whitespace-separated tokens of the given surface forms."""
    tokens: set[str] = set()
    for name in names:
        tokens.update(name.split(" "))
    return frozenset(tokens)
