"""Manual-curation workflow for unmatched ingredient phrases.

The paper's protocol (Section IV.A): partial matches and unrecognised
ingredients are "explicitly labeled for manual curation", and n-grams
built from them identify "commonly occurring ingredients which were
either not present in the database or were variations of existing
entities". :class:`CurationSession` implements the loop around that:

1. alias a corpus and collect the :class:`~repro.aliasing.MatchReport`;
2. review the most frequent unmatched n-grams
   (:meth:`CurationSession.queue`);
3. register each as an alias of an existing ingredient
   (:meth:`CurationSession.register_alias`) — the pipeline resolves it
   from then on;
4. re-resolve and measure the improvement
   (:meth:`CurationSession.reresolve`).

Registered aliases live on the pipeline (a runtime overlay over the
immutable catalog); :meth:`CurationSession.export_aliases` returns them
in the shape of :data:`repro.flavordb.SYNONYMS` so a curator can fold
them back into the catalog data.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

from ..datamodel import LookupFailure, RawRecipe
from .normalize import normalize_phrase
from .pipeline import AliasingPipeline, AliasingResult, MatchKind


@dataclasses.dataclass(frozen=True, slots=True)
class CurationCandidate:
    """One unmatched n-gram awaiting a curator's decision."""

    surface: str
    occurrences: int


class CurationSession:
    """Iterative alias curation against one pipeline."""

    def __init__(self, pipeline: AliasingPipeline) -> None:
        self._pipeline = pipeline
        self._registered: dict[str, str] = {}
        self._last_result: AliasingResult | None = None

    @property
    def pipeline(self) -> AliasingPipeline:
        return self._pipeline

    @property
    def registered(self) -> dict[str, str]:
        """Aliases registered so far: surface form -> canonical name."""
        return dict(self._registered)

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def resolve(self, raws: Iterable[RawRecipe]) -> AliasingResult:
        """Alias a corpus and remember the report for queue building."""
        self._raws = tuple(raws)
        self._last_result = self._pipeline.resolve_corpus(self._raws)
        return self._last_result

    def queue(self, limit: int = 20) -> list[CurationCandidate]:
        """Most frequent unmatched n-grams from the last resolution.

        Raises:
            LookupFailure: when :meth:`resolve` has not run yet.
        """
        if self._last_result is None:
            raise LookupFailure("run resolve() before requesting the queue")
        return [
            CurationCandidate(surface=ngram, occurrences=count)
            for ngram, count in self._last_result.report.top_unmatched(limit)
        ]

    def register_alias(self, surface: str, canonical_name: str) -> None:
        """Map a new surface form onto an existing catalog ingredient.

        The surface is normalised through the standard pipeline steps so
        it matches the token stream ("Portobello Caps" and "portobello
        cap" register the same key).

        Raises:
            LookupFailure: when the canonical ingredient does not exist or
                the surface normalises to nothing.
        """
        ingredient = self._pipeline.catalog.resolve(canonical_name)
        if ingredient is None:
            raise LookupFailure(
                f"unknown canonical ingredient {canonical_name!r}"
            )
        key = " ".join(normalize_phrase(surface))
        if not key:
            raise LookupFailure(
                f"surface {surface!r} normalises to nothing"
            )
        self._pipeline.register_alias(key, ingredient)
        self._registered[key] = ingredient.name

    def reresolve(self) -> AliasingResult:
        """Re-alias the last corpus with the registered aliases applied."""
        if self._last_result is None:
            raise LookupFailure("run resolve() before reresolve()")
        self._last_result = self._pipeline.resolve_corpus(self._raws)
        return self._last_result

    def export_aliases(self) -> dict[str, str]:
        """Registered aliases in :data:`repro.flavordb.SYNONYMS` shape."""
        return dict(self._registered)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def exact_rate(self) -> float:
        """Exact-match rate of the last resolution."""
        if self._last_result is None:
            return 0.0
        return self._last_result.report.exact_rate()

    def unresolved_phrases(self, raws: Iterable[RawRecipe] | None = None):
        """Phrases still not exactly matched (for spot checks)."""
        source = tuple(raws) if raws is not None else self._raws
        leftovers = []
        for raw in source:
            for phrase in raw.ingredient_phrases:
                resolution = self._pipeline.resolve_phrase(phrase)
                if resolution.kind is not MatchKind.EXACT:
                    leftovers.append(resolution)
        return leftovers
