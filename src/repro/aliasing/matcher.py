"""Greedy longest-match n-gram matching of content tokens to ingredients.

The paper creates n-grams (up to 6-grams) from ingredient phrases and maps
them onto the curated ingredient list. :class:`NGramMatcher` implements
that: scanning content tokens left to right, it tries the longest n-gram
first ("extra virgin olive oil" before "olive oil" before "olive"), so
multi-word ingredients win over their sub-words. Unmatched tokens are kept
as leftovers for the manual-curation report.

A first-token index records, for every token that can start a known name,
the longest name starting with it; the scan then skips n-gram lengths that
cannot possibly match. The ablation benchmark
``bench_ablation_ngram`` measures what this saves.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

from ..datamodel import Ingredient

#: Maximum n-gram length, per the paper.
MAX_NGRAM = 6

#: Descriptors that may legitimately remain unmatched next to a matched
#: ingredient ("dried oregano" matches oregano, "dried" is soft leftover).
#: Soft leftovers do not demote a phrase to a partial match.
SOFT_DESCRIPTORS: frozenset[str] = frozenset(
    """
    dried ground whole sweet baby raw wild organic instant light dark mini
    premium quality style real homemade natural pure genuine authentic
    regular reduced fat low sodium free skinned boned flat leaf italian
    extra hot split
    english french virgin
    """.split()
)


@dataclasses.dataclass(frozen=True, slots=True)
class TokenMatch:
    """One matched n-gram within a token sequence."""

    start: int
    length: int
    surface: str
    ingredient: Ingredient


@dataclasses.dataclass(frozen=True, slots=True)
class MatchOutcome:
    """Everything the matcher found in one token sequence."""

    matches: tuple[TokenMatch, ...]
    leftover_tokens: tuple[str, ...]

    @property
    def hard_leftovers(self) -> tuple[str, ...]:
        """Leftover tokens that are not soft descriptors."""
        return tuple(
            token
            for token in self.leftover_tokens
            if token not in SOFT_DESCRIPTORS
        )


class NGramMatcher:
    """Greedy longest-first n-gram matcher over a resolver function."""

    def __init__(
        self,
        resolve: Callable[[str], Ingredient | None],
        known_names: frozenset[str],
        max_ngram: int = MAX_NGRAM,
        use_first_token_index: bool = True,
    ) -> None:
        """
        Args:
            resolve: maps a candidate surface form (synonyms included) to an
                ingredient, or ``None``.
            known_names: every resolvable surface form; used to build the
                first-token index.
            max_ngram: longest n-gram to try.
            use_first_token_index: disable only for the ablation benchmark.
        """
        self._resolve = resolve
        self._max_ngram = max_ngram
        self._first_token_longest: dict[str, int] = {}
        if use_first_token_index:
            for name in known_names:
                tokens = name.split(" ")
                first = tokens[0]
                current = self._first_token_longest.get(first, 0)
                if len(tokens) > current:
                    self._first_token_longest[first] = len(tokens)
        self._use_index = use_first_token_index

    def add_name(self, name: str) -> None:
        """Register a new resolvable surface form (curation workflow).

        Keeps the first-token index consistent; the resolver callback is
        expected to know the name already.
        """
        if not self._use_index:
            return
        tokens = name.split(" ")
        first = tokens[0]
        current = self._first_token_longest.get(first, 0)
        if len(tokens) > current:
            self._first_token_longest[first] = len(tokens)

    def match(self, tokens: Sequence[str]) -> MatchOutcome:
        """Scan ``tokens`` and return matches plus leftovers."""
        matches: list[TokenMatch] = []
        leftovers: list[str] = []
        position = 0
        count = len(tokens)
        while position < count:
            first = tokens[position]
            if self._use_index:
                cap = self._first_token_longest.get(first, 0)
                if cap == 0:
                    leftovers.append(first)
                    position += 1
                    continue
                longest = min(self._max_ngram, cap, count - position)
            else:
                longest = min(self._max_ngram, count - position)
            matched = False
            for length in range(longest, 0, -1):
                surface = " ".join(tokens[position : position + length])
                ingredient = self._resolve(surface)
                if ingredient is not None:
                    matches.append(
                        TokenMatch(position, length, surface, ingredient)
                    )
                    position += length
                    matched = True
                    break
            if not matched:
                leftovers.append(first)
                position += 1
        return MatchOutcome(tuple(matches), tuple(leftovers))
