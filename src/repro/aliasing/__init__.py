"""Ingredient aliasing: free-text phrases -> canonical catalog ingredients.

From-scratch replacements for the paper's NLTK + inflect protocol:
normalisation, stopword stripping, singularisation, greedy n-gram matching
(up to 6-grams), and the partial/unrecognised curation report.
"""

from .curation import CurationCandidate, CurationSession
from .fuzzy import (
    MIN_TOKEN_LENGTH,
    TokenCorrector,
    damerau_levenshtein_within_one,
    vocabulary_from_names,
)
from .matcher import (
    MAX_NGRAM,
    SOFT_DESCRIPTORS,
    MatchOutcome,
    NGramMatcher,
    TokenMatch,
)
from .normalize import basic_clean, normalize_phrase, tokenize
from .pipeline import (
    ALIASING_SHARD_SIZE,
    AliasingPipeline,
    AliasingResult,
    MatchKind,
    MatchReport,
    PhraseResolution,
)
from .trie import TrieMatcher
from .singularize import IRREGULAR_PLURALS, INVARIANT_WORDS, singularize
from .stopwords import (
    CONTEXTUAL_MEASURES,
    CULINARY_STOPWORDS,
    ENGLISH_STOPWORDS,
    MEASURE_WORDS,
    UNITS,
    is_quantity_token,
)

__all__ = [
    "CurationCandidate",
    "CurationSession",
    "MIN_TOKEN_LENGTH",
    "TokenCorrector",
    "damerau_levenshtein_within_one",
    "vocabulary_from_names",
    "MAX_NGRAM",
    "SOFT_DESCRIPTORS",
    "MatchOutcome",
    "NGramMatcher",
    "TrieMatcher",
    "TokenMatch",
    "ALIASING_SHARD_SIZE",
    "basic_clean",
    "normalize_phrase",
    "tokenize",
    "AliasingPipeline",
    "AliasingResult",
    "MatchKind",
    "MatchReport",
    "PhraseResolution",
    "IRREGULAR_PLURALS",
    "INVARIANT_WORDS",
    "singularize",
    "CONTEXTUAL_MEASURES",
    "CULINARY_STOPWORDS",
    "ENGLISH_STOPWORDS",
    "MEASURE_WORDS",
    "UNITS",
    "is_quantity_token",
]
