"""Phrase normalisation: raw ingredient line -> content tokens.

Implements the paper's multi-step protocol (Section IV.A): lower-casing,
punctuation and special-character removal, stopword (including culinary
stopword) removal, and singularisation — then additionally strips
quantities, units and measure words so only content tokens remain.

Example::

    >>> normalize_phrase("2 Jalapeno Peppers, roasted and slit")
    ['jalapeno', 'pepper']
    >>> normalize_phrase("1 (14 ounce) can diced tomatoes, drained")
    ['tomato']
"""

from __future__ import annotations

import re
import unicodedata

from .singularize import singularize
from .stopwords import (
    CONTEXTUAL_MEASURES,
    CULINARY_STOPWORDS,
    ENGLISH_STOPWORDS,
    MEASURE_WORDS,
    UNITS,
    is_quantity_token,
)

_PUNCTUATION_RE = re.compile(r"[^\w\s/\-.]", flags=re.UNICODE)
# Dots that are not decimal points ("2.5") are punctuation.
_LONE_DOT_RE = re.compile(r"(?<!\d)\.|\.(?!\d)")
_HYPHEN_RE = re.compile(r"[-–—]+")
_WHITESPACE_RE = re.compile(r"\s+")
# "250g" / "2kg": a number fused with a unit suffix.
_FUSED_QUANTITY_RE = re.compile(r"\b(\d+(?:\.\d+)?)([a-z]+)\b")

#: Unicode vulgar fractions normalised to ASCII a/b form.
_VULGAR_FRACTIONS = {
    "½": "1/2", "⅓": "1/3", "⅔": "2/3", "¼": "1/4", "¾": "3/4",
    "⅛": "1/8", "⅜": "3/8", "⅝": "5/8", "⅞": "7/8",
}


def basic_clean(phrase: str) -> str:
    """Lower-case, normalise unicode, replace punctuation with spaces."""
    text = phrase.strip().lower()
    for vulgar, ascii_form in _VULGAR_FRACTIONS.items():
        text = text.replace(vulgar, f" {ascii_form} ")
    text = unicodedata.normalize("NFKD", text)
    text = "".join(char for char in text if not unicodedata.combining(char))
    text = _HYPHEN_RE.sub(" ", text)
    text = _PUNCTUATION_RE.sub(" ", text)
    text = _LONE_DOT_RE.sub(" ", text)
    text = _FUSED_QUANTITY_RE.sub(r"\1 \2", text)
    return _WHITESPACE_RE.sub(" ", text).strip()


def tokenize(phrase: str) -> list[str]:
    """Split a cleaned phrase into raw tokens."""
    cleaned = basic_clean(phrase)
    if not cleaned:
        return []
    return cleaned.split(" ")


def normalize_phrase(phrase: str) -> list[str]:
    """Full normalisation: raw line -> singularised content tokens.

    Order of operations matters: singularise first (so plural units like
    "cups" are recognised), then drop quantities, units, measure words and
    stopwords, handling contextual measures ("cloves garlic") by looking at
    the following content token.
    """
    raw_tokens = tokenize(phrase)
    singular = [singularize(token) for token in raw_tokens]
    content: list[str] = []
    for position, token in enumerate(singular):
        if not token or is_quantity_token(token):
            continue
        if token in UNITS or token in MEASURE_WORDS:
            continue
        if token in ENGLISH_STOPWORDS or token in CULINARY_STOPWORDS:
            continue
        context = CONTEXTUAL_MEASURES.get(token)
        if context is not None and _next_content_token(
            singular, position
        ) in context:
            continue
        content.append(token)
    return content


def _next_content_token(tokens: list[str], position: int) -> str | None:
    """First following token that is not a stopword/quantity/unit."""
    for token in tokens[position + 1 :]:
        if not token or is_quantity_token(token):
            continue
        if (
            token in UNITS
            or token in MEASURE_WORDS
            or token in ENGLISH_STOPWORDS
            or token in CULINARY_STOPWORDS
        ):
            continue
        return token
    return None
