"""Phrase normalisation: raw ingredient line -> content tokens.

Implements the paper's multi-step protocol (Section IV.A): lower-casing,
punctuation and special-character removal, stopword (including culinary
stopword) removal, and singularisation — then additionally strips
quantities, units and measure words so only content tokens remain.

This is the hottest string path of a cold build (every ingredient phrase
of a 45k-recipe corpus passes through here), so the cleaning protocol is
compiled ahead of time: the vulgar-fraction and dash substitutions are a
single ``str.translate`` table, the hyphen / punctuation / lone-dot
passes are one merged regex, and the Unicode NFKD fold is skipped
entirely for pure-ASCII input. The golden tests in
``tests/test_aliasing_normalize.py`` pin the output of the original
multi-pass implementation; this rewrite reproduces it byte for byte.

Example::

    >>> normalize_phrase("2 Jalapeno Peppers, roasted and slit")
    ['jalapeno', 'pepper']
    >>> normalize_phrase("1 (14 ounce) can diced tomatoes, drained")
    ['tomato']
"""

from __future__ import annotations

import functools
import re
import unicodedata

from .singularize import singularize
from .stopwords import (
    CONTEXTUAL_MEASURES,
    CULINARY_STOPWORDS,
    ENGLISH_STOPWORDS,
    MEASURE_WORDS,
    UNITS,
    is_quantity_token,
)

#: Unicode vulgar fractions normalised to ASCII a/b form.
_VULGAR_FRACTIONS = {
    "½": "1/2", "⅓": "1/3", "⅔": "2/3", "¼": "1/4", "¾": "3/4",
    "⅛": "1/8", "⅜": "3/8", "⅝": "5/8", "⅞": "7/8",
}

#: One-pass character substitutions applied before the NFKD fold:
#: vulgar fractions expand to padded ASCII (they must be rewritten
#: before NFKD would decompose them into ``1⁄2`` fraction-slash forms).
_TRANSLATE_TABLE = {
    ord(vulgar): f" {ascii_form} "
    for vulgar, ascii_form in _VULGAR_FRACTIONS.items()
}

# The original implementation ran separate hyphen, punctuation and
# lone-dot passes *after* the NFKD fold (so compatibility characters
# that decompose into dashes or ASCII hyphens are still caught). One
# merged regex keeps that order while scanning the string once: every
# alternative is replaced by a space, so runs collapse into one match.
#  * ``[-–—]`` — hyphen-minus and en/em dashes become spaces,
#  * ``[^\w\s/\-.]`` — punctuation and special characters,
#  * ``(?<!\d)\.|\.(?!\d)`` — dots that are not decimal points.
_CLEAN_RE = re.compile(
    r"(?:[-–—]|[^\w\s/\-.]|(?<!\d)\.|\.(?!\d))+", flags=re.UNICODE
)
# "250g" / "2kg": a number fused with a unit suffix.
_FUSED_QUANTITY_RE = re.compile(r"\b(\d+(?:\.\d+)?)([a-z]+)\b")


def basic_clean(phrase: str) -> str:
    """Lower-case, normalise unicode, replace punctuation with spaces."""
    text = phrase.lower()
    # Vulgar fractions are non-ASCII, so pure-ASCII input (the vast
    # majority of phrases) skips the translate pass and the NFKD fold.
    if not text.isascii():
        text = text.translate(_TRANSLATE_TABLE)
        if not text.isascii():
            text = unicodedata.normalize("NFKD", text)
            if not text.isascii():
                text = "".join(
                    char for char in text if not unicodedata.combining(char)
                )
    text = _CLEAN_RE.sub(" ", text)
    text = _FUSED_QUANTITY_RE.sub(r"\1 \2", text)
    return " ".join(text.split())


def tokenize(phrase: str) -> list[str]:
    """Split a cleaned phrase into raw tokens."""
    cleaned = basic_clean(phrase)
    if not cleaned:
        return []
    return cleaned.split(" ")


#: Token verdicts memoised by :func:`_classify` — token vocabularies are
#: tiny relative to token occurrences, so one dict hit replaces five
#: frozenset probes (plus the quantity scan) on the hot path.
_DROP, _KEEP, _CONTEXTUAL = 0, 1, 2


@functools.lru_cache(maxsize=65536)
def _classify(token: str) -> int:
    """Classify one singularised token; pure, hence safely memoised.

    Check order mirrors the original inline sequence exactly: a token in
    both ``MEASURE_WORDS`` and ``CONTEXTUAL_MEASURES`` ("stick", "head")
    is unconditionally dropped, never contextual.
    """
    if not token or is_quantity_token(token):
        return _DROP
    if token in UNITS or token in MEASURE_WORDS:
        return _DROP
    if token in ENGLISH_STOPWORDS or token in CULINARY_STOPWORDS:
        return _DROP
    if token in CONTEXTUAL_MEASURES:
        return _CONTEXTUAL
    return _KEEP


def normalize_phrase(phrase: str) -> list[str]:
    """Full normalisation: raw line -> singularised content tokens.

    Order of operations matters: singularise first (so plural units like
    "cups" are recognised), then drop quantities, units, measure words and
    stopwords, handling contextual measures ("cloves garlic") by looking at
    the following content token.
    """
    raw_tokens = tokenize(phrase)
    singular = [singularize(token) for token in raw_tokens]
    content: list[str] = []
    for position, token in enumerate(singular):
        verdict = _classify(token)
        if verdict == _DROP:
            continue
        if verdict == _CONTEXTUAL and _next_content_token(
            singular, position
        ) in CONTEXTUAL_MEASURES[token]:
            continue
        content.append(token)
    return content


def _next_content_token(tokens: list[str], position: int) -> str | None:
    """First following token that is not a stopword/quantity/unit."""
    for token in tokens[position + 1 :]:
        if _classify(token) != _DROP:
            return token
    return None
