"""Setup shim for environments without the `wheel` package.

`pip install -e .` needs to build an editable wheel (PEP 660), which is
impossible offline without the `wheel` distribution. `python setup.py
develop` performs the equivalent editable install using only setuptools.
"""

from setuptools import setup

setup()
