"""Run every experiment at full scale (45,772 recipes, 100k null samples).

Writes rendered tables to results/full_scale/<experiment>.txt.
Usage: python scripts/run_full_experiments.py [outdir]
"""

import sys
import time
from pathlib import Path

from repro.experiments import (
    build_workspace,
    run_fig2,
    run_fig3a,
    run_fig3b,
    run_fig4,
    run_fig5,
    run_table1,
)

OUT = Path(sys.argv[1] if len(sys.argv) > 1 else "results/full_scale")
OUT.mkdir(parents=True, exist_ok=True)


def save(name, result, elapsed):
    text = result.render()
    (OUT / f"{name}.txt").write_text(text + f"\n\n[{elapsed:.1f}s]\n")
    print(f"=== {name} ({elapsed:.1f}s) ===")
    print(text[:1500])
    sys.stdout.flush()


t0 = time.time()
ws = build_workspace(recipe_scale=1.0)
print(f"workspace built in {time.time()-t0:.0f}s: "
      f"{len(ws.recipes)} recipes, report={ws.report}")
sys.stdout.flush()

for name, runner, kwargs in [
    ("table1", run_table1, {}),
    ("fig2", run_fig2, {}),
    ("fig3a", run_fig3a, {}),
    ("fig3b", run_fig3b, {}),
    ("fig5", run_fig5, {}),
    ("fig4", run_fig4, {"n_samples": 100_000}),
]:
    t = time.time()
    result = runner(ws, **kwargs)
    save(name, result, time.time() - t)

print("done in %.0fs total" % (time.time() - t0))
