"""Run every experiment at full scale (45,772 recipes, 100k null samples).

Writes rendered tables to results/full_scale/<experiment>.txt, plus the
observability artifacts from the run (see repro.obs):

* trace.jsonl  — every span, one JSON object per line,
* trace.json   — the same spans in Chrome trace-event format
                 (load in chrome://tracing or https://ui.perfetto.dev),
* timing_tree.txt — the human-readable span tree.

The Monte Carlo stages (fig4/fig5) fan out across a process pool; the
worker count defaults to one per CPU core and results are bit-identical
for any value (see repro.parallel).

Structured progress logs go to stderr (pass --log-json for JSON lines).
Usage: python scripts/run_full_experiments.py [outdir] [--log-json]
                                              [--workers N]
                                              [--cache-dir DIR]
"""

import os
import sys
import time
from pathlib import Path

from repro.engine import RunConfig
from repro.experiments import (
    run_fig2,
    run_fig3a,
    run_fig3b,
    run_fig4,
    run_fig5,
    run_table1,
    workspace_for,
)
from repro.obs import configure_logging, configure_tracing, get_logger

args = [arg for arg in sys.argv[1:] if arg != "--log-json"]
WORKERS = os.cpu_count() or 1
if "--workers" in args:
    flag = args.index("--workers")
    WORKERS = int(args[flag + 1])
    del args[flag : flag + 2]
CACHE_DIR = None
if "--cache-dir" in args:
    flag = args.index("--cache-dir")
    CACHE_DIR = args[flag + 1]
    del args[flag : flag + 2]
CONFIG = RunConfig(
    recipe_scale=1.0,
    workers=max(1, WORKERS),
    n_samples=100_000,
    cache_dir=CACHE_DIR,
)
PARALLEL = CONFIG.parallel()
OUT = Path(args[0] if args else "results/full_scale")
OUT.mkdir(parents=True, exist_ok=True)

configure_logging(level="info", json_mode="--log-json" in sys.argv[1:])
log = get_logger("repro.full_run")
tracer = configure_tracing(True)
tracer.reset()


def save(name, result, elapsed):
    text = result.render()
    (OUT / f"{name}.txt").write_text(text + f"\n\n[{elapsed:.1f}s]\n")
    log.info(
        "experiment.complete",
        experiment=name,
        seconds=round(elapsed, 1),
        out=str(OUT / f"{name}.txt"),
    )
    print(f"=== {name} ({elapsed:.1f}s) ===")
    print(text[:1500])
    sys.stdout.flush()


t0 = time.perf_counter()
with tracer.span("full_run", out=str(OUT)):
    ws = workspace_for(CONFIG)
    log.info(
        "workspace.ready",
        seconds=round(time.perf_counter() - t0, 1),
        recipes=len(ws.recipes),
        report=repr(ws.report),
    )

    log.info("parallel.config", workers=PARALLEL.workers)
    for name, runner, kwargs in [
        ("table1", run_table1, {}),
        ("fig2", run_fig2, {}),
        ("fig3a", run_fig3a, {}),
        ("fig3b", run_fig3b, {}),
        ("fig5", run_fig5, {"parallel": PARALLEL}),
        (
            "fig4",
            run_fig4,
            {"n_samples": CONFIG.n_samples, "parallel": PARALLEL},
        ),
    ]:
        t = time.perf_counter()
        with tracer.span(f"experiment.{name}"):
            result = runner(ws, **kwargs)
        save(name, result, time.perf_counter() - t)

tracer.write(str(OUT / "trace.jsonl"))
tracer.write(str(OUT / "trace.json"))
(OUT / "timing_tree.txt").write_text(tracer.render_tree() + "\n")
log.info(
    "run.complete",
    seconds=round(time.perf_counter() - t0),
    trace=str(OUT / "trace.json"),
)
print("done in %.0fs total" % (time.perf_counter() - t0))
