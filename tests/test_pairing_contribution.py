"""Tests for ingredient contributions (leave-one-out chi)."""

import numpy as np
import pytest

from repro.datamodel import Cuisine, Recipe
from repro.pairing import (
    build_cuisine_view,
    ingredient_contributions,
    top_contributors,
    verify_contribution,
)


@pytest.fixture(scope="module")
def catalog_module():
    from repro.flavordb import default_catalog

    return default_catalog()


@pytest.fixture(scope="module")
def view(catalog_module):
    names_per_recipe = [
        ("basil", "oregano", "thyme", "milk"),
        ("basil", "oregano", "rosemary"),
        ("basil", "thyme", "milk", "flour"),
        ("oregano", "rosemary", "thyme", "basil"),
        ("milk", "flour", "sugar"),
        ("basil", "oregano", "milk"),
    ]
    recipes = []
    for index, names in enumerate(names_per_recipe, start=1):
        ids = frozenset(
            catalog_module.get(name).ingredient_id for name in names
        )
        recipes.append(Recipe(index, "TST", ids))
    return build_cuisine_view(Cuisine("TST", recipes), catalog_module)


class TestIngredientContributions:
    def test_every_ingredient_reported(self, view):
        contributions = ingredient_contributions(view)
        assert len(contributions) == view.ingredient_count

    def test_sorted_by_usage(self, view):
        contributions = ingredient_contributions(view)
        usages = [item.usage for item in contributions]
        assert usages == sorted(usages, reverse=True)

    def test_fast_matches_reference(self, view):
        contributions = {
            item.local_index: item.chi_percent
            for item in ingredient_contributions(view)
        }
        for local_index in range(view.ingredient_count):
            reference = verify_contribution(view, local_index)
            assert contributions[local_index] == pytest.approx(
                reference, abs=1e-9
            ), view.ingredients[local_index].name

    def test_removing_cohesive_herb_lowers_score(self, view):
        by_name = {
            item.ingredient_name: item
            for item in ingredient_contributions(view)
        }
        # Oregano has a rich profile and pairs strongly with the other
        # herbs in every recipe it joins: removing it must lower the
        # cuisine mean (negative chi).
        assert by_name["oregano"].chi_percent < 0

    def test_usage_counts_correct(self, view):
        by_name = {
            item.ingredient_name: item
            for item in ingredient_contributions(view)
        }
        assert by_name["basil"].usage == 5
        assert by_name["sugar"].usage == 1


class TestTopContributors:
    def test_positive_pairing_returns_most_negative_chi(self, view):
        top = top_contributors(view, count=3, positive_pairing=True)
        chis = [item.chi_percent for item in top]
        assert chis == sorted(chis)
        all_chis = sorted(
            item.chi_percent for item in ingredient_contributions(view)
        )
        assert chis == all_chis[:3]

    def test_negative_pairing_returns_most_positive_chi(self, view):
        top = top_contributors(view, count=2, positive_pairing=False)
        chis = [item.chi_percent for item in top]
        assert chis == sorted(chis, reverse=True)

    def test_count_respected(self, view):
        assert len(top_contributors(view, count=1)) == 1


class TestEdgeCases:
    def test_pair_recipes_drop_when_member_removed(self, catalog_module):
        recipes = [
            Recipe(
                1,
                "TST",
                frozenset(
                    catalog_module.get(name).ingredient_id
                    for name in ("basil", "oregano")
                ),
            ),
            Recipe(
                2,
                "TST",
                frozenset(
                    catalog_module.get(name).ingredient_id
                    for name in ("milk", "flour", "butter")
                ),
            ),
        ]
        view = build_cuisine_view(Cuisine("TST", recipes), catalog_module)
        contributions = {
            item.ingredient_name: item.chi_percent
            for item in ingredient_contributions(view)
        }
        # Removing basil kills recipe 1 entirely; chi must match the slow
        # reference that also drops the recipe.
        by_index = {
            ingredient.name: index
            for index, ingredient in enumerate(view.ingredients)
        }
        reference = verify_contribution(view, by_index["basil"])
        assert contributions["basil"] == pytest.approx(reference)
