"""Tests for structured logging: key=value lines, JSONL, correlation."""

import io
import json

import pytest

from repro.obs.logs import configure_logging, get_logger
from repro.obs.trace import configure_tracing, get_tracer


@pytest.fixture(autouse=True)
def restore_logging():
    yield
    configure_logging(level="info", json_mode=False, stream=None)


def capture(**config):
    stream = io.StringIO()
    configure_logging(stream=stream, **config)
    return stream


class TestKeyValueFormat:
    def test_basic_fields(self):
        stream = capture()
        get_logger("repro.test").info("thing.done", count=3, rate=0.5)
        line = stream.getvalue().strip()
        assert "level=info" in line
        assert "logger=repro.test" in line
        assert "event=thing.done" in line
        assert "count=3" in line
        assert "rate=0.5" in line
        assert line.startswith("ts=")

    def test_values_with_spaces_are_quoted(self):
        stream = capture()
        get_logger("t").info("x", msg="two words", sym="a=b")
        line = stream.getvalue().strip()
        assert 'msg="two words"' in line
        assert 'sym="a=b"' in line

    def test_quotes_escaped(self):
        stream = capture()
        get_logger("t").info("x", msg='say "hi"')
        assert 'msg="say \\"hi\\""' in stream.getvalue()


class TestJsonMode:
    def test_lines_are_valid_jsonl(self):
        stream = capture(json_mode=True)
        log = get_logger("repro.test")
        log.info("first", a=1)
        log.warning("second", b="two words", c=None)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        rows = [json.loads(line) for line in lines]
        assert rows[0]["event"] == "first"
        assert rows[0]["a"] == 1
        assert rows[1]["level"] == "warning"
        assert rows[1]["b"] == "two words"

    def test_non_serialisable_values_fall_back_to_str(self):
        stream = capture(json_mode=True)
        get_logger("t").info("x", obj=object())
        (line,) = stream.getvalue().strip().splitlines()
        assert "object object" in json.loads(line)["obj"]


class TestLevels:
    def test_below_threshold_suppressed(self):
        stream = capture(level="warning")
        log = get_logger("t")
        log.debug("quiet")
        log.info("quiet")
        log.warning("loud")
        log.error("loud")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2

    def test_debug_level_enables_everything(self):
        stream = capture(level="debug")
        get_logger("t").debug("visible")
        assert "event=visible" in stream.getvalue()

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="loud")


class TestSpanCorrelation:
    def test_record_carries_trace_id_inside_span(self):
        stream = capture(json_mode=True)
        tracer = configure_tracing(True)
        try:
            with tracer.span("stage.one") as current:
                get_logger("t").info("inside")
                expected = current.trace_id
        finally:
            configure_tracing(False)
            get_tracer().reset()
        row = json.loads(stream.getvalue().strip())
        assert row["trace_id"] == expected
        assert row["span"] == "stage.one"

    def test_no_correlation_outside_span(self):
        stream = capture(json_mode=True)
        get_logger("t").info("outside")
        row = json.loads(stream.getvalue().strip())
        assert "trace_id" not in row

    def test_no_correlation_when_tracing_disabled(self):
        stream = capture(json_mode=True)
        get_logger("t").info("plain")
        assert "span" not in json.loads(stream.getvalue().strip())


class TestBoundFields:
    def test_bound_fields_appear_in_records(self):
        from repro.obs import bound_log_fields

        stream = capture(json_mode=True)
        with bound_log_fields(request_id="req-1", tenant="acme"):
            get_logger("t").info("served")
        row = json.loads(stream.getvalue().strip())
        assert row["request_id"] == "req-1"
        assert row["tenant"] == "acme"

    def test_bound_fields_restore_on_exit(self):
        from repro.obs import bound_log_fields

        stream = capture(json_mode=True)
        with bound_log_fields(request_id="req-1"):
            pass
        get_logger("t").info("after")
        assert "request_id" not in json.loads(stream.getvalue().strip())

    def test_nested_binding_merges_and_unwinds(self):
        from repro.obs import bound_log_fields

        stream = capture(json_mode=True)
        log = get_logger("t")
        with bound_log_fields(request_id="outer", layer="app"):
            with bound_log_fields(request_id="inner"):
                log.info("deep")
            log.info("shallow")
        rows = [
            json.loads(line)
            for line in stream.getvalue().strip().splitlines()
        ]
        assert rows[0]["request_id"] == "inner"
        assert rows[0]["layer"] == "app"  # outer fields still visible
        assert rows[1]["request_id"] == "outer"

    def test_per_call_fields_win_over_bound(self):
        from repro.obs import bound_log_fields

        stream = capture(json_mode=True)
        with bound_log_fields(request_id="bound"):
            get_logger("t").info("x", request_id="explicit")
        row = json.loads(stream.getvalue().strip())
        assert row["request_id"] == "explicit"

    def test_kv_mode_carries_bound_fields(self):
        from repro.obs import bound_log_fields

        stream = capture()
        with bound_log_fields(request_id="req-kv"):
            get_logger("t").info("served")
        assert "request_id=req-kv" in stream.getvalue()
